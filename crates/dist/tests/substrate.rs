//! Integration checks of the probability substrate's external contract:
//! seed purity across the public API, alias-table distribution
//! correctness, and the exponential mean the Poisson-clock model rests on.

use plurality_dist::rng::{derive_seed, Xoshiro256PlusPlus};
use plurality_dist::{
    sample_binomial, AliasTable, ChannelPattern, Exponential, Latency, WaitingTime,
};
use rand::Rng;

#[test]
fn xoshiro_streams_are_seed_pure_across_the_public_api() {
    // Interleave every kind of draw the engines make; identical seeds must
    // produce identical trajectories.
    let run = |seed: u64| -> Vec<f64> {
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let exp = Exponential::new(1.5).unwrap();
        let alias = AliasTable::new(&[1.0, 2.0, 4.0]).unwrap();
        let wt = WaitingTime::new(
            Latency::exponential(1.0).unwrap(),
            ChannelPattern::SingleLeader,
        );
        let mut out = Vec::new();
        for _ in 0..200 {
            out.push(exp.sample(&mut rng));
            out.push(alias.sample(&mut rng) as f64);
            out.push(rng.gen_range(0..1_000usize) as f64);
            out.push(wt.sample_t3(&mut rng));
            out.push(sample_binomial(10_000, 0.3, &mut rng) as f64);
        }
        out
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn derive_seed_decorrelates_repetition_streams() {
    // The experiment harness derives per-repetition seeds; the streams they
    // seed must differ from each other and be stable across calls.
    let seeds: Vec<u64> = (0..32).map(|i| derive_seed(0xB00, i)).collect();
    let again: Vec<u64> = (0..32).map(|i| derive_seed(0xB00, i)).collect();
    assert_eq!(seeds, again);
    let mut uniq = seeds.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), seeds.len());

    // First draws of the derived streams look unrelated (no shared value).
    let firsts: Vec<u64> = seeds
        .iter()
        .map(|&s| Xoshiro256PlusPlus::from_u64(s).gen::<u64>())
        .collect();
    let mut uniq = firsts.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), firsts.len());
}

#[test]
fn alias_table_reproduces_zipf_weights_chi_square() {
    // The Zipf electorate of the opinion module: weights rank^-1.1.
    let weights: Vec<f64> = (1..=8).map(|r| (r as f64).powf(-1.1)).collect();
    let total: f64 = weights.iter().sum();
    let table = AliasTable::new(&weights).unwrap();
    let mut rng = Xoshiro256PlusPlus::from_u64(7);
    const N: usize = 500_000;
    let mut counts = vec![0u64; weights.len()];
    for _ in 0..N {
        counts[table.sample(&mut rng)] += 1;
    }
    let chi2: f64 = counts
        .iter()
        .zip(&weights)
        .map(|(&c, &w)| {
            let expected = N as f64 * w / total;
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // 99.9th percentile of χ²(7) ≈ 24.32.
    assert!(chi2 < 24.32, "chi-square statistic {chi2}");
}

#[test]
fn exponential_mean_matches_rate_inverse() {
    // The Poisson-clock contract: unit-rate clocks tick once per time step
    // in expectation.
    for &rate in &[0.25, 1.0, 4.0] {
        let exp = Exponential::new(rate).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        const N: usize = 200_000;
        let mean = (0..N).map(|_| exp.sample(&mut rng)).sum::<f64>() / N as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.02 / rate,
            "rate {rate}: mean {mean}"
        );
    }
}
