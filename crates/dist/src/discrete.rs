//! Exact counting-law samplers: binomial and Poisson.
//!
//! The urn-mode engine evolves exact multinomial counts over
//! `(generation × color)` cells, so it needs a binomial sampler that is
//! *exact* (the process law must be reproduced, not approximated) and
//! *O(1)* in `n` (populations reach 10⁹). Small means use plain CDF
//! inversion; large means use acceptance-rejection from the BTPE envelope
//! (Kachitvichyanukul & Schmeiser 1988) with an exact log-pmf acceptance
//! test, and the transformed-rejection method of Hörmann (1993) for the
//! Poisson law.

use crate::special::ln_gamma;
use rand::Rng;

/// Draws an exact `Binomial(n, p)` sample in O(1) expected time.
///
/// `p` outside `[0, 1]` is clamped; the result always lies in `[0, n]`.
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::sample_binomial;
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let x = sample_binomial(1_000_000_000, 0.25, &mut rng);
/// // Tightly concentrated around n·p at this scale.
/// assert!((x as f64 - 2.5e8).abs() < 1e6);
/// assert_eq!(sample_binomial(10, 0.0, &mut rng), 0);
/// assert_eq!(sample_binomial(10, 1.0, &mut rng), 10);
/// ```
pub fn sample_binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    if n == 0 || p.is_nan() || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Work with q ≤ 1/2 and flip back at the end.
    let (q, flipped) = if p > 0.5 { (1.0 - p, true) } else { (p, false) };
    let successes = if (n as f64) * q < 10.0 {
        binomial_inversion(n, q, rng)
    } else {
        binomial_btpe(n, q, rng)
    };
    if flipped {
        n - successes
    } else {
        successes
    }
}

/// BINV: sequential CDF inversion, exact, O(n·p) expected time.
/// Requires `n·p < 10` and `p ≤ 1/2`.
fn binomial_inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1) as f64 * s;
    // q^n via the log to survive huge n with tiny p.
    let qn = ((n as f64) * q.ln()).exp();
    loop {
        let mut f = qn;
        let mut u: f64 = rng.gen();
        let mut x = 0u64;
        // With n·p < 10 the mass above 110 is below 1e-60; restart on the
        // (theoretically impossible) overflow to stay exact.
        loop {
            if u <= f {
                return x.min(n);
            }
            if x >= 110 {
                break;
            }
            u -= f;
            x += 1;
            f *= a / x as f64 - s;
        }
    }
}

/// BTPE envelope sampling with an exact acceptance test.
///
/// The proposal is the classic four-region envelope (triangle,
/// parallelogram, two exponential tails). Region 1 lies entirely under the
/// scaled pmf and is accepted outright; the other regions are accepted by
/// comparing against the exact pmf ratio `f(y)/f(m)` computed through
/// [`ln_gamma`] — trading BTPE's Stirling squeezes for ~4 `ln_gamma`
/// calls, which keeps the sampler short and exactly distributed.
/// Requires `n·p ≥ 10` and `p ≤ 1/2`.
fn binomial_btpe<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let npq = nf * p * q;
    let f_m = nf * p + p;
    let m = f_m.floor();
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let x_m = m + 0.5;
    let x_l = x_m - p1;
    let x_r = x_m + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let lambda_l = {
        let a = (f_m - x_l) / (f_m - x_l * p);
        a * (1.0 + 0.5 * a)
    };
    let lambda_r = {
        let a = (x_r - f_m) / (x_r * q);
        a * (1.0 + 0.5 * a)
    };
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;
    let ln_odds = (p / q).ln();
    // ln C(n, m) without assuming m fits a table.
    let ln_f_m = ln_gamma(nf + 1.0) - ln_gamma(m + 1.0) - ln_gamma(nf - m + 1.0);

    loop {
        let u: f64 = rng.gen::<f64>() * p4;
        let mut v: f64 = rng.gen();
        let y: f64;
        if u <= p1 {
            // Triangular centre: lies under the pmf, accept outright.
            y = (x_m - p1 * v + u).floor();
            return y.clamp(0.0, nf) as u64;
        } else if u <= p2 {
            // Parallelogram.
            let x = x_l + (u - p1) / c;
            v = v * c + 1.0 - (x - x_m).abs() / p1;
            if v > 1.0 {
                continue;
            }
            y = x.floor();
        } else if u <= p3 {
            // Left exponential tail.
            y = (x_l + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
        } else {
            // Right exponential tail.
            y = (x_r - v.ln() / lambda_r).floor();
            if y > nf {
                continue;
            }
            v *= (u - p3) * lambda_r;
        }

        // Exact acceptance: v ≤ f(y) / f(m).
        let ln_f_y = ln_gamma(nf + 1.0) - ln_gamma(y + 1.0) - ln_gamma(nf - y + 1.0)
            + (y - m) * ln_odds
            - ln_f_m;
        if v <= ln_f_y.exp() {
            return y.clamp(0.0, nf) as u64;
        }
    }
}

/// Draws an exact `Poisson(λ)` sample in O(1) expected time.
///
/// Non-positive or non-finite `λ` yields 0.
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::sample_poisson;
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(2);
/// let x = sample_poisson(1000.0, &mut rng);
/// assert!((x as f64 - 1000.0).abs() < 200.0);
/// assert_eq!(sample_poisson(0.0, &mut rng), 0);
/// ```
pub fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if !lambda.is_finite() || lambda <= 0.0 {
        return 0;
    }
    if lambda < 10.0 {
        poisson_knuth(lambda, rng)
    } else {
        poisson_ptrs(lambda, rng)
    }
}

/// Knuth's product-of-uniforms method, exact, O(λ) expected time.
fn poisson_knuth<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    let threshold = (-lambda).exp();
    let mut k = 0u64;
    let mut product: f64 = rng.gen();
    while product > threshold {
        k += 1;
        product *= rng.gen::<f64>();
    }
    k
}

/// Hörmann's PTRS transformed-rejection method, exact, O(1) for λ ≥ 10.
fn poisson_ptrs<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    let ln_lambda = lambda.ln();
    let b = 0.931 + 2.53 * lambda.sqrt();
    let a = -0.059 + 0.02483 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let v: f64 = rng.gen();
        let u_shifted = 0.5 - u.abs();
        let k = ((2.0 * a / u_shifted + b) * u + lambda + 0.43).floor();
        if u_shifted >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (u_shifted < 0.013 && v > u_shifted) {
            continue;
        }
        let lhs = (v * inv_alpha / (a / (u_shifted * u_shifted) + b)).ln();
        let rhs = k * ln_lambda - lambda - ln_gamma(k + 1.0);
        if lhs <= rhs {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
        let (nf, kf) = (n as f64, k as f64);
        (ln_gamma(nf + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(nf - kf + 1.0)
            + kf * p.ln()
            + (nf - kf) * (1.0 - p).ln())
        .exp()
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.0, &mut rng), 100);
        assert_eq!(sample_binomial(100, -0.5, &mut rng), 0);
        assert_eq!(sample_binomial(100, 1.5, &mut rng), 100);
        for _ in 0..1_000 {
            assert!(sample_binomial(7, 0.4, &mut rng) <= 7);
        }
    }

    #[test]
    fn binomial_small_regime_passes_chi_square() {
        // n = 12, p = 0.3 exercises BINV; χ²(12) 99.9th pct ≈ 32.91.
        let (n, p) = (12u64, 0.3f64);
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        const DRAWS: usize = 300_000;
        let mut counts = vec![0u64; (n + 1) as usize];
        for _ in 0..DRAWS {
            counts[sample_binomial(n, p, &mut rng) as usize] += 1;
        }
        let chi2: f64 = (0..=n)
            .map(|k| {
                let expected = DRAWS as f64 * binomial_pmf(n, p, k);
                let d = counts[k as usize] as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 32.91, "chi-square statistic {chi2}");
    }

    #[test]
    fn binomial_btpe_regime_matches_moments() {
        // n·p = 300 ⇒ BTPE. Mean 300, variance 210.
        let (n, p) = (1_000u64, 0.3f64);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        const DRAWS: usize = 200_000;
        let xs: Vec<f64> = (0..DRAWS)
            .map(|_| sample_binomial(n, p, &mut rng) as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / DRAWS as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (DRAWS - 1) as f64;
        assert!((mean - 300.0).abs() < 0.2, "mean {mean}");
        assert!((var - 210.0).abs() < 3.0, "var {var}");
    }

    #[test]
    fn binomial_btpe_regime_passes_chi_square_on_binned_support() {
        // n = 100, p = 0.5 ⇒ BTPE (npq = 25). Bin the support into the
        // central values and a pooled tail; compare against exact pmf.
        let (n, p) = (100u64, 0.5f64);
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        const DRAWS: usize = 300_000;
        let (lo, hi) = (35u64, 65u64);
        let bins = (hi - lo + 1) as usize;
        let mut counts = vec![0u64; bins + 2];
        for _ in 0..DRAWS {
            let x = sample_binomial(n, p, &mut rng);
            if x < lo {
                counts[0] += 1;
            } else if x > hi {
                counts[bins + 1] += 1;
            } else {
                counts[(x - lo + 1) as usize] += 1;
            }
        }
        let mut expected = vec![0.0f64; bins + 2];
        for k in 0..=n {
            let mass = DRAWS as f64 * binomial_pmf(n, p, k);
            if k < lo {
                expected[0] += mass;
            } else if k > hi {
                expected[bins + 1] += mass;
            } else {
                expected[(k - lo + 1) as usize] += mass;
            }
        }
        let chi2: f64 = counts
            .iter()
            .zip(&expected)
            .map(|(&c, &e)| {
                let d = c as f64 - e;
                d * d / e
            })
            .sum();
        // χ²(32) 99.9th percentile ≈ 62.49.
        assert!(chi2 < 62.49, "chi-square statistic {chi2}");
    }

    #[test]
    fn binomial_flipped_p_is_symmetric() {
        let mut rng_a = Xoshiro256PlusPlus::from_u64(5);
        let mut rng_b = Xoshiro256PlusPlus::from_u64(5);
        for _ in 0..2_000 {
            let a = sample_binomial(50, 0.7, &mut rng_a);
            let b = sample_binomial(50, 0.3, &mut rng_b);
            assert_eq!(a, 50 - b);
        }
    }

    #[test]
    fn binomial_huge_n_concentrates() {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let n = 1_000_000_000u64;
        for _ in 0..50 {
            let x = sample_binomial(n, 0.5, &mut rng) as f64;
            // ±6 standard deviations (σ ≈ 15 811).
            assert!((x - 5e8).abs() < 6.0 * 15_811.0, "x = {x}");
        }
    }

    #[test]
    fn binomial_is_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = Xoshiro256PlusPlus::from_u64(seed);
            (0..32)
                .map(|_| sample_binomial(10_000, 0.37, &mut rng))
                .collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn poisson_small_lambda_matches_moments() {
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        const DRAWS: usize = 200_000;
        let xs: Vec<f64> = (0..DRAWS)
            .map(|_| sample_poisson(3.0, &mut rng) as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / DRAWS as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (DRAWS - 1) as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 3.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_matches_moments() {
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        const DRAWS: usize = 200_000;
        let xs: Vec<f64> = (0..DRAWS)
            .map(|_| sample_poisson(1000.0, &mut rng) as f64)
            .collect();
        let mean = xs.iter().sum::<f64>() / DRAWS as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (DRAWS - 1) as f64;
        assert!((mean - 1000.0).abs() < 0.5, "mean {mean}");
        assert!((var - 1000.0).abs() < 15.0, "var {var}");
    }

    #[test]
    fn poisson_degenerate_lambda_is_zero() {
        let mut rng = Xoshiro256PlusPlus::from_u64(10);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        assert_eq!(sample_poisson(-1.0, &mut rng), 0);
        assert_eq!(sample_poisson(f64::NAN, &mut rng), 0);
        assert_eq!(sample_poisson(f64::INFINITY, &mut rng), 0);
    }
}
