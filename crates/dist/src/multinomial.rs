//! Exact multinomial splits via conditioned sequential binomials.
//!
//! The mean-field engines (urn mode in `plurality-core`, the aggregate
//! backends in `plurality-agg`) advance whole pools of exchangeable nodes
//! at once: conditioned on the current configuration, the occupants of a
//! pool scatter over their common outcome distribution as one exact
//! multinomial draw. This module is the single shared implementation of
//! that draw.
//!
//! The sampling identity is the standard chain-rule factorization: if
//! `(X₁, …, X_m) ~ Multinomial(n; p₁, …, p_m)` then
//!
//! ```text
//! X₁ ~ Binomial(n, p₁),
//! Xᵢ | X₁..Xᵢ₋₁ ~ Binomial(n − ΣⱼXⱼ, pᵢ / (1 − Σⱼpⱼ))   (j < i).
//! ```
//!
//! Each conditioned binomial is drawn with the exact BTPE/inversion
//! sampler [`crate::sample_binomial`], so the resulting vector has
//! *exactly* the multinomial law — no normal approximation, no Poisson
//! thinning — at `O(m)` cost independent of `n`. This is what lets a
//! billion-node population advance in microseconds per round.

use crate::sample_binomial;
use rand::Rng;

/// Splits `count` exchangeable items over sparse `targets`, accumulating
/// into `out`, and returns the residual that "stays" (the mass of the
/// implicit complement category).
///
/// `targets` is a list of `(index, probability)` pairs; probabilities
/// must be non-negative and sum to at most 1 (up to rounding). The items
/// not assigned to any listed target — the residual probability mass —
/// are returned to the caller, which decides where stayers live (the urn
/// engine adds them back to the source cell).
///
/// The draw is the exact conditioned-binomial factorization of the
/// multinomial law, consuming one [`sample_binomial`] draw per non-empty
/// target in order. Callers that depend on byte-stable RNG streams (the
/// urn engine's pinned determinism tests) therefore must keep the target
/// order stable.
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::multinomial_split;
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let mut out = vec![0u64; 3];
/// let stayed = multinomial_split(1_000, &[(0, 0.25), (2, 0.25)], &mut out, &mut rng);
/// assert_eq!(out[0] + out[2] + stayed, 1_000);
/// assert_eq!(out[1], 0);
/// ```
pub fn multinomial_split<R: Rng + ?Sized>(
    count: u64,
    targets: &[(usize, f64)],
    out: &mut [u64],
    rng: &mut R,
) -> u64 {
    let mut remaining = count;
    let mut rest_prob = 1.0f64;
    for &(t, p) in targets {
        if remaining == 0 {
            break;
        }
        let q = (p / rest_prob).clamp(0.0, 1.0);
        let moved = sample_binomial(remaining, q, rng);
        out[t] += moved;
        remaining -= moved;
        rest_prob -= p;
        if rest_prob <= 0.0 {
            break;
        }
    }
    remaining
}

/// Draws one exact `Multinomial(count; probs)` vector.
///
/// `probs` must be a full probability vector (non-negative entries
/// summing to 1 up to rounding); every item lands in some category, with
/// float-rounding residue folded into the final one so the output always
/// sums to `count` exactly.
///
/// # Panics
///
/// Panics if `probs` is empty.
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::sample_multinomial;
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(2);
/// let counts = sample_multinomial(1_000_000, &[0.5, 0.3, 0.2], &mut rng);
/// assert_eq!(counts.iter().sum::<u64>(), 1_000_000);
/// assert!(counts[0] > counts[2]);
/// ```
pub fn sample_multinomial<R: Rng + ?Sized>(count: u64, probs: &[f64], rng: &mut R) -> Vec<u64> {
    assert!(!probs.is_empty(), "multinomial needs at least one category");
    let mut out = vec![0u64; probs.len()];
    let last = probs.len() - 1;
    // Split over all but the last category; the conditioned residual IS
    // the last category's draw (its conditional success probability is 1).
    let targets: Vec<(usize, f64)> = probs[..last]
        .iter()
        .enumerate()
        .map(|(i, &p)| (i, p))
        .collect();
    let residual = multinomial_split(count, &targets, &mut out, rng);
    out[last] += residual;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn conserves_count() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        for &n in &[0u64, 1, 17, 10_000, 1_000_000_000] {
            let counts = sample_multinomial(n, &[0.1, 0.2, 0.3, 0.4], &mut rng);
            assert_eq!(counts.iter().sum::<u64>(), n, "n = {n}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let draw = || {
            let mut rng = Xoshiro256PlusPlus::from_u64(11);
            sample_multinomial(123_456, &[0.25, 0.25, 0.5], &mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn zero_probability_categories_stay_empty() {
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let counts = sample_multinomial(50_000, &[0.5, 0.0, 0.5], &mut rng);
        assert_eq!(counts[1], 0);
        assert_eq!(counts.iter().sum::<u64>(), 50_000);
    }

    #[test]
    fn split_residual_complements_listed_targets() {
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let mut out = vec![0u64; 4];
        let stayed = multinomial_split(200_000, &[(1, 0.1), (3, 0.4)], &mut out, &mut rng);
        assert_eq!(out[1] + out[3] + stayed, 200_000);
        assert_eq!(out[0], 0);
        assert_eq!(out[2], 0);
        // Mean of the residual is 100 000; exact binomials concentrate hard.
        assert!(
            (stayed as f64 - 100_000.0).abs() < 2_000.0,
            "stayed {stayed}"
        );
    }

    #[test]
    fn split_accumulates_into_existing_counts() {
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let mut out = vec![10u64, 20];
        let stayed = multinomial_split(100, &[(0, 0.5), (1, 0.5)], &mut out, &mut rng);
        assert_eq!(out[0] + out[1] + stayed, 130);
        assert!(out[0] >= 10 && out[1] >= 20);
    }

    #[test]
    fn marginals_match_binomial_moments() {
        // Each marginal Xᵢ ~ Binomial(n, pᵢ): check mean and variance over
        // replicates against 5σ bands.
        let probs = [0.6, 0.3, 0.1];
        let n = 100_000u64;
        let reps = 400;
        let mut sums = [0.0f64; 3];
        let mut sq = [0.0f64; 3];
        let mut rng = Xoshiro256PlusPlus::from_u64(13);
        for _ in 0..reps {
            let c = sample_multinomial(n, &probs, &mut rng);
            for i in 0..3 {
                sums[i] += c[i] as f64;
                sq[i] += (c[i] as f64) * (c[i] as f64);
            }
        }
        for i in 0..3 {
            let mean = sums[i] / reps as f64;
            let var = sq[i] / reps as f64 - mean * mean;
            let expect_mean = n as f64 * probs[i];
            let expect_var = n as f64 * probs[i] * (1.0 - probs[i]);
            let mean_tol = 5.0 * (expect_var / reps as f64).sqrt();
            assert!(
                (mean - expect_mean).abs() < mean_tol,
                "marginal {i}: mean {mean} vs {expect_mean}"
            );
            assert!(
                var > 0.5 * expect_var && var < 2.0 * expect_var,
                "marginal {i}: var {var} vs {expect_var}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn rejects_empty_probability_vector() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let _ = sample_multinomial(10, &[], &mut rng);
    }
}
