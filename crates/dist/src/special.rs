//! Scalar special functions: normal quantile, log-gamma, and the
//! regularized incomplete gamma function.
//!
//! Confidence intervals (`plurality-stats`) need the standard normal
//! quantile; the Weibull mean and the Γ(7, β) waiting-time majorant
//! (Remark 14) need the gamma function and its CDF.

/// The quantile function (inverse CDF) of the standard normal
/// distribution, via Acklam's rational approximation (absolute error
/// below 1.2e-9 across `(0, 1)` — far below the Monte-Carlo noise of
/// every consumer).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use plurality_dist::special::normal_quantile;
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
/// assert_eq!(normal_quantile(0.5), 0.0);
/// assert!((normal_quantile(0.1) + normal_quantile(0.9)).abs() < 1e-12);
/// ```
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile: p must lie strictly in (0, 1), got {p}"
    );
    if p == 0.5 {
        return 0.0;
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The CDF of the standard normal distribution, `Φ(x)`, via the
/// complementary error function.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// The complementary error function (Cody-style rational approximation;
/// absolute error below 1.2e-7 — plenty for CDF round-trip checks and
/// simulation-scale comparisons).
fn erfc(x: f64) -> f64 {
    // W. J. Cody–style rational approximation (Numerical Recipes erfc).
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// The natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`,
/// via the Lanczos approximation (g = 7, n = 9; relative error ~1e-13).
///
/// # Panics
///
/// Panics if `x` is not positive and finite.
///
/// # Examples
///
/// ```
/// use plurality_dist::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-12);           // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 4!
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x > 0.0 && x.is_finite(),
        "ln_gamma: x must be positive and finite, got {x}"
    );
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// # Panics
///
/// Panics if `x` is not positive and finite.
#[must_use]
pub fn gamma_fn(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// The regularized lower incomplete gamma function `P(k, x)` for integer
/// shape `k ≥ 1`: the CDF of a `Gamma(k, 1)` variable at `x`.
///
/// Uses the closed form `P(k, x) = 1 − e^{−x} Σ_{i<k} xⁱ/i!`.
pub(crate) fn gamma_p_integer(k: u32, x: f64) -> f64 {
    debug_assert!(k >= 1);
    if x <= 0.0 {
        return 0.0;
    }
    let mut term = 1.0f64; // x^0 / 0!
    let mut sum = 1.0f64;
    for i in 1..k {
        term *= x / i as f64;
        sum += term;
    }
    1.0 - (-x).exp() * sum
}

/// The quantile of a `Gamma(k, rate)` distribution with integer shape,
/// solved by bisection on [`gamma_p_integer`] (absolute tolerance 1e-12
/// on the unit-rate axis).
pub(crate) fn gamma_quantile_integer(k: u32, rate: f64, p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    // Bracket on the unit-rate axis: mean k, generous upper bound.
    let mut lo = 0.0f64;
    let mut hi = (k as f64) * 4.0 + 40.0;
    while gamma_p_integer(k, hi) < p {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gamma_p_integer(k, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    0.5 * (lo + hi) / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_matches_classic_z_values() {
        for (p, z) in [
            (0.975, 1.959_963_985),
            (0.995, 2.575_829_304),
            (0.95, 1.644_853_627),
            (0.84134474606854, 1.0),
        ] {
            assert!(
                (normal_quantile(p) - z).abs() < 1e-7,
                "p = {p}: got {}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    fn quantile_is_antisymmetric_and_monotone() {
        for &p in &[0.001, 0.01, 0.2, 0.4, 0.49] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 1..200 {
            let q = normal_quantile(i as f64 / 200.0);
            assert!(q > last);
            last = q;
        }
    }

    #[test]
    fn quantile_roundtrips_through_the_cdf() {
        // Round-trip accuracy is limited by the erfc approximation (~1e-7).
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 5e-7, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly in (0, 1)")]
    fn quantile_rejects_the_boundary() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut factorial = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                factorial *= (n - 1) as f64;
            }
            let expected = factorial.ln();
            assert!(
                (ln_gamma(n as f64) - expected).abs() < 1e-9 * expected.abs().max(1.0),
                "n = {n}"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer_values() {
        // Γ(1/2) = √π.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((gamma_fn(0.5) - sqrt_pi).abs() < 1e-10);
        // Γ(3/2) = √π/2.
        assert!((gamma_fn(1.5) - sqrt_pi / 2.0).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_is_a_cdf() {
        assert_eq!(gamma_p_integer(7, 0.0), 0.0);
        assert!(gamma_p_integer(7, 7.0) > 0.4 && gamma_p_integer(7, 7.0) < 0.6);
        assert!(gamma_p_integer(7, 100.0) > 0.999_999);
        let mut last = 0.0;
        for i in 1..100 {
            let v = gamma_p_integer(3, i as f64 * 0.2);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn gamma_quantile_inverts_the_cdf() {
        for &(k, p) in &[(1u32, 0.9f64), (3, 0.5), (7, 0.9), (9, 0.99)] {
            let x = gamma_quantile_integer(k, 1.0, p);
            assert!((gamma_p_integer(k, x) - p).abs() < 1e-9, "k={k}, p={p}");
        }
        // Rate scaling: quantile of Gamma(k, 2) is half that of Gamma(k, 1).
        let q1 = gamma_quantile_integer(7, 1.0, 0.9);
        let q2 = gamma_quantile_integer(7, 2.0, 0.9);
        assert!((q1 / q2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_quantile_special_case() {
        // Gamma(1, λ) is Exp(λ): F⁻¹(p) = −ln(1−p)/λ.
        let q = gamma_quantile_integer(1, 3.0, 0.9);
        assert!((q - (-(0.1f64).ln() / 3.0)).abs() < 1e-9);
    }
}
