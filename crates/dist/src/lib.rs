//! # plurality-dist
//!
//! Probability substrate for the `plurality` workspace — every random
//! quantity the simulation engines draw comes from this crate:
//!
//! * [`rng`] — the deterministic [`rng::Xoshiro256PlusPlus`] generator and
//!   [`rng::derive_seed`] for stable per-repetition seed streams. Every
//!   simulation run in the workspace is a pure function of its `u64` seed;
//!   this module is what makes that contract possible.
//! * [`Exponential`], [`Gamma`], [`Weibull`] — continuous samplers for the
//!   Poisson clocks and edge-latency families of the asynchronous model
//!   (arXiv 1806.02596, Section 3.1).
//! * [`AliasTable`] — O(1) sampling from arbitrary discrete weight vectors
//!   (Walker/Vose), used for Zipf-skewed initial opinion assignments.
//! * [`sample_binomial`] / [`sample_poisson`] — exact O(1) counting-law
//!   samplers (BTPE and transformed rejection), the workhorses of the
//!   urn-mode engine that simulates billion-node populations.
//! * [`multinomial_split`] / [`sample_multinomial`] — exact multinomial
//!   splits via conditioned sequential binomials, shared by every
//!   mean-field engine (urn mode and the `plurality-agg` backends).
//! * [`Latency`], [`ChannelPattern`], [`WaitingTime`] — the edge-latency
//!   laws with positive aging and the composite channel waiting times
//!   behind the paper's time unit `C1 = F⁻¹(0.9)` (Figure 1, Remark 14).
//! * [`special`] — the scalar special functions (normal quantile,
//!   log-gamma) the statistics crate builds confidence intervals from.
//! * [`quantile`] — empirical quantiles of sorted samples.
//!
//! ## Example
//!
//! ```
//! use plurality_dist::rng::Xoshiro256PlusPlus;
//! use plurality_dist::Exponential;
//!
//! let mut rng = Xoshiro256PlusPlus::from_u64(7);
//! let clock = Exponential::new(2.0)?;
//! let tick = clock.sample(&mut rng);
//! assert!(tick > 0.0);
//! # Ok::<(), plurality_dist::InvalidParameterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod continuous;
mod discrete;
mod latency;
mod multinomial;
pub mod quantile;
pub mod rng;
pub mod special;

pub use alias::AliasTable;
pub use continuous::{unit_exp, Exponential, Gamma, Weibull};
pub use discrete::{sample_binomial, sample_poisson};
pub use latency::{ChannelPattern, Latency, WaitingTime};
pub use multinomial::{multinomial_split, sample_multinomial};

use std::error::Error;
use std::fmt;

/// Error returned when a distribution is constructed with parameters
/// outside its domain (non-positive rate, negative weight, …).
///
/// # Examples
///
/// ```
/// use plurality_dist::Exponential;
/// let err = Exponential::new(-1.0).unwrap_err();
/// assert!(err.to_string().contains("rate"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParameterError {
    message: String,
}

impl InvalidParameterError {
    /// Creates an error with a human-readable description of the violated
    /// constraint.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The bare description, without the `Display` prefix — for callers
    /// that wrap this error with their own context and must not stack
    /// prefixes.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for InvalidParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.message)
    }
}

impl Error for InvalidParameterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_formats_its_message() {
        let err = InvalidParameterError::new("rate must be positive, got -1");
        let rendered = err.to_string();
        assert!(rendered.contains("invalid distribution parameter"));
        assert!(rendered.contains("rate must be positive"));
    }
}
