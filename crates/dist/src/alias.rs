//! Walker/Vose alias tables: O(1) sampling from arbitrary finite weight
//! vectors after O(k) preprocessing.
//!
//! The workspace uses alias tables wherever a skewed discrete law is
//! sampled in a hot loop — most prominently Zipf-weighted initial opinion
//! assignments, where every one of `n` nodes draws from the same `k`-point
//! distribution.

use crate::InvalidParameterError;
use rand::Rng;

/// A preprocessed discrete distribution over `0..k` supporting O(1)
/// sampling (Vose's alias method).
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::AliasTable;
///
/// let table = AliasTable::new(&[3.0, 1.0])?;
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let mut counts = [0u32; 2];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// // Outcome 0 carries 3× the weight of outcome 1.
/// assert!(counts[0] > 2 * counts[1]);
/// # Ok::<(), plurality_dist::InvalidParameterError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of the own column.
    prob: Vec<f64>,
    /// Fallback outcome when the own column rejects.
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (they need not sum to 1).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `weights` is empty, contains a
    /// negative or non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, InvalidParameterError> {
        if weights.is_empty() {
            return Err(InvalidParameterError::new(
                "alias table needs at least one weight",
            ));
        }
        if let Some(w) = weights.iter().find(|w| !(w.is_finite() && **w >= 0.0)) {
            return Err(InvalidParameterError::new(format!(
                "alias weights must be finite and non-negative, got {w}"
            )));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(InvalidParameterError::new(
                "alias weights must not all be zero",
            ));
        }

        let k = weights.len();
        // Scale to mean 1: columns < 1 are "small", ≥ 1 are "large".
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * k as f64 / total).collect();
        let mut prob = vec![1.0f64; k];
        let mut alias: Vec<usize> = (0..k).collect();
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s] = scaled[s];
            alias[s] = l;
            // The large column donates the small column's deficit.
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers are full columns.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// The number of outcomes `k`.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome in `0..k` with probability proportional to its
    /// weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let column = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[column] {
            column
        } else {
            self.alias[column]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_degenerate_weight_vectors() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
        assert!(AliasTable::new(&[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[2.5]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        for _ in 0..50_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_pass_chi_square() {
        // Skewed 5-point law; χ² with 4 degrees of freedom.
        let weights = [10.0, 5.0, 2.0, 2.0, 1.0];
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        const N: usize = 400_000;
        let mut counts = [0u64; 5];
        for _ in 0..N {
            counts[t.sample(&mut rng)] += 1;
        }
        let chi2: f64 = counts
            .iter()
            .zip(&weights)
            .map(|(&c, &w)| {
                let expected = N as f64 * w / total;
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 99.9th percentile of χ²(4) ≈ 18.47.
        assert!(chi2 < 18.47, "chi-square statistic {chi2}");
    }

    #[test]
    fn unnormalized_weights_match_normalized_ones() {
        let a = AliasTable::new(&[2.0, 6.0]).unwrap();
        let b = AliasTable::new(&[0.25, 0.75]).unwrap();
        let mut rng_a = Xoshiro256PlusPlus::from_u64(4);
        let mut rng_b = Xoshiro256PlusPlus::from_u64(4);
        for _ in 0..1_000 {
            assert_eq!(a.sample(&mut rng_a), b.sample(&mut rng_b));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = Xoshiro256PlusPlus::from_u64(seed);
            (0..64).map(|_| t.sample(&mut rng)).collect()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
