//! Empirical quantiles of sorted samples.
//!
//! The asynchronous engines estimate the paper's time unit
//! `C1 = F⁻¹(0.9)` by Monte-Carlo: draw waiting times, sort, read off the
//! 0.9 empirical quantile. This module holds that one primitive.

/// The empirical `q`-quantile of an ascending-sorted slice, with linear
/// interpolation between order statistics (the "type 7" estimator used by
/// R and NumPy). Monotone in `q` for a fixed sample.
///
/// # Panics
///
/// Panics if `xs` is empty, not sorted ascending, or `q ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use plurality_dist::quantile::quantile_sorted;
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
/// assert_eq!(quantile_sorted(&xs, 0.5), 3.0);
/// assert_eq!(quantile_sorted(&xs, 1.0), 5.0);
/// assert_eq!(quantile_sorted(&xs, 0.625), 3.5);
/// ```
#[must_use]
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile_sorted: empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile_sorted: q must lie in [0, 1], got {q}"
    );
    assert!(
        xs.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted: sample must be sorted ascending"
    );
    let position = q * (xs.len() - 1) as f64;
    let below = position.floor() as usize;
    let above = position.ceil() as usize;
    if below == above {
        return xs[below];
    }
    let weight = position - below as f64;
    xs[below] * (1.0 - weight) + xs[above] * weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element_is_every_quantile() {
        for &q in &[0.0, 0.3, 1.0] {
            assert_eq!(quantile_sorted(&[7.0], q), 7.0);
        }
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile_sorted(&xs, 0.25), 2.5);
        assert_eq!(quantile_sorted(&xs, 0.75), 7.5);
    }

    #[test]
    fn monotone_in_q() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let mut last = f64::NEG_INFINITY;
        for i in 0..=50 {
            let v = quantile_sorted(&xs, i as f64 / 50.0);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = quantile_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "q must lie in")]
    fn out_of_range_q_panics() {
        let _ = quantile_sorted(&[1.0], 1.5);
    }
}
