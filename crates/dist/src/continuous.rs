//! Continuous distributions: exponential, gamma, and Weibull.
//!
//! These are the building blocks of the asynchronous model: Poisson clocks
//! are exponential inter-arrival samplers, Erlang/Weibull edge latencies
//! model positively aging channels, and the Γ(7, β) law majorizes the
//! composite waiting time of a full communication step (Remark 14).

use crate::special::normal_quantile;
use crate::InvalidParameterError;
use rand::Rng;

/// A uniform draw from the *open* interval `(0, 1)` — safe to pass to
/// `ln` without producing `-inf`.
#[inline]
pub(crate) fn open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// A standard normal draw via the inverse-CDF method (accurate to ~1e-9,
/// far below simulation noise).
#[inline]
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    normal_quantile(open01(rng))
}

/// The exponential distribution with rate `λ` (mean `1/λ`).
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::Exponential;
///
/// let d = Exponential::new(4.0)?;
/// assert_eq!(d.rate(), 4.0);
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// assert!(d.sample(&mut rng) > 0.0);
/// # Ok::<(), plurality_dist::InvalidParameterError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `rate` is not positive and
    /// finite.
    pub fn new(rate: f64) -> Result<Self, InvalidParameterError> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "exponential rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Self { rate })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one value (strictly positive) by CDF inversion.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.rate
    }

    /// Draws one value (strictly positive) with the ziggurat method —
    /// the same law as [`Self::sample`] but a different (and faster)
    /// consumption of the RNG stream: ~99% of draws cost one `u64` and
    /// one multiply, no `ln`. Hot paths that are free to re-shape their
    /// stream use this; code bound to a historical stream keeps
    /// [`Self::sample`].
    #[inline]
    pub fn sample_fast<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_exp(rng) / self.rate
    }
}

/// Right edge of the base ziggurat layer for the unit exponential
/// (Marsaglia & Tsang 2000 / Doornik 2005, 256 layers).
const ZIG_R: f64 = 7.697_117_470_131_487;
/// Common area of each ziggurat layer (base rectangle + tail for layer 0).
const ZIG_V: f64 = 3.949_659_822_581_572e-3;

/// Ziggurat layer tables for the unit exponential: `x[i]` are the layer
/// right edges (`x[0] = V·e^R` spans the tail, `x[1] = R`, `x[256] = 0`),
/// `f[i] = e^{−x[i]}`.
struct ZigTables {
    x: [f64; 257],
    f: [f64; 257],
}

static ZIG_TABLES: std::sync::OnceLock<ZigTables> = std::sync::OnceLock::new();

fn zig_tables() -> &'static ZigTables {
    ZIG_TABLES.get_or_init(|| {
        let mut x = [0.0f64; 257];
        x[0] = ZIG_V * ZIG_R.exp();
        x[1] = ZIG_R;
        for i in 2..256 {
            x[i] = -((-x[i - 1]).exp() + ZIG_V / x[i - 1]).ln();
        }
        x[256] = 0.0;
        let mut f = [0.0f64; 257];
        for i in 0..257 {
            f[i] = (-x[i]).exp();
        }
        ZigTables { x, f }
    })
}

/// A unit-rate exponential draw via the 256-layer ziggurat: one `u64`
/// draw and one multiply on the ~98.9% fast path, a wedge rejection test
/// otherwise, and — since the exponential is memoryless — a shifted
/// restart for the `e^{−R} ≈ 4.5·10⁻⁴` tail.
#[inline]
pub fn unit_exp<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let t = zig_tables();
    let mut shift = 0.0;
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // Bits 11..64 form the mantissa (disjoint from the index bits).
        let u = (bits >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            // Inside the layer's rectangle: accept (rejecting the
            // measure-zero x = 0, as `open01` does for `sample`).
            if x > 0.0 {
                return shift + x;
            }
            continue;
        }
        if i == 0 {
            shift += ZIG_R;
            continue;
        }
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.gen::<f64>() < (-x).exp() {
            return shift + x;
        }
    }
}

/// The gamma distribution with shape `k` and rate `β` (mean `k/β`).
///
/// Sampling uses Marsaglia & Tsang's squeeze method for `k ≥ 1` and the
/// standard `U^{1/k}` boost for `k < 1`; both are exact
/// acceptance-rejection schemes.
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::Gamma;
///
/// let d = Gamma::new(7.0, 2.0)?;
/// assert_eq!(d.mean(), 3.5);
/// let mut rng = Xoshiro256PlusPlus::from_u64(2);
/// assert!(d.sample(&mut rng) > 0.0);
/// # Ok::<(), plurality_dist::InvalidParameterError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if either parameter is not
    /// positive and finite.
    pub fn new(shape: f64, rate: f64) -> Result<Self, InvalidParameterError> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "gamma shape must be positive and finite, got {shape}"
            )));
        }
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "gamma rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Self { shape, rate })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The rate parameter `β`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `k/β`.
    pub fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: if X ~ Gamma(k+1) and U ~ U(0,1) then X·U^{1/k} ~ Gamma(k).
            let boosted = Self {
                shape: self.shape + 1.0,
                rate: self.rate,
            };
            return boosted.sample(rng) * open01(rng).powf(1.0 / self.shape);
        }
        // Marsaglia & Tsang (2000).
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = open01(rng);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v / self.rate;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v / self.rate;
            }
        }
    }
}

/// The Weibull distribution with shape `k` and scale `λ`
/// (mean `λ·Γ(1 + 1/k)`).
///
/// For `k ≥ 1` the hazard rate is non-decreasing — the *positive aging*
/// property the paper's title refers to; `k = 1` recovers the exponential.
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::Weibull;
///
/// let d = Weibull::new(1.5, 1.0)?;
/// let mut rng = Xoshiro256PlusPlus::from_u64(3);
/// assert!(d.sample(&mut rng) > 0.0);
/// # Ok::<(), plurality_dist::InvalidParameterError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if either parameter is not
    /// positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, InvalidParameterError> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "weibull shape must be positive and finite, got {shape}"
            )));
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "weibull scale must be positive and finite, got {scale}"
            )));
        }
        Ok(Self { shape, scale })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The mean `λ·Γ(1 + 1/k)`.
    pub fn mean(&self) -> f64 {
        self.scale * crate::special::gamma_fn(1.0 + 1.0 / self.shape)
    }

    /// Draws one value by CDF inversion.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (-open01(rng).ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256PlusPlus;

    fn sample_stats(mut draw: impl FnMut() -> f64, n: usize) -> (f64, f64) {
        let xs: Vec<f64> = (0..n).map(|_| draw()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn exponential_rejects_bad_rates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-2.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn exponential_mean_and_variance_match_theory() {
        let d = Exponential::new(2.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(10);
        let (mean, var) = sample_stats(|| d.sample(&mut rng), 200_000);
        assert!((mean - 0.4).abs() < 0.01, "mean {mean}");
        assert!((var - 0.16).abs() < 0.01, "var {var}");
    }

    #[test]
    fn ziggurat_tables_are_well_formed() {
        let t = zig_tables();
        // Edges strictly decrease from the tail edge down to 0, and the
        // recurrence must stay well away from the complex domain.
        for i in 1..257 {
            assert!(t.x[i] < t.x[i - 1], "x not decreasing at {i}");
            assert!(t.x[i].is_finite());
        }
        assert!((t.x[1] - ZIG_R).abs() < 1e-12);
        assert_eq!(t.x[256], 0.0);
        // The recurrence should close: the top layer's rectangle
        // (width x[255], height 1 − f[255]) has area ≈ V, i.e. the
        // published (R, V) pair is consistent with 256 layers.
        let top_area = t.x[255] * (1.0 - t.f[255]);
        assert!((top_area - ZIG_V).abs() < 1e-8, "top area {top_area}");
        for i in 0..257 {
            assert!(t.f[i] > 0.0 && t.f[i] <= 1.0);
            assert!((t.f[i] - (-t.x[i]).exp()).abs() < 1e-15);
        }
    }

    #[test]
    fn ziggurat_moments_and_tail_match_unit_exponential() {
        let mut rng = Xoshiro256PlusPlus::from_u64(15);
        let n = 400_000;
        let xs: Vec<f64> = (0..n).map(|_| unit_exp(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        // Quantile checks across the body and the shifted tail.
        for (q, p) in [
            (0.5, 1.0 - (-0.5f64).exp()),
            (2.0, 1.0 - (-2.0f64).exp()),
            (8.0, 1.0 - (-8.0f64).exp()),
        ] {
            let hits = xs.iter().filter(|&&x| x <= q).count() as f64 / n as f64;
            let tol = 3.0 * (p * (1.0 - p) / n as f64).sqrt() + 1e-4;
            assert!((hits - p).abs() < tol, "P(X<={q}) = {hits}, want {p}");
        }
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn sample_fast_scales_by_rate() {
        let d = Exponential::new(2.5).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(16);
        let (mean, var) = sample_stats(|| d.sample_fast(&mut rng), 200_000);
        assert!((mean - 0.4).abs() < 0.01, "mean {mean}");
        assert!((var - 0.16).abs() < 0.01, "var {var}");
    }

    #[test]
    fn gamma_mean_and_variance_match_theory() {
        // Gamma(7, 2): mean 3.5, variance 7/4.
        let d = Gamma::new(7.0, 2.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let (mean, var) = sample_stats(|| d.sample(&mut rng), 200_000);
        assert!((mean - 3.5).abs() < 0.03, "mean {mean}");
        assert!((var - 1.75).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gamma_small_shape_boost_is_unbiased() {
        // Gamma(0.5, 1): mean 0.5, variance 0.5.
        let d = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(12);
        let (mean, var) = sample_stats(|| d.sample(&mut rng), 200_000);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 0.5).abs() < 0.03, "var {var}");
    }

    #[test]
    fn weibull_mean_matches_gamma_function_formula() {
        // Weibull(2, 1): mean Γ(1.5) = √π/2 ≈ 0.886227.
        let d = Weibull::new(2.0, 1.0).unwrap();
        assert!((d.mean() - 0.886_226_925_452_758).abs() < 1e-12);
        let mut rng = Xoshiro256PlusPlus::from_u64(13);
        let (mean, _) = sample_stats(|| d.sample(&mut rng), 200_000);
        assert!((mean - d.mean()).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert!((w.mean() - 2.0).abs() < 1e-12);
        let mut rng = Xoshiro256PlusPlus::from_u64(14);
        let (mean, var) = sample_stats(|| w.sample(&mut rng), 100_000);
        assert!((mean - 2.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let d = Gamma::new(3.0, 1.0).unwrap();
        let mut a = Xoshiro256PlusPlus::from_u64(15);
        let mut b = Xoshiro256PlusPlus::from_u64(15);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
