//! Deterministic random number generation.
//!
//! Reproducibility is a workspace-wide contract: every engine is a pure
//! function of its `u64` seed, so experiments can be re-run bit-for-bit and
//! failures always reproduce. Two pieces make that work:
//!
//! * [`Xoshiro256PlusPlus`] — Blackman & Vigna's xoshiro256++ generator
//!   (256-bit state, 64-bit output, period `2²⁵⁶ − 1`), seeded through
//!   splitmix64 so that *any* `u64` — including 0 — yields a well-mixed
//!   state;
//! * [`derive_seed`] — a pure mixing function turning one master seed into
//!   arbitrarily many decorrelated stream seeds (per repetition, per
//!   subsystem), so experiment harnesses never reuse a stream by accident.

use rand::RngCore;

/// One step of the splitmix64 sequence: advances `state` and returns the
/// scrambled output. Used for seeding and seed derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a decorrelated stream seed from a master seed.
///
/// The map is injective in practice for the stream counts experiments use
/// (it is a bijective finalizer applied to `master ⊕ mix(stream)`), stable
/// across releases, and cheap enough to call once per repetition.
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::derive_seed;
/// // Stable: the same inputs always give the same stream seed.
/// assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
/// // Decorrelated: nearby streams differ in about half their bits.
/// assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
/// assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
/// ```
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut state = stream ^ 0xA076_1D64_78BD_642F;
    let salt = splitmix64(&mut state);
    let mut state = master ^ salt;
    splitmix64(&mut state)
}

/// The xoshiro256++ generator of Blackman & Vigna (2019).
///
/// Fast (four xor/shift/rotate word operations per draw), equidistributed
/// in all 64 output bits, with a 2²⁵⁶ − 1 period — comfortably beyond any
/// simulation in this workspace. Construct it with [`from_u64`], which runs
/// the seed through splitmix64 per the authors' recommendation so that
/// low-entropy seeds (0, 1, 2, …) still produce well-mixed states.
///
/// [`from_u64`]: Xoshiro256PlusPlus::from_u64
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use rand::Rng;
///
/// let mut a = Xoshiro256PlusPlus::from_u64(1);
/// let mut b = Xoshiro256PlusPlus::from_u64(1);
/// // Identical seeds give identical streams …
/// assert_eq!(a.gen::<f64>(), b.gen::<f64>());
/// // … and draws stay in [0, 1).
/// let x: f64 = a.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    state: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    #[must_use]
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Advances the generator by one step and returns the next output.
    #[inline]
    fn step(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn matches_reference_vectors() {
        // Reference: xoshiro256++ seeded with splitmix64(0) per the
        // authors' C code (first outputs of the sequence for seed 0, as
        // also used by the `rand_xoshiro` crate's test vectors).
        let mut rng = Xoshiro256PlusPlus::from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn streams_are_pure_functions_of_the_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut a = Xoshiro256PlusPlus::from_u64(seed);
            let mut b = Xoshiro256PlusPlus::from_u64(seed);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = Xoshiro256PlusPlus::from_u64(7);
        let mut b = Xoshiro256PlusPlus::from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut rng = Xoshiro256PlusPlus::from_u64(0);
        // A degenerate all-zero state would output only zeros.
        assert!((0..16).map(|_| rng.next_u64()).any(|x| x != 0));
    }

    #[test]
    fn uniform_f64_mean_is_one_half() {
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        const N: usize = 200_000;
        let mean = (0..N).map(|_| rng.gen::<f64>()).sum::<f64>() / N as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        let a: Vec<u64> = (0..100).map(|i| derive_seed(0xFEED, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| derive_seed(0xFEED, i)).collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "collisions in derived seeds");
        // Different masters give different streams.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}
