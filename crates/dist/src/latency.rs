//! Edge-latency laws and composite channel waiting times.
//!
//! In the asynchronous model (Section 3.1 of arXiv 1806.02596), every
//! message crossing an edge is delayed by an i.i.d. draw from a latency
//! law `F` with **positive aging** — a non-decreasing hazard rate. The
//! protocol's real-time behaviour is measured in *time units*
//! `C1 = F⁻¹(0.9)` of the composite waiting time `T3` of one full
//! interaction (Figure 1):
//!
//! * `T1` — one edge traversal (a single latency draw);
//! * `T2 = T1 + T1` — establishing one channel (request + accept);
//! * channel phase — the node's parallel channels followed by the leader
//!   channel (`max(T2, T2) + T2` in the single-leader pattern);
//! * `T3` — channel phase plus the final one-way signal to the leader.
//!
//! For exponential latencies `Exp(β)`, `T3` is stochastically dominated by
//! a `Γ(7, β)` variable (sum of 7 edge traversals), which is the majorant
//! the analysis quantifies against; the paper's Remark 14 claims the
//! cruder bound `10/(3β)`, which the measured `C1` exceeds for slow
//! channels (see EXPERIMENTS.md, E1).

use crate::continuous::{open01, unit_exp, Exponential, Gamma, Weibull};
use crate::quantile::quantile_sorted;
use crate::rng::{derive_seed, Xoshiro256PlusPlus};
use crate::special::gamma_quantile_integer;
use crate::InvalidParameterError;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An edge-latency law. All stock families have non-decreasing hazard
/// rates for the parameter ranges their constructors accept with
/// `shape ≥ 1` — the *positive aging* property of the paper's title
/// ([`Latency::is_positive_aging`]).
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_dist::Latency;
///
/// // Mean-1 members of different families:
/// let families = [
///     Latency::exponential(1.0)?,
///     Latency::erlang(4, 4.0)?,
///     Latency::weibull_with_mean(1.5, 1.0)?,
///     Latency::uniform(0.0, 2.0)?,
///     Latency::deterministic(1.0)?,
/// ];
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// for latency in families {
///     assert!((latency.mean() - 1.0).abs() < 1e-12);
///     assert!(latency.sample(&mut rng) >= 0.0);
/// }
/// # Ok::<(), plurality_dist::InvalidParameterError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Latency {
    /// Exponential with the given rate — the memoryless boundary case of
    /// positive aging (constant hazard).
    Exponential {
        /// Rate `λ` (mean `1/λ`).
        rate: f64,
    },
    /// Erlang (integer-shape gamma): the sum of `shape` independent
    /// `Exp(rate)` stages; strictly aging for `shape ≥ 2`.
    Erlang {
        /// Number of exponential stages.
        shape: u32,
        /// Per-stage rate (mean `shape/rate`).
        rate: f64,
    },
    /// Weibull; strictly aging for `shape > 1`.
    Weibull {
        /// Shape `k`.
        shape: f64,
        /// Scale `λ` (mean `λ·Γ(1 + 1/k)`).
        scale: f64,
    },
    /// Uniform on `[lo, hi)`; bounded support gives an increasing hazard.
    Uniform {
        /// Inclusive lower bound (≥ 0).
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// A deterministic latency — the extreme of positive aging.
    Deterministic {
        /// The fixed latency value.
        value: f64,
    },
}

impl Latency {
    /// Exponential latency with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `rate` is not positive and
    /// finite.
    pub fn exponential(rate: f64) -> Result<Self, InvalidParameterError> {
        Exponential::new(rate)?;
        Ok(Self::Exponential { rate })
    }

    /// Erlang latency: the sum of `shape` independent `Exp(rate)` stages.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `shape == 0` or `rate` is not
    /// positive and finite.
    pub fn erlang(shape: u32, rate: f64) -> Result<Self, InvalidParameterError> {
        if shape == 0 {
            return Err(InvalidParameterError::new(
                "erlang shape must be at least 1",
            ));
        }
        Exponential::new(rate)?;
        Ok(Self::Erlang { shape, rate })
    }

    /// Weibull latency with the given shape, scaled so the mean equals
    /// `mean` (convenient for fixed-mean family comparisons).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `shape` or `mean` is not
    /// positive and finite.
    pub fn weibull_with_mean(shape: f64, mean: f64) -> Result<Self, InvalidParameterError> {
        if !(mean > 0.0 && mean.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "weibull mean must be positive and finite, got {mean}"
            )));
        }
        // Validates the shape.
        Weibull::new(shape, 1.0)?;
        let scale = mean / crate::special::gamma_fn(1.0 + 1.0 / shape);
        Ok(Self::Weibull { shape, scale })
    }

    /// Uniform latency on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] unless `0 ≤ lo < hi` with both
    /// bounds finite.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, InvalidParameterError> {
        if !(lo >= 0.0 && lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(InvalidParameterError::new(format!(
                "uniform latency needs 0 ≤ lo < hi, got [{lo}, {hi})"
            )));
        }
        Ok(Self::Uniform { lo, hi })
    }

    /// Deterministic latency of the given value.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `value` is not positive and
    /// finite.
    pub fn deterministic(value: f64) -> Result<Self, InvalidParameterError> {
        if !(value > 0.0 && value.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "deterministic latency must be positive and finite, got {value}"
            )));
        }
        Ok(Self::Deterministic { value })
    }

    /// Draws one edge latency (`T1`).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Self::Exponential { rate } => -open01(rng).ln() / rate,
            Self::Erlang { shape, rate } => {
                if shape <= 16 {
                    let mut acc = 0.0;
                    for _ in 0..shape {
                        acc -= open01(rng).ln();
                    }
                    acc / rate
                } else {
                    Gamma::new(f64::from(shape), rate)
                        .expect("validated at construction")
                        .sample(rng)
                }
            }
            Self::Weibull { shape, scale } => scale * (-open01(rng).ln()).powf(1.0 / shape),
            Self::Uniform { lo, hi } => lo + rng.gen::<f64>() * (hi - lo),
            Self::Deterministic { value } => value,
        }
    }

    /// The expected latency `E[T1]`.
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Exponential { rate } => 1.0 / rate,
            Self::Erlang { shape, rate } => f64::from(shape) / rate,
            Self::Weibull { shape, scale } => scale * crate::special::gamma_fn(1.0 + 1.0 / shape),
            Self::Uniform { lo, hi } => 0.5 * (lo + hi),
            Self::Deterministic { value } => value,
        }
    }

    /// Whether the law has a non-decreasing hazard rate — the paper's
    /// *positive aging* assumption. True for every stock family except
    /// sub-exponential Weibulls (`shape < 1`), whose hazard decreases.
    pub fn is_positive_aging(&self) -> bool {
        match *self {
            Self::Exponential { .. } => true, // constant hazard: boundary case
            Self::Erlang { shape, .. } => shape >= 1,
            Self::Weibull { shape, .. } => shape >= 1.0,
            Self::Uniform { .. } => true,
            Self::Deterministic { .. } => true,
        }
    }

    /// The machine-readable spec of this law, in the grammar of
    /// [`Latency::parse_spec`]. The CLI, the scenario DSL ecosystem, and
    /// the `plurality-api` run specs all share this one grammar.
    ///
    /// `Latency::parse_spec(&l.spec())` reproduces `l` exactly for the
    /// exponential, Erlang, uniform, and deterministic families; the
    /// Weibull family is mean-parameterized in the grammar, so its
    /// round-trip is exact up to the floating-point `scale ↔ mean`
    /// conversion.
    pub fn spec(&self) -> String {
        match *self {
            Self::Exponential { rate } => format!("exp:{rate}"),
            Self::Erlang { shape, rate } => format!("erlang:{shape}:{rate}"),
            Self::Weibull { shape, .. } => format!("weibull:{shape}:{}", self.mean()),
            Self::Uniform { lo, hi } => format!("uniform:{lo}:{hi}"),
            Self::Deterministic { value } => format!("det:{value}"),
        }
    }

    /// Parses a latency spec:
    ///
    /// ```text
    /// exp:RATE | erlang:SHAPE:RATE | weibull:SHAPE:MEAN
    ///          | uniform:LO:HI     | det:VALUE
    /// ```
    ///
    /// # Examples
    ///
    /// ```
    /// use plurality_dist::Latency;
    /// assert_eq!(Latency::parse_spec("exp:2.0"), Latency::exponential(2.0));
    /// assert_eq!(Latency::parse_spec("erlang:3:1.5"), Latency::erlang(3, 1.5));
    /// assert!(Latency::parse_spec("cauchy:1").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] for unknown families, malformed
    /// numbers, or parameters the family constructors reject.
    pub fn parse_spec(spec: &str) -> Result<Self, InvalidParameterError> {
        let parts: Vec<&str> = spec.split(':').collect();
        let num = |s: &str| -> Result<f64, InvalidParameterError> {
            s.parse()
                .map_err(|_| InvalidParameterError::new(format!("`{s}` is not a number")))
        };
        match parts.as_slice() {
            ["exp", rate] => Self::exponential(num(rate)?),
            ["erlang", shape, rate] => {
                let shape: u32 = shape.parse().map_err(|_| {
                    InvalidParameterError::new(format!("`{shape}` is not an integer"))
                })?;
                Self::erlang(shape, num(rate)?)
            }
            ["weibull", shape, mean] => Self::weibull_with_mean(num(shape)?, num(mean)?),
            ["uniform", lo, hi] => Self::uniform(num(lo)?, num(hi)?),
            ["det", value] => Self::deterministic(num(value)?),
            _ => Err(InvalidParameterError::new(format!(
                "unknown latency spec `{spec}` (expected exp:RATE, erlang:SHAPE:RATE, \
                 weibull:SHAPE:MEAN, uniform:LO:HI, or det:VALUE)"
            ))),
        }
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Exponential { rate } => write!(f, "Exp({rate})"),
            Self::Erlang { shape, rate } => write!(f, "Erlang({shape}, {rate})"),
            Self::Weibull { shape, scale } => write!(f, "Weibull({shape}, scale {scale:.4})"),
            Self::Uniform { lo, hi } => write!(f, "Uniform[{lo}, {hi})"),
            Self::Deterministic { value } => write!(f, "Deterministic({value})"),
        }
    }
}

/// Which channels a node opens per interaction — determines the shape of
/// the composite waiting time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelPattern {
    /// Algorithm 2: two peer channels in parallel, then the leader
    /// channel (`max(T2, T2) + T2`).
    SingleLeader,
    /// Algorithm 4: three peer channels in parallel (the third doubles as
    /// the line to the sampled node's cluster leader), then the relay
    /// channel (`max(T2, T2, T2) + T2`).
    MultiLeader,
}

impl ChannelPattern {
    /// How many parallel peer channels the pattern opens.
    fn parallel_channels(self) -> u32 {
        match self {
            Self::SingleLeader => 2,
            Self::MultiLeader => 3,
        }
    }

    /// Edge traversals in the Γ majorant of `T3`: each parallel channel
    /// majorized by its 2-traversal sum, plus 2 for the sequential channel
    /// and 1 for the final signal.
    fn majorant_stages(self) -> u32 {
        2 * self.parallel_channels() + 2 + 1
    }
}

/// The composite waiting time of one interaction under a latency law and
/// channel pattern: the sampler behind the paper's time unit
/// `C1 = F⁻¹(0.9)` (Figure 1).
///
/// # Examples
///
/// ```
/// use plurality_dist::{ChannelPattern, Latency, WaitingTime};
///
/// let wt = WaitingTime::new(
///     Latency::exponential(1.0)?,
///     ChannelPattern::SingleLeader,
/// );
/// let c1 = wt.time_unit(20_000, 42);
/// // Above the paper's claimed Remark 14 constant, below the Γ(7, β)
/// // majorant quantile (the reproduction finding of experiment E1).
/// assert!(c1 > wt.remark14_bound().unwrap());
/// assert!(c1 <= wt.majorant_time_unit().unwrap());
/// # Ok::<(), plurality_dist::InvalidParameterError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaitingTime {
    latency: Latency,
    pattern: ChannelPattern,
}

impl WaitingTime {
    /// Creates the waiting-time law for a latency and channel pattern.
    pub fn new(latency: Latency, pattern: ChannelPattern) -> Self {
        Self { latency, pattern }
    }

    /// The underlying edge-latency law.
    pub fn latency(&self) -> Latency {
        self.latency
    }

    /// The channel pattern.
    pub fn pattern(&self) -> ChannelPattern {
        self.pattern
    }

    /// One channel-establishment time `T2 = T1 + T1`.
    #[inline]
    fn sample_t2<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.latency.sample(rng) + self.latency.sample(rng)
    }

    /// The channel phase of one interaction: the parallel peer channels
    /// (their maximum) followed by the sequential leader/relay channel.
    /// This is the delay the engines schedule between a tick and its
    /// `OpComplete` event.
    ///
    /// For exponential latencies each `T2 = −ln u₁/β − ln u₂/β` is drawn
    /// as `−ln(u₁·u₂)/β` — the same real number up to floating-point
    /// rounding (and thus the same law), consuming the same two uniforms,
    /// with half the `ln` evaluations on the engines' hottest sampling
    /// path.
    #[inline]
    pub fn sample_channel_phase<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if let Latency::Exponential { rate } = self.latency {
            // Each channel is Erlang(2): two ziggurat draws replace the
            // `-ln(u1·u2)` composition — same law, no transcendental on
            // the ~99% fast path.
            let mut slowest = unit_exp(rng) + unit_exp(rng);
            for _ in 1..self.pattern.parallel_channels() {
                slowest = slowest.max(unit_exp(rng) + unit_exp(rng));
            }
            return (slowest + unit_exp(rng) + unit_exp(rng)) / rate;
        }
        let mut slowest = self.sample_t2(rng);
        for _ in 1..self.pattern.parallel_channels() {
            slowest = slowest.max(self.sample_t2(rng));
        }
        slowest + self.sample_t2(rng)
    }

    /// The full composite waiting time `T3`: channel phase plus the final
    /// one-way signal travel. The time unit is the 0.9-quantile of this
    /// law.
    #[inline]
    pub fn sample_t3<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_channel_phase(rng) + self.latency.sample(rng)
    }

    /// Monte-Carlo estimate of the time unit `C1 = F⁻¹(0.9)` of `T3`,
    /// from `samples` draws of a dedicated generator seeded with `seed` —
    /// deterministic, so engines deriving thresholds from it stay pure
    /// functions of their seed.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn time_unit(&self, samples: usize, seed: u64) -> f64 {
        assert!(samples > 0, "time_unit: need at least one sample");
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let mut draws: Vec<f64> = (0..samples).map(|_| self.sample_t3(&mut rng)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).expect("waiting times are finite"));
        quantile_sorted(&draws, 0.9)
    }

    /// Memoized [`WaitingTime::time_unit`]: the estimate for this
    /// `(latency, pattern, samples)` triple, computed once per process
    /// under a deterministic seed derived from the triple itself (see
    /// [`WaitingTime::time_unit_cache_seed`]) and served from a global
    /// cache afterwards.
    ///
    /// Engines use this so sweeping thousands of repetitions re-runs the
    /// Monte-Carlo quantile estimate once per latency law instead of once
    /// per repetition. Because the seed is a pure function of the triple,
    /// the cached value is identical across processes, threads, and
    /// repetition counts — a run configured by it remains a pure function
    /// of its own seed.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn time_unit_cached(&self, samples: usize) -> f64 {
        /// Cache key: latency family tag, its two parameter bit patterns,
        /// the channel pattern, and the sample count.
        type TimeUnitKey = (u8, u64, u64, u8, usize);
        static CACHE: OnceLock<Mutex<HashMap<TimeUnitKey, f64>>> = OnceLock::new();
        let key = self.cache_key(samples);
        let mut cache = CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("time-unit cache poisoned");
        // The estimate is computed while holding the lock: concurrent
        // callers wanting the same triple wait for one computation rather
        // than racing through redundant 20k-sample estimates.
        *cache
            .entry(key)
            .or_insert_with(|| self.time_unit(samples, self.time_unit_cache_seed()))
    }

    /// The deterministic seed [`WaitingTime::time_unit_cached`] feeds to
    /// [`WaitingTime::time_unit`]: a `derive_seed` fold over the latency
    /// family, its parameter bits, and the channel pattern. Exposed so
    /// tests can verify the memoized value equals a fresh estimate.
    pub fn time_unit_cache_seed(&self) -> u64 {
        let (tag, p0, p1, pattern, _) = self.cache_key(0);
        let mut seed = derive_seed(0x0C1C_AC4E, u64::from(tag));
        seed = derive_seed(seed, p0);
        seed = derive_seed(seed, p1);
        derive_seed(seed, u64::from(pattern))
    }

    /// Canonical cache key for this waiting-time law: latency family tag,
    /// its two parameter payloads (f64 bit patterns / integer shapes),
    /// channel pattern, and sample count.
    fn cache_key(&self, samples: usize) -> (u8, u64, u64, u8, usize) {
        let (tag, p0, p1) = match self.latency {
            Latency::Exponential { rate } => (0u8, rate.to_bits(), 0),
            Latency::Erlang { shape, rate } => (1, u64::from(shape), rate.to_bits()),
            Latency::Weibull { shape, scale } => (2, shape.to_bits(), scale.to_bits()),
            Latency::Uniform { lo, hi } => (3, lo.to_bits(), hi.to_bits()),
            Latency::Deterministic { value } => (4, value.to_bits(), 0),
        };
        let pattern = match self.pattern {
            ChannelPattern::SingleLeader => 0u8,
            ChannelPattern::MultiLeader => 1,
        };
        (tag, p0, p1, pattern, samples)
    }

    /// The exact 0.9-quantile of the `Γ(s, β)` majorant of `T3` for
    /// exponential latencies (`s = 7` single-leader, `s = 9`
    /// multi-leader): every `max` replaced by a sum. `None` for
    /// non-exponential latencies, where no closed-form majorant is used.
    pub fn majorant_time_unit(&self) -> Option<f64> {
        match self.latency {
            Latency::Exponential { rate } => Some(gamma_quantile_integer(
                self.pattern.majorant_stages(),
                rate,
                0.9,
            )),
            _ => None,
        }
    }

    /// The paper's claimed Remark 14 bound `10/(3β)` on the single-leader
    /// time unit for exponential latencies. The measured `C1` *exceeds*
    /// this for slow channels — the reproduction's E1 finding (the
    /// Remark's proof drops an `e^{−βx}` factor); the Γ majorant of
    /// [`WaitingTime::majorant_time_unit`] is the corrected bound.
    /// `None` for other latency families or the multi-leader pattern.
    pub fn remark14_bound(&self) -> Option<f64> {
        match (self.latency, self.pattern) {
            (Latency::Exponential { rate }, ChannelPattern::SingleLeader) => {
                Some(10.0 / (3.0 * rate))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_parameters() {
        assert!(Latency::exponential(0.0).is_err());
        assert!(Latency::exponential(-1.0).is_err());
        assert!(Latency::erlang(0, 1.0).is_err());
        assert!(Latency::erlang(2, 0.0).is_err());
        assert!(Latency::weibull_with_mean(0.0, 1.0).is_err());
        assert!(Latency::weibull_with_mean(1.5, -1.0).is_err());
        assert!(Latency::uniform(2.0, 1.0).is_err());
        assert!(Latency::uniform(-1.0, 1.0).is_err());
        assert!(Latency::deterministic(0.0).is_err());
        assert!(Latency::deterministic(f64::INFINITY).is_err());
    }

    #[test]
    fn means_match_constructions() {
        assert_eq!(Latency::exponential(4.0).unwrap().mean(), 0.25);
        assert_eq!(Latency::erlang(6, 3.0).unwrap().mean(), 2.0);
        assert!((Latency::weibull_with_mean(1.5, 2.5).unwrap().mean() - 2.5).abs() < 1e-12);
        assert_eq!(Latency::uniform(1.0, 3.0).unwrap().mean(), 2.0);
        assert_eq!(Latency::deterministic(0.7).unwrap().mean(), 0.7);
    }

    #[test]
    fn empirical_means_match_theory() {
        let mut rng = Xoshiro256PlusPlus::from_u64(20);
        for latency in [
            Latency::exponential(2.0).unwrap(),
            Latency::erlang(3, 3.0).unwrap(),
            Latency::weibull_with_mean(1.5, 1.0).unwrap(),
            Latency::uniform(0.5, 1.5).unwrap(),
            Latency::deterministic(1.0).unwrap(),
        ] {
            const N: usize = 100_000;
            let mean = (0..N).map(|_| latency.sample(&mut rng)).sum::<f64>() / N as f64;
            assert!(
                (mean - latency.mean()).abs() < 0.01,
                "{latency}: empirical {mean} vs {}",
                latency.mean()
            );
        }
    }

    #[test]
    fn every_stock_family_is_positive_aging() {
        for latency in [
            Latency::exponential(1.0).unwrap(),
            Latency::erlang(5, 5.0).unwrap(),
            Latency::weibull_with_mean(3.0, 1.0).unwrap(),
            Latency::uniform(0.0, 2.0).unwrap(),
            Latency::deterministic(1.0).unwrap(),
        ] {
            assert!(latency.is_positive_aging(), "{latency}");
        }
        // A sub-exponential Weibull would not be.
        let decreasing = Latency::Weibull {
            shape: 0.5,
            scale: 1.0,
        };
        assert!(!decreasing.is_positive_aging());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Latency::exponential(1.0).unwrap().to_string(), "Exp(1)");
        assert!(Latency::erlang(2, 2.0)
            .unwrap()
            .to_string()
            .contains("Erlang"));
    }

    #[test]
    fn time_unit_is_deterministic_and_seed_sensitive() {
        let wt = WaitingTime::new(
            Latency::exponential(0.5).unwrap(),
            ChannelPattern::SingleLeader,
        );
        assert_eq!(wt.time_unit(5_000, 9), wt.time_unit(5_000, 9));
        assert_ne!(wt.time_unit(5_000, 9), wt.time_unit(5_000, 10));
    }

    #[test]
    fn memoized_time_unit_matches_fresh_estimate() {
        let wt = WaitingTime::new(
            Latency::erlang(3, 3.0).unwrap(),
            ChannelPattern::MultiLeader,
        );
        let fresh = wt.time_unit(4_000, wt.time_unit_cache_seed());
        assert_eq!(wt.time_unit_cached(4_000), fresh);
        // Second call serves the cache — still the same value.
        assert_eq!(wt.time_unit_cached(4_000), fresh);
        // A different law misses the cache and differs.
        let other = WaitingTime::new(
            Latency::erlang(3, 3.0).unwrap(),
            ChannelPattern::SingleLeader,
        );
        assert_ne!(other.time_unit_cached(4_000), fresh);
    }

    #[test]
    fn cache_seed_separates_laws_and_patterns() {
        let exp = Latency::exponential(1.0).unwrap();
        let single = WaitingTime::new(exp, ChannelPattern::SingleLeader);
        let multi = WaitingTime::new(exp, ChannelPattern::MultiLeader);
        assert_ne!(single.time_unit_cache_seed(), multi.time_unit_cache_seed());
        let slower = WaitingTime::new(
            Latency::exponential(0.5).unwrap(),
            ChannelPattern::SingleLeader,
        );
        assert_ne!(single.time_unit_cache_seed(), slower.time_unit_cache_seed());
    }

    #[test]
    fn time_unit_scales_linearly_with_mean_latency() {
        let fast = WaitingTime::new(
            Latency::exponential(1.0).unwrap(),
            ChannelPattern::SingleLeader,
        );
        let slow = WaitingTime::new(
            Latency::exponential(0.1).unwrap(),
            ChannelPattern::SingleLeader,
        );
        let ratio = slow.time_unit(40_000, 1) / fast.time_unit(40_000, 1);
        assert!((ratio - 10.0).abs() < 0.7, "ratio {ratio}");
    }

    #[test]
    fn measured_c1_sits_between_remark14_and_majorant() {
        let wt = WaitingTime::new(
            Latency::exponential(1.0).unwrap(),
            ChannelPattern::SingleLeader,
        );
        let c1 = wt.time_unit(60_000, 4);
        assert!(c1 > wt.remark14_bound().unwrap(), "C1 {c1}");
        assert!(c1 <= wt.majorant_time_unit().unwrap(), "C1 {c1}");
    }

    #[test]
    fn multi_leader_waits_longer_than_single_leader() {
        let latency = Latency::exponential(1.0).unwrap();
        let single = WaitingTime::new(latency, ChannelPattern::SingleLeader);
        let multi = WaitingTime::new(latency, ChannelPattern::MultiLeader);
        assert!(multi.time_unit(40_000, 2) > single.time_unit(40_000, 2));
        assert!(multi.majorant_time_unit().unwrap() > single.majorant_time_unit().unwrap());
        assert_eq!(multi.remark14_bound(), None);
    }

    #[test]
    fn non_exponential_latencies_have_no_closed_form_bounds() {
        let wt = WaitingTime::new(
            Latency::deterministic(1.0).unwrap(),
            ChannelPattern::SingleLeader,
        );
        assert_eq!(wt.majorant_time_unit(), None);
        assert_eq!(wt.remark14_bound(), None);
        // Deterministic latency 1: T2 = 2, channel phase max(2, 2) + 2 = 4,
        // T3 = 4 + 1 = 5 — all degenerate point masses.
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        assert_eq!(wt.sample_channel_phase(&mut rng), 4.0);
        assert_eq!(wt.sample_t3(&mut rng), 5.0);
        assert_eq!(wt.time_unit(100, 0), 5.0);
    }

    #[test]
    fn spec_round_trips_for_exactly_parameterized_families() {
        for latency in [
            Latency::exponential(0.5).unwrap(),
            Latency::erlang(3, 1.5).unwrap(),
            Latency::uniform(0.25, 2.0).unwrap(),
            Latency::deterministic(1.25).unwrap(),
        ] {
            assert_eq!(
                Latency::parse_spec(&latency.spec()),
                Ok(latency),
                "{}",
                latency.spec()
            );
        }
        // Weibull is mean-parameterized: round-trip up to scale ↔ mean
        // conversion error.
        let w = Latency::weibull_with_mean(1.5, 2.0).unwrap();
        let back = Latency::parse_spec(&w.spec()).unwrap();
        assert!((back.mean() - w.mean()).abs() < 1e-12);
    }

    #[test]
    fn parse_spec_rejects_malformed_input() {
        assert!(Latency::parse_spec("exp").is_err());
        assert!(Latency::parse_spec("exp:-1").is_err());
        assert!(Latency::parse_spec("erlang:x:1").is_err());
        assert!(Latency::parse_spec("cauchy:1").is_err());
        assert!(Latency::parse_spec("uniform:2:1").is_err());
    }
}
