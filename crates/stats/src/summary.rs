//! Streaming summary statistics and confidence intervals.

use plurality_dist::special::normal_quantile;

/// Welford-style online accumulator for mean/variance/extrema.
///
/// # Examples
///
/// ```
/// use plurality_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "OnlineStats::push: NaN observation");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_sd(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_sd() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// `confidence` level (e.g. 0.95), as `(lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `confidence ∉ (0, 1)`.
    pub fn confidence_interval(&self, confidence: f64) -> (f64, f64) {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must lie in (0, 1)"
        );
        if self.count == 0 {
            return (f64::NAN, f64::NAN);
        }
        let z = normal_quantile(0.5 + confidence / 2.0);
        let half = z * self.standard_error();
        (self.mean - half, self.mean + half)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total;
        self.mean = new_mean;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fraction of `true` outcomes with a Wilson score interval — used for
/// success-rate reporting ("whp." surrogates).
///
/// Returns `(fraction, lo, hi)` at the given confidence.
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials` or
/// `confidence ∉ (0, 1)`.
///
/// # Examples
///
/// ```
/// use plurality_stats::success_rate;
/// let (p, lo, hi) = success_rate(98, 100, 0.95);
/// assert_eq!(p, 0.98);
/// assert!(lo > 0.9 && hi <= 1.0);
/// ```
pub fn success_rate(successes: u64, trials: u64, confidence: f64) -> (f64, f64, f64) {
    assert!(trials > 0, "success_rate: trials must be positive");
    assert!(successes <= trials, "success_rate: successes > trials");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "success_rate: confidence must lie in (0, 1)"
    );
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = normal_quantile(0.5 + confidence / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    (p, (centre - half).max(0.0), (centre + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.sample_variance(), 0.0);
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn merge_matches_concatenation() {
        let xs = [1.0, 2.0, 3.5, 7.0, -1.0];
        let ys = [0.5, 10.0, 2.2];
        let mut a = OnlineStats::from_slice(&xs);
        let b = OnlineStats::from_slice(&ys);
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let c = OnlineStats::from_slice(&all);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - c.sample_variance()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let s = OnlineStats::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (lo, hi) = s.confidence_interval(0.95);
        assert!(lo < 3.0 && 3.0 < hi);
        let (lo99, hi99) = s.confidence_interval(0.99);
        assert!(lo99 < lo && hi < hi99, "wider level must widen interval");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_push_panics() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
    }

    #[test]
    fn wilson_interval_sane() {
        let (p, lo, hi) = success_rate(50, 100, 0.95);
        assert_eq!(p, 0.5);
        assert!(lo > 0.39 && lo < 0.41, "lo {lo}");
        assert!(hi > 0.59 && hi < 0.61, "hi {hi}");
        // Perfect record: interval stays below 1 but close.
        let (_, lo, hi) = success_rate(100, 100, 0.95);
        assert!(hi <= 1.0 && lo > 0.94);
    }
}
