//! ASCII tables and CSV export for experiment reports.
//!
//! Every experiment binary prints a paper-style table through [`Table`] and
//! can optionally persist the same rows as CSV.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned ASCII table.
///
/// # Examples
///
/// ```
/// use plurality_stats::Table;
/// let mut t = Table::new("demo", &["n", "rounds"]);
/// t.row(&["1000".into(), "12".into()]);
/// t.row(&["2000".into(), "13".into()]);
/// let s = t.render();
/// assert!(s.contains("rounds"));
/// assert!(s.contains("2000"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "Table::new: headers must be non-empty");
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "Table::row: expected {} cells, got {}",
            self.headers.len(),
            cells.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as right-aligned ASCII text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:>width$}", h, width = widths[i]);
            if i + 1 < cols {
                line.push_str("  ");
            }
        }
        let _ = writeln!(out, "{line}");
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:>width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Writes the table as CSV (headers + rows) to `path`.
    ///
    /// Cells containing commas, quotes, or newlines are quoted per RFC 4180.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_csv())
    }

    /// Renders the table as a CSV string.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header_line: Vec<String> = self.headers.iter().map(|h| escape(h)).collect();
        out.push_str(&header_line.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let ax = x.abs();
    if ax == 0.0 {
        "0".to_string()
    } else if !(1e-3..1e6).contains(&ax) {
        format!("{x:.3e}")
    } else if ax >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("title", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "2000".into()]);
        let s = t.render();
        assert!(s.contains("## title"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines have equal width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "expected 2 cells")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("t", &["x", "note"]);
        t.row(&["1".into(), "plain".into()]);
        t.row(&["2".into(), "has,comma".into()]);
        t.row(&["3".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let mut t = Table::new("t", &["x"]);
        t.row(&["42".into()]);
        let path = std::env::temp_dir().join("plurality_stats_table_test.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n42\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn float_formatting_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(123.456), "123.5");
        assert_eq!(fmt_f64(1.5e7), "1.500e7");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(2.5e-5), "2.500e-5");
    }
}
