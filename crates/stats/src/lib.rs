//! # plurality-stats
//!
//! Statistics and reporting utilities for the experiment harness:
//!
//! * [`OnlineStats`] — streaming mean/variance/extrema with mergeable
//!   state and normal confidence intervals;
//! * [`success_rate`] — Wilson score intervals for whp.-style success
//!   fractions;
//! * [`fit`] — least-squares fits on log-transformed axes, for checking
//!   the paper's scaling laws (`log k`, `log log n`, …);
//! * [`Histogram`] — fixed-bin histograms with ASCII rendering;
//! * [`Table`] — paper-style ASCII tables with CSV export;
//! * [`ks_test`] / [`chi_square_homogeneity`] — two-sample
//!   goodness-of-fit tests, backing the aggregate-vs-per-node
//!   cross-validation suite in `plurality-agg`.
//!
//! ## Example
//!
//! ```
//! use plurality_stats::{OnlineStats, Table, fmt_f64};
//! let stats = OnlineStats::from_slice(&[10.0, 12.0, 11.0]);
//! let mut table = Table::new("convergence", &["n", "mean rounds"]);
//! table.row(&["1000".into(), fmt_f64(stats.mean())]);
//! println!("{}", table.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod regression;
mod summary;
mod table;
mod twosample;

pub use histogram::Histogram;
pub use regression::{fit, Axis, LinearFit};
pub use summary::{success_rate, OnlineStats};
pub use table::{fmt_f64, Table};
pub use twosample::{chi_square_homogeneity, ks_test, ChiSquareTest, KsTest};
