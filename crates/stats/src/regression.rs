//! Least-squares fits on (optionally log-transformed) axes.
//!
//! The scaling experiments check statements like "the convergence time grows
//! as `log k`" by fitting a line on a transformed axis and reporting slope
//! and `R²`.

/// Result of a simple linear regression `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Axis transformation applied before fitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Identity.
    Linear,
    /// Natural logarithm (requires positive values).
    Log,
    /// Iterated logarithm `ln ∘ ln` (requires values > 1).
    LogLog,
}

impl Axis {
    fn apply(self, x: f64) -> f64 {
        match self {
            Axis::Linear => x,
            Axis::Log => {
                assert!(x > 0.0, "log axis requires positive values, got {x}");
                x.ln()
            }
            Axis::LogLog => {
                assert!(x > 1.0, "log-log axis requires values > 1, got {x}");
                x.ln().ln()
            }
        }
    }
}

/// Fits `y_axis(y) ≈ a + b · x_axis(x)` by ordinary least squares.
///
/// # Panics
///
/// Panics if the slices differ in length, contain fewer than 2 points, or
/// violate the axis domain.
///
/// # Examples
///
/// ```
/// use plurality_stats::{fit, Axis};
/// // y = 3·log(x): slope 3 on a semilog-x fit.
/// let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
/// let ys: Vec<f64> = xs.iter().map(|x: &f64| 3.0 * x.ln()).collect();
/// let f = fit(&xs, &ys, Axis::Log, Axis::Linear);
/// assert!((f.slope - 3.0).abs() < 1e-9);
/// assert!(f.r_squared > 0.999);
/// ```
pub fn fit(xs: &[f64], ys: &[f64], x_axis: Axis, y_axis: Axis) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "fit: length mismatch");
    assert!(xs.len() >= 2, "fit: need at least 2 points");
    let tx: Vec<f64> = xs.iter().map(|&x| x_axis.apply(x)).collect();
    let ty: Vec<f64> = ys.iter().map(|&y| y_axis.apply(y)).collect();

    let n = tx.len() as f64;
    let mean_x = tx.iter().sum::<f64>() / n;
    let mean_y = ty.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in tx.iter().zip(&ty) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    assert!(sxx > 0.0, "fit: x values are all identical");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // constant y is fit perfectly by slope 0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [5.0, 7.0, 9.0, 11.0];
        let f = fit(&xs, &ys, Axis::Linear, Axis::Linear);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert!((f.predict(10.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_on_log_log_axes() {
        // y = 2·x^1.5 ⇒ ln y = ln 2 + 1.5 ln x.
        let xs = [1.0, 2.0, 5.0, 10.0, 50.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| 2.0 * x.powf(1.5)).collect();
        let f = fit(&xs, &ys, Axis::Log, Axis::Log);
        assert!((f.slope - 1.5).abs() < 1e-9, "slope {}", f.slope);
        assert!((f.intercept - 2f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn loglog_axis_applies_iterated_log() {
        let xs = [10.0, 100.0, 10_000.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| 4.0 * x.ln().ln() + 1.0).collect();
        let f = fit(&xs, &ys, Axis::LogLog, Axis::Linear);
        assert!((f.slope - 4.0).abs() < 1e-9);
        assert!((f.intercept - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_data_has_r_squared_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.3];
        let f = fit(&xs, &ys, Axis::Linear, Axis::Linear);
        assert!(f.r_squared > 0.98 && f.r_squared < 1.0);
    }

    #[test]
    fn constant_y_is_perfect_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [4.0, 4.0, 4.0];
        let f = fit(&xs, &ys, Axis::Linear, Axis::Linear);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_axis_rejects_nonpositive() {
        let _ = fit(&[0.0, 1.0], &[1.0, 2.0], Axis::Log, Axis::Linear);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        let _ = fit(&[2.0, 2.0], &[1.0, 2.0], Axis::Linear, Axis::Linear);
    }
}
