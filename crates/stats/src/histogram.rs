//! Fixed-bin histograms for distribution-shaped experiment outputs
//! (e.g. the spread of per-cluster phase-change times, or waiting-time
//! distributions behind Figure 1).

use plurality_dist::InvalidParameterError;

/// A histogram over `[lo, hi)` with equally wide bins, plus underflow and
/// overflow counters.
///
/// # Examples
///
/// ```
/// use plurality_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [1.0, 1.5, 7.2, 11.0, -3.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bin_count(0), 2); // 1.0 and 1.5 fall into [0, 2)
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if the bounds are not finite
    /// and ordered or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, InvalidParameterError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(InvalidParameterError::new(format!(
                "invalid histogram range [{lo}, {hi})"
            )));
        }
        if bins == 0 {
            return Err(InvalidParameterError::new(
                "histogram needs at least one bin",
            ));
        }
        Ok(Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "Histogram::add: NaN observation");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations, including under-/overflow.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether no observations were added.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// The half-open range `[lo, hi)` covered by bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin index {i} out of range");
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// A compact ASCII rendering (one line per bin, `#` bars normalized to
    /// the fullest bin).
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_range(i);
            let bar = "#".repeat((c as usize * width) / max as usize);
            let _ = writeln!(out, "[{a:>10.3}, {b:>10.3}) {c:>8} {bar}");
        }
        if self.underflow > 0 {
            let _ = writeln!(out, "underflow: {}", self.underflow);
        }
        if self.overflow > 0 {
            let _ = writeln!(out, "overflow:  {}", self.overflow);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_configuration() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.underflow() + h.overflow(), 0);
        let total: u64 = (0..4).map(|i| h.bin_count(i)).sum();
        assert_eq!(total, 100);
        assert_eq!(h.bin_count(0), 25);
        assert_eq!(h.bin_range(0), (0.0, 0.25));
        assert_eq!(h.bin_range(3), (0.75, 1.0));
    }

    #[test]
    fn boundary_values_go_to_the_right_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add(0.0); // first bin
        h.add(1.0); // second bin
        h.add(3.999); // last bin
        h.add(4.0); // overflow (half-open)
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        for _ in 0..10 {
            h.add(0.5);
        }
        h.add(1.5);
        h.add(-1.0);
        let s = h.render(20);
        assert!(s.contains("####"));
        assert!(s.contains("underflow: 1"));
    }
}
