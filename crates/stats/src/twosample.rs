//! Two-sample goodness-of-fit tests.
//!
//! These back the aggregate-vs-per-node cross-validation suite in
//! `plurality-agg`: the mean-field engines must agree with the per-node
//! engines *in distribution*, which is asserted with a two-sample
//! Kolmogorov–Smirnov test on continuous observables (rounds or time to
//! consensus) and a chi-square homogeneity test on categorical ones
//! (winner identity, final-support marginals).

use plurality_dist::special::ln_gamma;

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsTest {
    /// The KS statistic `D = sup_x |F₁(x) − F₂(x)|`.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution with the
    /// Stephens small-sample correction).
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test: are `a` and `b` drawn from the
/// same continuous distribution?
///
/// Ties are handled exactly (the ECDF difference is evaluated after all
/// equal observations advance), so the test is usable on the integer
/// round counts the engines report — with the usual caveat that heavy
/// discreteness makes the asymptotic p-value conservative.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
///
/// # Examples
///
/// ```
/// use plurality_stats::ks_test;
/// let same = ks_test(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(same.statistic, 0.0);
/// assert!(same.p_value > 0.999);
/// ```
pub fn ks_test(a: &[f64], b: &[f64]) -> KsTest {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "ks_test: both samples must be non-empty"
    );
    assert!(
        a.iter().chain(b).all(|x| !x.is_nan()),
        "ks_test: NaN observation"
    );
    let mut a: Vec<f64> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
    let (na, nb) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < na || j < nb {
        // Next jump point of either ECDF; advance through all tied
        // observations before comparing, so ties are exact.
        let x = match (a.get(i), b.get(j)) {
            (Some(&xa), Some(&xb)) => xa.min(xb),
            (Some(&xa), None) => xa,
            (None, Some(&xb)) => xb,
            (None, None) => unreachable!(),
        };
        while i < na && a[i] <= x {
            i += 1;
        }
        while j < nb && b[j] <= x {
            j += 1;
        }
        let diff = (i as f64 / na as f64 - j as f64 / nb as f64).abs();
        if diff > d {
            d = diff;
        }
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsTest {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`, clamped to `[0, 1]`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    for j in 1..=100u32 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-16 * sum.abs() || term < 1e-300 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Result of a chi-square homogeneity test on two count vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareTest {
    /// The chi-square statistic.
    pub statistic: f64,
    /// Degrees of freedom (non-empty categories minus one).
    pub df: usize,
    /// Upper-tail p-value `Q(df/2, statistic/2)`.
    pub p_value: f64,
}

/// Chi-square test of homogeneity: were the two count vectors (same
/// categories, one bin per category) drawn from the same categorical
/// distribution?
///
/// Categories empty in *both* samples are dropped (they carry no
/// information and would break the expected-count denominators); the
/// degrees of freedom shrink accordingly.
///
/// # Panics
///
/// Panics if the vectors have different lengths, either total is zero,
/// or fewer than two categories are non-empty.
///
/// # Examples
///
/// ```
/// use plurality_stats::chi_square_homogeneity;
/// let same = chi_square_homogeneity(&[50, 30, 20], &[50, 30, 20]);
/// assert_eq!(same.statistic, 0.0);
/// assert_eq!(same.df, 2);
/// assert!(same.p_value > 0.999);
/// ```
pub fn chi_square_homogeneity(a: &[u64], b: &[u64]) -> ChiSquareTest {
    assert_eq!(
        a.len(),
        b.len(),
        "chi_square_homogeneity: category counts must align"
    );
    let ta: u64 = a.iter().sum();
    let tb: u64 = b.iter().sum();
    assert!(
        ta > 0 && tb > 0,
        "chi_square_homogeneity: both samples must be non-empty"
    );
    let total = (ta + tb) as f64;
    let mut statistic = 0.0f64;
    let mut used = 0usize;
    for (&ca, &cb) in a.iter().zip(b) {
        let pooled = ca + cb;
        if pooled == 0 {
            continue;
        }
        used += 1;
        let frac = pooled as f64 / total;
        for (obs, t) in [(ca, ta), (cb, tb)] {
            let expected = t as f64 * frac;
            let delta = obs as f64 - expected;
            statistic += delta * delta / expected;
        }
    }
    assert!(
        used >= 2,
        "chi_square_homogeneity: need at least two non-empty categories"
    );
    let df = used - 1;
    ChiSquareTest {
        statistic,
        df,
        p_value: gamma_q(df as f64 / 2.0, statistic / 2.0),
    }
}

/// Regularized upper incomplete gamma function `Q(a, x)` (series for
/// `x < a + 1`, Lentz continued fraction otherwise).
fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q: need a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// `P(a, x)` by its power series.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// `Q(a, x)` by the Lentz modified continued fraction.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_dist::special::normal_cdf;

    #[test]
    fn ks_statistic_matches_hand_computation() {
        // ECDF of [1,2,3] vs [1.5]: after x = 1.5 the difference is
        // |1/3 − 1| = 2/3, the supremum.
        let t = ks_test(&[1.0, 2.0, 3.0], &[1.5]);
        assert!((t.statistic - 2.0 / 3.0).abs() < 1e-12, "{}", t.statistic);
    }

    #[test]
    fn ks_handles_ties_exactly() {
        // All mass tied at one point in both samples: D = 0.
        let t = ks_test(&[2.0, 2.0, 2.0], &[2.0, 2.0]);
        assert_eq!(t.statistic, 0.0);
        // a jumps to 1 at x=1, b stays 0 until x=2: D = 1.
        let t = ks_test(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(t.statistic, 1.0);
    }

    #[test]
    fn kolmogorov_sf_matches_known_values() {
        // Q(1.0) ≈ 0.26999967; Q(0.5) ≈ 0.9639; Q(2.0) ≈ 6.7e-4.
        assert!((kolmogorov_sf(1.0) - 0.270_000).abs() < 1e-4);
        assert!((kolmogorov_sf(0.5) - 0.9639).abs() < 1e-3);
        assert!((kolmogorov_sf(2.0) - 6.7e-4).abs() < 1e-4);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(10.0) < 1e-80);
    }

    #[test]
    fn ks_separates_disjoint_samples() {
        let a: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let b: Vec<f64> = (0..200).map(|i| 10.0 + i as f64 / 200.0).collect();
        let t = ks_test(&a, &b);
        assert_eq!(t.statistic, 1.0);
        assert!(t.p_value < 1e-12);
    }

    #[test]
    fn ks_accepts_identical_distributions() {
        // Two interleaved halves of the same uniform grid.
        let a: Vec<f64> = (0..400).step_by(2).map(|i| i as f64).collect();
        let b: Vec<f64> = (1..400).step_by(2).map(|i| i as f64).collect();
        let t = ks_test(&a, &b);
        assert!(t.p_value > 0.5, "p = {}", t.p_value);
    }

    #[test]
    fn chi_square_df1_matches_the_normal_tail() {
        // For df = 1, P(χ² > s) = 2 (1 − Φ(√s)).
        let t = chi_square_homogeneity(&[60, 40], &[45, 55]);
        assert_eq!(t.df, 1);
        // Tolerance bounded by the accuracy of `normal_cdf`'s
        // approximation, not of `gamma_q` (exact to ~1e-15 here).
        let expected = 2.0 * (1.0 - normal_cdf(t.statistic.sqrt()));
        assert!((t.p_value - expected).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn chi_square_df2_matches_the_exponential_tail() {
        // For df = 2, P(χ² > s) = e^{−s/2}.
        let t = chi_square_homogeneity(&[50, 30, 20], &[40, 35, 25]);
        assert_eq!(t.df, 2);
        assert!(
            (t.p_value - (-t.statistic / 2.0).exp()).abs() < 1e-9,
            "{t:?}"
        );
    }

    #[test]
    fn chi_square_drops_jointly_empty_categories() {
        let with_empty = chi_square_homogeneity(&[50, 0, 50], &[40, 0, 60]);
        let without = chi_square_homogeneity(&[50, 50], &[40, 60]);
        assert_eq!(with_empty.df, without.df);
        assert!((with_empty.statistic - without.statistic).abs() < 1e-12);
    }

    #[test]
    fn chi_square_separates_disjoint_supports() {
        let t = chi_square_homogeneity(&[200, 0], &[0, 200]);
        assert!(t.p_value < 1e-12, "{t:?}");
    }

    #[test]
    fn gamma_q_boundary_values() {
        assert_eq!(gamma_q(1.0, 0.0), 1.0);
        // Q(1, x) = e^{−x}.
        for x in [0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_q(1.0, x) - (-x).exp()).abs() < 1e-12, "{x}");
        }
        // Q(2.5, x) is monotone decreasing.
        assert!(gamma_q(2.5, 1.0) > gamma_q(2.5, 2.0));
        assert!(gamma_q(2.5, 2.0) > gamma_q(2.5, 8.0));
    }
}
