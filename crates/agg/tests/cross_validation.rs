//! Cross-validation: the mean-field aggregate engines must agree with
//! the per-node engines **in distribution** at overlapping `n`.
//!
//! Each pair runs ≥ 200 repetitions of both backends over a shared seed
//! set and compares
//!
//! * rounds / time to consensus with a two-sample Kolmogorov–Smirnov
//!   test, and
//! * the final-support marginal (winner identity) with a chi-square
//!   homogeneity test,
//!
//! using the helpers from `plurality-stats`. Every run is
//! seed-deterministic, so these are fixed-sample assertions, not flaky
//! statistical gates: a failure means the laws diverged, not bad luck.
//! The quick scales run in tier-1; the ≥ 10⁷-node cases are
//! `#[ignore]`d tier-2.

use plurality_agg::{
    LeaderMfConfig, Majority3MfConfig, PopulationMfConfig, SyncMfConfig, UndecidedMfConfig,
};
use plurality_baselines::{Dynamics, DynamicsConfig, PopulationConfig, PopulationProtocol};
use plurality_core::leader::LeaderConfig;
use plurality_core::sync::{SyncConfig, UrnConfig};
use plurality_core::{InitialAssignment, RunOutcome};
use plurality_stats::{chi_square_homogeneity, ks_test};

const REPS: u64 = 200;
/// Fixed-seed acceptance threshold: with deterministic samples this is
/// a reproducible pass/fail line, far below any p the exact law attains.
const P_MIN: f64 = 1e-3;

fn winner_index(outcome: &RunOutcome) -> usize {
    outcome.winner().expect("run must reach consensus").index() as usize
}

fn tally(winners: &[usize], k: usize) -> Vec<u64> {
    let mut t = vec![0u64; k];
    for &w in winners {
        t[w] += 1;
    }
    t
}

fn assert_same_distribution(label: &str, a: &[f64], b: &[f64]) {
    let t = ks_test(a, b);
    assert!(
        t.p_value > P_MIN,
        "{label}: KS rejected, D = {:.4}, p = {:.2e}",
        t.statistic,
        t.p_value
    );
}

fn assert_same_marginal(label: &str, a: &[u64], b: &[u64]) {
    let nonzero = a.iter().zip(b).filter(|(&x, &y)| x + y > 0).count();
    if nonzero < 2 {
        // Both samples are concentrated on one category; homogeneity
        // then just means it is the *same* category.
        assert_eq!(a, b, "{label}: degenerate marginals differ");
        return;
    }
    let t = chi_square_homogeneity(a, b);
    assert!(
        t.p_value > P_MIN,
        "{label}: chi-square rejected, X² = {:.3} (df {}), p = {:.2e}",
        t.statistic,
        t.df,
        t.p_value
    );
}

#[test]
fn sync_mf_agrees_with_per_node_sync() {
    let (n, k, alpha) = (2_000u64, 3u32, 1.5f64);
    let assignment = InitialAssignment::with_bias(n, k, alpha).unwrap();
    let mut rounds_node = Vec::new();
    let mut rounds_mf = Vec::new();
    let mut win_node = Vec::new();
    let mut win_mf = Vec::new();
    for seed in 0..REPS {
        let r = SyncConfig::new(assignment.clone()).with_seed(seed).run();
        rounds_node.push(r.rounds as f64);
        win_node.push(winner_index(&r.outcome));
        let m = SyncMfConfig::new(n, k, alpha)
            .unwrap()
            .with_seed(seed)
            .run();
        rounds_mf.push(m.rounds as f64);
        win_mf.push(winner_index(&m.outcome));
    }
    assert_same_distribution("sync rounds", &rounds_node, &rounds_mf);
    assert_same_marginal(
        "sync winner",
        &tally(&win_node, k as usize),
        &tally(&win_mf, k as usize),
    );
}

#[test]
fn majority3_mf_agrees_with_per_node_3_majority() {
    let (n, k, alpha) = (1_000u64, 3u32, 1.3f64);
    let assignment = InitialAssignment::with_bias(n, k, alpha).unwrap();
    let mut rounds_node = Vec::new();
    let mut rounds_mf = Vec::new();
    let mut win_node = Vec::new();
    let mut win_mf = Vec::new();
    for seed in 0..REPS {
        let r = DynamicsConfig::new(Dynamics::ThreeMajority, assignment.clone())
            .with_seed(seed)
            .run();
        rounds_node.push(r.rounds as f64);
        win_node.push(winner_index(&r.outcome));
        let m = Majority3MfConfig::new(n, k, alpha)
            .unwrap()
            .with_seed(seed)
            .run();
        rounds_mf.push(m.rounds as f64);
        win_mf.push(winner_index(&m.outcome));
    }
    assert_same_distribution("3-majority rounds", &rounds_node, &rounds_mf);
    assert_same_marginal(
        "3-majority winner",
        &tally(&win_node, k as usize),
        &tally(&win_mf, k as usize),
    );
}

#[test]
fn undecided_mf_agrees_with_per_node_undecided() {
    let (n, k, alpha) = (1_000u64, 3u32, 1.3f64);
    let assignment = InitialAssignment::with_bias(n, k, alpha).unwrap();
    let mut rounds_node = Vec::new();
    let mut rounds_mf = Vec::new();
    let mut win_node = Vec::new();
    let mut win_mf = Vec::new();
    for seed in 0..REPS {
        let r = DynamicsConfig::new(Dynamics::Undecided, assignment.clone())
            .with_seed(seed)
            .run();
        rounds_node.push(r.rounds as f64);
        win_node.push(winner_index(&r.outcome));
        let m = UndecidedMfConfig::new(n, k, alpha)
            .unwrap()
            .with_seed(seed)
            .run();
        rounds_mf.push(m.rounds as f64);
        win_mf.push(winner_index(&m.outcome));
    }
    assert_same_distribution("undecided rounds", &rounds_node, &rounds_mf);
    assert_same_marginal(
        "undecided winner",
        &tally(&win_node, k as usize),
        &tally(&win_mf, k as usize),
    );
}

#[test]
fn population_mf_agrees_with_per_node_approx_majority() {
    let (n, a) = (600u64, 330u64);
    let mut time_node = Vec::new();
    let mut time_mf = Vec::new();
    let mut win_node = Vec::new();
    let mut win_mf = Vec::new();
    for seed in 0..REPS {
        let r = PopulationConfig::new(PopulationProtocol::ApproximateMajority, n, a)
            .with_seed(seed)
            .run();
        assert!(r.converged);
        time_node.push(r.outcome.consensus_time.unwrap());
        win_node.push(winner_index(&r.outcome));
        let m = PopulationMfConfig::new(n, a).with_seed(seed).run();
        assert!(m.converged);
        time_mf.push(m.outcome.consensus_time.unwrap());
        win_mf.push(winner_index(&m.outcome));
    }
    assert_same_distribution("approx-majority parallel time", &time_node, &time_mf);
    assert_same_marginal(
        "approx-majority winner",
        &tally(&win_node, 2),
        &tally(&win_mf, 2),
    );
}

#[test]
fn leader_mf_agrees_with_per_node_leader() {
    // The per-node event engine is the expensive side, so this pair runs
    // fewer (but still ≥ 100) repetitions; the mf side is negligible.
    let (n, k, alpha, reps) = (1_000u64, 2u32, 3.0f64, 120u64);
    let assignment = InitialAssignment::with_bias(n, k, alpha).unwrap();
    let mut time_node = Vec::new();
    let mut time_mf = Vec::new();
    for seed in 0..reps {
        let r = LeaderConfig::new(assignment.clone()).with_seed(seed).run();
        let m = LeaderMfConfig::new(n, k, alpha)
            .unwrap()
            .with_seed(seed)
            .run();
        if let (Some(tn), Some(tm)) = (r.outcome.consensus_time, m.outcome.consensus_time) {
            time_node.push(tn);
            time_mf.push(tm);
        }
    }
    // Consensus itself must be (nearly) universal on both sides.
    assert!(
        time_node.len() as u64 >= reps - reps / 10,
        "only {} / {reps} joint consensus runs",
        time_node.len()
    );
    assert_same_distribution("leader consensus time", &time_node, &time_mf);
}

// ---------------------------------------------------------------------
// Tier-2: the same laws at n ≥ 10⁷, where only aggregate backends (and
// the urn reduction, whose cost is n-independent) can run at all.
// ---------------------------------------------------------------------

#[test]
#[ignore = "tier-2: 400 ten-million-node aggregate runs"]
fn sync_mf_at_ten_million_agrees_with_urn_in_distribution() {
    // Disjoint seed windows make this a genuine two-sample comparison
    // (same seeds would reproduce the identical stream bitwise). At
    // alpha = 1 the start is perfectly uniform, so the winner marginal
    // is non-degenerate even at n = 10⁷.
    let (n, k) = (10_000_000u64, 8u32);
    let mut rounds_mf = Vec::new();
    let mut rounds_urn = Vec::new();
    let mut win_mf = Vec::new();
    let mut win_urn = Vec::new();
    for seed in 0..REPS {
        let m = SyncMfConfig::new(n, k, 1.0).unwrap().with_seed(seed).run();
        rounds_mf.push(m.rounds as f64);
        win_mf.push(winner_index(&m.outcome));
        let u = UrnConfig::new(n, k, 1.0)
            .unwrap()
            .with_seed(10_000 + seed)
            .run();
        rounds_urn.push(u.rounds as f64);
        win_urn.push(winner_index(&u.outcome));
    }
    assert_same_distribution("sync-mf@1e7 rounds", &rounds_mf, &rounds_urn);
    assert_same_marginal(
        "sync-mf@1e7 winner",
        &tally(&win_mf, k as usize),
        &tally(&win_urn, k as usize),
    );
}

#[test]
#[ignore = "tier-2: 200 ten-million-node tau-leap runs at two step sizes"]
fn leader_mf_at_ten_million_is_dt_robust() {
    // The leader backend is a discretization: halving the sub-step must
    // not move the consensus-time law (disjoint seed windows again).
    let (n, k, alpha, reps) = (10_000_000u64, 4u32, 3.0f64, 100u64);
    let mut coarse = Vec::new();
    let mut fine = Vec::new();
    for seed in 0..reps {
        let c = LeaderMfConfig::new(n, k, alpha)
            .unwrap()
            .with_seed(seed)
            .run();
        coarse.push(c.outcome.consensus_time.expect("coarse run converges"));
        let f = LeaderMfConfig::new(n, k, alpha)
            .unwrap()
            .with_dt(0.0625)
            .with_seed(10_000 + seed)
            .run();
        fine.push(f.outcome.consensus_time.expect("fine run converges"));
    }
    assert_same_distribution("leader-mf@1e7 dt robustness", &coarse, &fine);
}

#[test]
#[ignore = "tier-2: 800 ten-million-node gossip/population aggregate runs"]
fn gossip_and_population_mf_at_ten_million_are_seed_window_consistent() {
    // Self-consistency across disjoint seed windows at a scale no
    // per-node engine reaches: the law may not depend on which seeds
    // realized it.
    let n = 10_000_000u64;
    let mut m3_a = Vec::new();
    let mut m3_b = Vec::new();
    let mut ud_a = Vec::new();
    let mut ud_b = Vec::new();
    for seed in 0..REPS {
        m3_a.push(
            Majority3MfConfig::new(n, 8, 1.0)
                .unwrap()
                .with_seed(seed)
                .run()
                .rounds as f64,
        );
        m3_b.push(
            Majority3MfConfig::new(n, 8, 1.0)
                .unwrap()
                .with_seed(10_000 + seed)
                .run()
                .rounds as f64,
        );
        ud_a.push(
            UndecidedMfConfig::new(n, 8, 1.0)
                .unwrap()
                .with_seed(seed)
                .run()
                .rounds as f64,
        );
        ud_b.push(
            UndecidedMfConfig::new(n, 8, 1.0)
                .unwrap()
                .with_seed(10_000 + seed)
                .run()
                .rounds as f64,
        );
    }
    assert_same_distribution("majority3-mf@1e7 rounds", &m3_a, &m3_b);
    assert_same_distribution("undecided-mf@1e7 rounds", &ud_a, &ud_b);

    // Population winner marginal at a near-tie (gap ~ √n), where the
    // winner is genuinely random.
    let a0 = n / 2 + 1_000;
    let mut win_a = Vec::new();
    let mut win_b = Vec::new();
    for seed in 0..REPS {
        win_a.push(winner_index(
            &PopulationMfConfig::new(n, a0).with_seed(seed).run().outcome,
        ));
        win_b.push(winner_index(
            &PopulationMfConfig::new(n, a0)
                .with_seed(10_000 + seed)
                .run()
                .outcome,
        ));
    }
    assert_same_marginal(
        "population-mf@1e7 near-tie winner",
        &tally(&win_a, 2),
        &tally(&win_b, 2),
    );
}
