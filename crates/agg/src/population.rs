//! Mean-field backend for the 3-state approximate-majority population
//! protocol (AAE08).
//!
//! The per-node scheduler draws one ordered agent pair per step; almost
//! all of those steps change nothing (both agents agree, or two blanks
//! meet). At pool granularity only four *effective* ordered-pair types
//! exist on the complete graph:
//!
//! | initiator, responder | transition            | probability           |
//! |----------------------|-----------------------|-----------------------|
//! | `A, B`               | `B → blank`           | `sa·sb / n(n−1)`      |
//! | `B, A`               | `A → blank`           | `sb·sa / n(n−1)`      |
//! | `A, blank`           | `blank → A`           | `sa·blank / n(n−1)`   |
//! | `B, blank`           | `blank → B`           | `sb·blank / n(n−1)`   |
//!
//! The jump chain skips the ineffective steps in closed form: to observe
//! `E` effective interactions at per-step success probability `p`, the
//! number of skipped steps is `F ~ NegBin(E, p)`, drawn exactly as a
//! Poisson–Gamma mixture (`F ~ Poisson(Λ)`, `Λ ~ Gamma(E, p/(1−p))`).
//! The types of the `E` effective events are one multinomial draw over
//! the normalized effective probabilities, with `E` capped at a quarter
//! of the smallest decrementable pool so the frozen-probability
//! approximation stays tight (and counts can never go negative). This
//! is the one backend in the crate whose law is a *discretization*
//! rather than exact — the cross-validation suite pins the agreement.
//!
//! The 4-state **exact**-majority protocol is deliberately not offered
//! here: its endgame is `Θ(n²)` interactions of individually vanishing
//! probability driven by token *differences* of order 1, exactly the
//! regime where pool batching degenerates to one event per batch —
//! aggregation buys nothing. Use the per-node `exact-majority` spec.

use plurality_core::{Opinion, OpinionCounts, RunOutcome};
use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::{sample_multinomial, sample_poisson, Gamma};

/// Configuration for a mean-field approximate-majority run (facade spec
/// name `"population-mf"`).
///
/// # Examples
///
/// ```
/// use plurality_agg::PopulationMfConfig;
/// // A billion agents, 60/40 split.
/// let r = PopulationMfConfig::new(1_000_000_000, 600_000_000).with_seed(1).run();
/// assert!(r.converged);
/// assert!(r.outcome.plurality_preserved());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationMfConfig {
    n: u64,
    initial_a: u64,
    seed: u64,
    max_interactions: Option<u64>,
}

impl PopulationMfConfig {
    /// Creates a configuration for `n` agents of which `initial_a` start
    /// with opinion A (index 0) and the rest with B (index 1).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `initial_a > n`.
    pub fn new(n: u64, initial_a: u64) -> Self {
        assert!(n >= 2, "population needs at least 2 agents");
        assert!(initial_a <= n, "initial_a cannot exceed n");
        Self {
            n,
            initial_a,
            seed: 0,
            max_interactions: None,
        }
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of (skipped plus effective) interactions
    /// (default `500·n·ln n`, like the per-node engine). The final
    /// batch may overshoot the cap by at most its own span.
    pub fn with_max_interactions(mut self, max: u64) -> Self {
        self.max_interactions = Some(max);
        self
    }

    /// Runs the mean-field approximate-majority jump chain.
    pub fn run(&self) -> PopulationMfResult {
        let n = self.n;
        let nf = n as f64;
        let pairs = nf * (nf - 1.0);
        let mut rng = Xoshiro256PlusPlus::from_u64(self.seed);

        let (mut sa, mut sb, mut blank) = (self.initial_a, n - self.initial_a, 0u64);
        let initial_winner = if sa >= sb {
            Opinion::new(0)
        } else {
            Opinion::new(1)
        };
        let initial_bias = if sa >= sb {
            sa as f64 / sb.max(1) as f64
        } else {
            sb as f64 / sa.max(1) as f64
        };
        let max_interactions = self
            .max_interactions
            .unwrap_or_else(|| (500.0 * nf * nf.ln()).ceil() as u64);

        let converged_now = |sa: u64, sb: u64, blank: u64| (sa == 0 || sb == 0) && blank == 0;

        let mut interactions = 0u64;
        let mut effective_interactions = 0u64;
        let mut batches = 0u64;

        while !converged_now(sa, sb, blank) && interactions < max_interactions {
            let (fa, fb, fu) = (sa as f64, sb as f64, blank as f64);
            // Effective ordered-pair masses (divide by `pairs` for
            // probabilities; the multinomial only needs the ratios).
            let mass = [fa * fb, fb * fa, fa * fu, fb * fu];
            let total_mass: f64 = mass.iter().sum();
            let p_eff = (total_mass / pairs).min(1.0);
            if total_mass <= 0.0 {
                // All blank pairs with one side extinct can no longer
                // interact effectively; cannot happen from an all-strong
                // start, but guard against explicit-count pathologies.
                break;
            }

            // Largest batch that cannot drive any pool negative even if
            // every event lands on the same decrementable cell; /4 keeps
            // the frozen per-batch probabilities honest.
            let mut min_decrementable = u64::MAX;
            if mass[0] > 0.0 {
                min_decrementable = min_decrementable.min(sb);
            }
            if mass[1] > 0.0 {
                min_decrementable = min_decrementable.min(sa);
            }
            if mass[2] > 0.0 || mass[3] > 0.0 {
                min_decrementable = min_decrementable.min(blank);
            }
            let batch = (min_decrementable / 4).max(1);

            // Steps skipped before `batch` effective events arrive:
            // NegBin(batch, p_eff) via the exact Poisson–Gamma mixture.
            let skipped = if p_eff >= 1.0 {
                0
            } else {
                let lambda = Gamma::new(batch as f64, p_eff / (1.0 - p_eff))
                    .expect("positive shape and rate")
                    .sample(&mut rng);
                sample_poisson(lambda, &mut rng)
            };
            interactions = interactions.saturating_add(skipped).saturating_add(batch);
            effective_interactions += batch;
            batches += 1;

            let probs: Vec<f64> = mass.iter().map(|m| m / total_mass).collect();
            let events = sample_multinomial(batch, &probs, &mut rng);
            // (A,B): B → blank; (B,A): A → blank; (A,·): blank → A;
            // (B,·): blank → B.
            sb -= events[0];
            sa -= events[1];
            blank += events[0] + events[1];
            blank -= events[2] + events[3];
            sa += events[2];
            sb += events[3];
        }

        let converged = converged_now(sa, sb, blank);
        let parallel_time = interactions as f64 / nf;
        let consensus_time = converged.then_some(parallel_time);
        let outcome = RunOutcome {
            n,
            k: 2,
            initial_winner,
            initial_bias,
            final_counts: OpinionCounts::from_counts(vec![sa, sb]),
            epsilon_time: consensus_time,
            consensus_time,
            duration: parallel_time,
            generations: Vec::new(),
        };
        PopulationMfResult {
            outcome,
            interactions,
            effective_interactions,
            batches,
            converged,
        }
    }
}

/// Result of a mean-field approximate-majority run.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationMfResult {
    /// Common outcome report; times are in *parallel time* (interactions
    /// divided by `n`).
    pub outcome: RunOutcome,
    /// Total interactions accounted for, skipped steps included.
    pub interactions: u64,
    /// State-changing interactions actually sampled.
    pub effective_interactions: u64,
    /// Jump-chain batches executed (each is one multinomial plus one
    /// negative-binomial draw — the cost measure that replaces `n`).
    pub batches: u64,
    /// Whether the run converged (one strong side and no blanks left).
    pub converged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_with_clear_bias_in_logarithmic_parallel_time() {
        let r = PopulationMfConfig::new(1_000_000, 700_000)
            .with_seed(1)
            .run();
        assert!(r.converged, "did not converge");
        assert!(r.outcome.plurality_preserved());
        assert!(
            r.outcome.duration < 200.0,
            "parallel time {}",
            r.outcome.duration
        );
        assert!(r.effective_interactions < r.interactions);
    }

    #[test]
    fn billion_agents_in_few_batches() {
        let r = PopulationMfConfig::new(1_000_000_000, 600_000_000)
            .with_seed(2)
            .run();
        assert!(r.converged);
        assert_eq!(r.outcome.winner(), Some(Opinion::new(0)));
        // The whole point: batch count is O(log n)-ish, not O(n log n).
        assert!(r.batches < 20_000, "batches {}", r.batches);
    }

    #[test]
    fn minority_b_start_elects_b() {
        let r = PopulationMfConfig::new(1_000_000, 300_000)
            .with_seed(3)
            .run();
        assert!(r.converged);
        assert_eq!(r.outcome.winner(), Some(Opinion::new(1)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PopulationMfConfig::new(500_000, 300_000).with_seed(7).run();
        let b = PopulationMfConfig::new(500_000, 300_000).with_seed(7).run();
        assert_eq!(a, b);
    }

    #[test]
    fn monochromatic_start_is_instant() {
        let r = PopulationMfConfig::new(1_000, 1_000).with_seed(4).run();
        assert!(r.converged);
        assert_eq!(r.interactions, 0);
        assert_eq!(r.outcome.consensus_time, Some(0.0));
    }

    #[test]
    fn interaction_cap_halts_unconverged_ties() {
        // A perfect tie keeps sa == sb by symmetry of the drift; the cap
        // must end the run. (The stochastic chain can still break the
        // tie, so only the cap ceiling is asserted.)
        let r = PopulationMfConfig::new(10_000, 5_000)
            .with_seed(5)
            .with_max_interactions(2_000)
            .run();
        assert!(r.interactions >= 2_000 || r.converged);
    }

    #[test]
    fn counts_always_conserved() {
        for seed in 0..10 {
            let r = PopulationMfConfig::new(100_000, 55_000)
                .with_seed(seed)
                .run();
            assert!(r.outcome.final_counts.n() <= 100_000);
            if r.converged {
                assert_eq!(r.outcome.final_counts.n(), 100_000);
            }
        }
    }
}
