//! # plurality-agg
//!
//! Mean-field **aggregate engines**: a second execution layer that
//! represents the population as per-(opinion, generation/phase,
//! node-state) *counts* and advances whole Poisson-clock pools at once,
//! instead of simulating nodes one by one. Every per-node engine in the
//! workspace costs at least `O(n)` per round; the engines here cost
//! `O(cells²)` per step — independent of `n` — which moves the feasible
//! scale from `n ≈ 10⁴–10⁵` to `n ≈ 10⁹`, the regime the paper's
//! asymptotic `O(log n)` statements are actually about.
//!
//! Three mechanisms, all seed-deterministic on the workspace's xoshiro
//! streams:
//!
//! * **Multinomial pool splits** — conditioned on the current
//!   configuration, the occupants of a cell are exchangeable (complete
//!   graph), so their joint next-state is an exact multinomial over the
//!   cell's common outcome distribution, drawn via
//!   [`plurality_dist::multinomial_split`] (exact sequential conditioned
//!   binomials — no approximation in the law).
//! * **Pool-level jump chains** — waiting times for rare effective events
//!   (a population-protocol interaction that actually changes state, the
//!   κ-th 0-signal arrival at the leader) are drawn in closed form
//!   (negative-binomial skips, the displaced-Poisson
//!   [`plurality_core::signalflow::SignalFlow`] machinery) instead of
//!   iterating the uneventful steps.
//! * **Tau-leap pool advancement** — the asynchronous leader protocol's
//!   continuous-time pools (unlocked/locked, in-flight signals) advance
//!   in small time sub-steps with binomially-sampled pool transitions,
//!   converging to the per-node law as the sub-step shrinks.
//!
//! The synchronous and gossip backends ([`SyncMfConfig`],
//! [`Majority3MfConfig`], [`UndecidedMfConfig`]) are *exact*: they
//! sample from the identical process law as their per-node counterparts.
//! The population and leader backends ([`PopulationMfConfig`],
//! [`LeaderMfConfig`]) are distributionally faithful discretizations;
//! the cross-validation suite (`tests/cross_validation.rs`) pins the
//! agreement with two-sample KS / chi-square tests at overlapping `n`.
//!
//! These engines are mean-field by definition: the multinomial split is
//! exact *because* every node samples every other node uniformly. They
//! therefore deliberately have no topology or scenario knobs; the
//! unified facade (`plurality-api`, spec names `sync-mf`, `leader-mf`,
//! `population-mf`, `majority3-mf`, `undecided-mf`) enforces that as a
//! teaching error, exactly like urn mode.
//!
//! ## Example
//!
//! ```
//! use plurality_agg::Majority3MfConfig;
//! // 100 million nodes, 8 opinions — impossible node-by-node.
//! let r = Majority3MfConfig::new(100_000_000, 8, 2.0).unwrap().with_seed(1).run();
//! assert!(r.outcome.plurality_preserved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gossip;
mod leader;
mod population;
mod sync;

pub use gossip::{
    Majority3MfConfig, Majority3MfResult, UndecidedMfConfig, UndecidedMfResult, UNDECIDED_CELL,
};
pub use leader::{LeaderMfConfig, LeaderMfResult};
pub use population::{PopulationMfConfig, PopulationMfResult};
pub use sync::{SyncMfConfig, SyncMfResult};

use plurality_dist::InvalidParameterError;

/// Derives the paper's canonical biased initial counts (opinion 0 leads
/// by the multiplicative factor `alpha`) shared by every aggregate
/// backend — count-level, never materializing `n` nodes.
///
/// This is the same arithmetic as `InitialAssignment::with_bias` /
/// `UrnConfig::new`: all trailing opinions get
/// `⌊n / (alpha + k − 1)⌋` supporters and opinion 0 the remainder.
pub(crate) fn biased_counts(n: u64, k: u32, alpha: f64) -> Result<Vec<u64>, InvalidParameterError> {
    if k < 2 {
        return Err(InvalidParameterError::new(format!(
            "mean-field engines require k ≥ 2, got {k}"
        )));
    }
    if !(alpha >= 1.0 && alpha.is_finite()) {
        return Err(InvalidParameterError::new(format!(
            "alpha must be finite and ≥ 1, got {alpha}"
        )));
    }
    let cb = (n as f64 / (alpha + k as f64 - 1.0)).floor() as u64;
    if cb == 0 {
        return Err(InvalidParameterError::new(format!(
            "n = {n} too small for k = {k}, alpha = {alpha}"
        )));
    }
    let mut counts = vec![cb; k as usize];
    counts[0] = n - cb * (k as u64 - 1);
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_counts_match_urn_config() {
        let counts = biased_counts(1_000, 4, 2.0).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 1_000);
        assert!(counts[0] > counts[1]);
        assert_eq!(counts[1], counts[2]);
        assert_eq!(counts[2], counts[3]);
    }

    #[test]
    fn biased_counts_reject_bad_parameters() {
        assert!(biased_counts(100, 1, 2.0).is_err());
        assert!(biased_counts(100, 4, 0.5).is_err());
        assert!(biased_counts(3, 8, 100.0).is_err());
    }
}
