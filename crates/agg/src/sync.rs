//! Mean-field backend for the synchronous generation protocol
//! (Algorithm 1).
//!
//! The count-pool law for Algorithm 1 already exists in the workspace:
//! urn mode ([`plurality_core::sync::UrnConfig`]) advances per-
//! `(generation, color)` cells by exact multinomial splits over each
//! cell's outcome distribution. This backend is the aggregate layer's
//! front door onto that law — same exact process law, same seed-to-
//! result mapping — re-exposed with the aggregate result shape
//! (`steps` / `pool_splits` accounting) that the `sync-mf` facade
//! protocol reports. Keeping one implementation of the law (rather than
//! a second copy here) is what makes the "bitwise or law-preserving"
//! guarantee in DESIGN.md checkable: both spec names drive the identical
//! sampler call sequence.

use plurality_core::sync::{UrnConfig, UrnResult};
use plurality_core::RunOutcome;
use plurality_dist::InvalidParameterError;

/// Configuration for a mean-field synchronous run (facade spec name
/// `"sync-mf"`).
///
/// # Examples
///
/// ```
/// use plurality_agg::SyncMfConfig;
/// // One hundred million nodes in milliseconds.
/// let r = SyncMfConfig::new(100_000_000, 8, 1.5).unwrap().with_seed(2).run();
/// assert!(r.outcome.plurality_preserved());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyncMfConfig {
    inner: UrnConfig,
    k: u32,
}

impl SyncMfConfig {
    /// Creates a configuration with the paper's canonical biased start:
    /// opinion 0 leads by the multiplicative factor `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] for invalid `(n, k, alpha)`
    /// combinations.
    pub fn new(n: u64, k: u32, alpha: f64) -> Result<Self, InvalidParameterError> {
        Ok(Self {
            inner: UrnConfig::new(n, k, alpha)?,
            k,
        })
    }

    /// Creates a configuration from explicit per-opinion counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let k = counts.len() as u32;
        Self {
            inner: UrnConfig::from_counts(counts),
            k,
        }
    }

    /// Sets the generation-density threshold `γ ∈ (0, 1)` (default 1/2).
    ///
    /// # Panics
    ///
    /// Panics if `gamma ∉ (0, 1)`.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.inner = self.inner.with_gamma(gamma);
        self
    }

    /// Sets ε for ε-convergence reporting (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.inner = self.inner.with_epsilon(epsilon);
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.with_seed(seed);
        self
    }

    /// Caps the number of rounds.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.inner = self.inner.with_max_rounds(max_rounds);
        self
    }

    /// Overrides the `α₀` used for the schedule.
    pub fn with_alpha_hint(mut self, alpha: f64) -> Self {
        self.inner = self.inner.with_alpha_hint(alpha);
        self
    }

    /// Runs the mean-field synchronous process.
    ///
    /// # Panics
    ///
    /// Panics if the total population is below 2.
    pub fn run(&self) -> SyncMfResult {
        let UrnResult {
            outcome,
            rounds,
            g_star,
        } = self.inner.run();
        // One multinomial split per live (generation, color) cell per
        // round; generation rows grow along the schedule, so the exact
        // split count is data-dependent — report the upper envelope the
        // engine actually allocated for.
        let pool_splits = rounds * u64::from(g_star + 1) * u64::from(self.k);
        SyncMfResult {
            outcome,
            rounds,
            g_star,
            pool_splits,
        }
    }
}

/// Result of a mean-field synchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncMfResult {
    /// Common outcome report (generation-birth telemetry included).
    pub outcome: RunOutcome,
    /// Rounds simulated.
    pub rounds: u64,
    /// The `G*` used by the schedule.
    pub g_star: u32,
    /// Upper envelope of multinomial pool splits performed
    /// (`rounds · (G* + 1) · k`).
    pub pool_splits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::sync::UrnConfig;

    #[test]
    fn matches_urn_mode_exactly() {
        // Same law, same seed → identical outcome: the sync-mf backend
        // is the aggregate exposure of the urn law, not a reimplementation.
        let mf = SyncMfConfig::new(1_000_000, 4, 2.0)
            .unwrap()
            .with_seed(9)
            .run();
        let urn = UrnConfig::new(1_000_000, 4, 2.0)
            .unwrap()
            .with_seed(9)
            .run();
        assert_eq!(mf.outcome, urn.outcome);
        assert_eq!(mf.rounds, urn.rounds);
        assert_eq!(mf.g_star, urn.g_star);
    }

    #[test]
    fn handles_hundred_million_nodes_fast() {
        let start = std::time::Instant::now();
        let r = SyncMfConfig::new(100_000_000, 8, 1.5)
            .unwrap()
            .with_seed(2)
            .run();
        assert_eq!(r.outcome.final_counts.n(), 100_000_000);
        assert!(r.outcome.plurality_preserved());
        // The acceptance bar is "under a second"; leave slack for CI.
        assert!(start.elapsed().as_secs() < 10, "took {:?}", start.elapsed());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyncMfConfig::new(60_000, 3, 2.0)
            .unwrap()
            .with_seed(7)
            .run();
        let b = SyncMfConfig::new(60_000, 3, 2.0)
            .unwrap()
            .with_seed(7)
            .run();
        assert_eq!(a, b);
    }
}
