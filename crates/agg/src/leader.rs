//! Mean-field backend for the single-leader asynchronous protocol
//! (Algorithms 2 + 3) on the failure-free complete graph with
//! exponential latencies.
//!
//! The per-node engine is event-driven: every tick of every node enters
//! a queue. Here the population lives in count pools keyed by
//! `(generation, color, fresh | stale)` — *fresh* meaning the node's
//! stored leader copy `(seen_gen, seen_prop)` equals the leader's
//! current values — and time advances in fixed sub-steps `Δ`
//! (tau-leaping):
//!
//! * **Locks.** An unlocked node ticks at rate 1 and opens its three
//!   channels, so each unlocked pool loses `Binomial(count, 1 − e^{−Δ})`
//!   members per sub-step into the in-flight ring. The channel-phase
//!   duration `T′₂ = max(T₂, T₂) + T₂` is discretized once into sub-step
//!   buckets by an empirical CDF over a *fixed-seed* sample (quadrature
//!   of a run-independent law, not process randomness), and each locked
//!   batch is scattered over completion slots by one multinomial.
//! * **Completions.** A stale batch refreshes (Algorithm 2 lines 13–14)
//!   and returns to its pool fresh. A fresh batch applies the exact
//!   [`plurality_core::leader::decide`] rule *in law*: because peers are
//!   sampled uniformly and their states are read at completion time, the
//!   two-sample outcome distribution is a pure function of the current
//!   global `(gen, color)` fractions, enumerated exactly over the
//!   occupied cells and sampled with one multinomial per pool.
//! * **Leader.** Promotions into generation `i` feed per-generation
//!   in-flight gen-signal pools (exponential travel ⇒ memoryless
//!   `Binomial(pool, 1 − e^{−νΔ})` arrivals), batch-counted by
//!   [`plurality_core::leader::LeaderState::on_generation_batch`]. The
//!   0-signal stream is the same displaced-Poisson jump chain the
//!   per-node fast path uses ([`plurality_core::signalflow::SignalFlow`]
//!   at send rate `n`): the κ-th-arrival crossing time is drawn in
//!   closed form and applied at the following sub-step boundary. Every
//!   leader transition folds all fresh pools to stale — exactly the
//!   "stored copy no longer matches" predicate — including batches
//!   already in flight.
//!
//! The thresholds (`C₃·n` zero-signal window, `⌈n/2⌉` generation size,
//! `⌈log log_α n⌉` cap) and the time-unit estimate `c₁` are computed
//! exactly as in [`plurality_core::leader::LeaderConfig`], so the two
//! engines run the same protocol schedule. The tau-leap discretization
//! is the approximation; the cross-validation suite pins distributional
//! agreement with the event-driven engine at overlapping `n`.

use plurality_core::leader::{LeaderParams, LeaderState, LeaderTransition};
use plurality_core::signalflow::SignalFlow;
use plurality_core::sync::{generations_needed, GENERATION_CAP};
use plurality_core::{ConvergenceTracker, OpinionCounts, RunOutcome};
use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::{
    multinomial_split, sample_binomial, sample_multinomial, ChannelPattern, InvalidParameterError,
    Latency, WaitingTime,
};

use crate::biased_counts;

/// Fixed seed for the channel-phase ECDF quadrature. Constant by design:
/// the discretized phase law must depend only on the latency family, not
/// on the run seed, so that runs differ only through process randomness.
const PHASE_ECDF_SEED: u64 = 0x00EC_DF00;

/// Sample size for the channel-phase ECDF.
const PHASE_ECDF_SAMPLES: usize = 1 << 16;

/// Configuration for a mean-field single-leader run (facade spec name
/// `"leader-mf"`). Restricted to the paper's core model: complete
/// graph, unit-rate Poisson clocks, `Exp(1)` latencies, no failures —
/// the regime where pools are exchangeable.
///
/// # Examples
///
/// ```
/// use plurality_agg::LeaderMfConfig;
/// let r = LeaderMfConfig::new(1_000_000, 2, 4.0).unwrap().with_seed(1).run();
/// assert!(r.outcome.epsilon_time.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderMfConfig {
    counts: Vec<u64>,
    epsilon: f64,
    seed: u64,
    dt: f64,
    max_time: Option<f64>,
    alpha_hint: Option<f64>,
}

impl LeaderMfConfig {
    /// Creates a configuration with the canonical biased start: opinion 0
    /// leads by the multiplicative factor `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] for invalid `(n, k, alpha)`.
    pub fn new(n: u64, k: u32, alpha: f64) -> Result<Self, InvalidParameterError> {
        Ok(Self::from_counts(biased_counts(n, k, alpha)?))
    }

    /// Creates a configuration from explicit per-opinion counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self {
            counts,
            epsilon: 0.05,
            seed: 0,
            dt: 0.125,
            max_time: None,
            alpha_hint: None,
        }
    }

    /// Sets ε for ε-convergence reporting (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tau-leap sub-step `Δ` (default 0.125 time units).
    /// Smaller values converge to the per-node law at proportionally
    /// more sub-steps.
    ///
    /// # Panics
    ///
    /// Panics if `dt ∉ (0, 1]`.
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(dt > 0.0 && dt <= 1.0, "dt must lie in (0, 1]");
        self.dt = dt;
        self
    }

    /// Caps the simulated time (default: the per-node engine's
    /// failure-free budget).
    pub fn with_max_time(mut self, max_time: f64) -> Self {
        self.max_time = Some(max_time);
        self
    }

    /// Overrides the `α₀` used for the generation-cap computation.
    pub fn with_alpha_hint(mut self, alpha: f64) -> Self {
        self.alpha_hint = Some(alpha);
        self
    }

    /// Runs the mean-field tau-leap process.
    ///
    /// # Panics
    ///
    /// Panics if the total population is below 2.
    pub fn run(&self) -> LeaderMfResult {
        run_leader_mf(self)
    }
}

/// Result of a mean-field single-leader run.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderMfResult {
    /// Common outcome report; times are in continuous time units.
    pub outcome: RunOutcome,
    /// Tau-leap sub-steps executed (the cost measure replacing ticks).
    pub sub_steps: u64,
    /// The `c₁` time-unit estimate shared with the per-node engine.
    pub steps_per_unit: f64,
    /// The leader's final allowed generation.
    pub leader_generation: u32,
    /// Whether the leader ended terminal (cap reached, propagation open).
    pub leader_terminal: bool,
}

/// Dense cell index for `(gen, color)` pools.
#[inline]
fn cell(gen: u32, col: usize, k: usize) -> usize {
    gen as usize * k + col
}

fn run_leader_mf(cfg: &LeaderMfConfig) -> LeaderMfResult {
    let k = cfg.counts.len();
    let n: u64 = cfg.counts.iter().sum();
    assert!(n >= 2, "mean-field run needs at least 2 nodes");
    let nf = n as f64;
    let dt = cfg.dt;
    let mut rng = Xoshiro256PlusPlus::from_u64(cfg.seed);

    // --- Protocol schedule, mirroring LeaderConfig::run -------------------
    let latency = Latency::exponential(1.0).expect("rate 1 valid");
    let waiting = WaitingTime::new(latency, ChannelPattern::SingleLeader);
    let c1 = waiting.time_unit_cached(20_000);
    let initial = OpinionCounts::from_counts(cfg.counts.clone());
    let initial_winner = initial.winner().expect("non-empty population");
    let initial_bias = initial.bias().unwrap_or(f64::INFINITY);
    let alpha = cfg.alpha_hint.unwrap_or(if initial_bias.is_finite() {
        initial_bias.max(1.0)
    } else {
        2.0
    });
    let cap = generations_needed(n, alpha, GENERATION_CAP);
    let two_choices_units = 2.0;
    let zero_signal_threshold = (nf * c1 * (two_choices_units + nf.ln() / nf.sqrt())).ceil() as u64;
    let gen_size_threshold = (nf * 0.5).ceil().max(1.0) as u64;
    let max_time = cfg.max_time.unwrap_or_else(|| {
        c1 * f64::from(cap + 2) * (2.0 * f64::from(k as u32 + 2).log2() + 12.0)
            + 10.0 * nf.ln()
            + 100.0
    });

    let mut leader = LeaderState::new(LeaderParams {
        zero_signal_threshold,
        gen_size_threshold,
        generation_cap: cap,
    });
    // Displaced-Poisson 0-signal stream: every node ticks at rate 1 and
    // each signal travels an Exp(1) latency, so the arrival intensity at
    // the leader relaxes from 0 towards n with time constant 1.
    let mut zero_flow = SignalFlow::new(1.0);
    zero_flow.set_rate(0.0, nf);
    zero_flow.arm(0.0, zero_signal_threshold, &mut rng);

    // --- Channel-phase quadrature ----------------------------------------
    // Completion slot offsets: a node locking in sub-step s completes in
    // sub-step s + 1 + ⌊phase/Δ⌋ (the +1 centers the tick-time jitter
    // within the locking sub-step).
    let phase_probs: Vec<f64> = {
        let mut ecdf_rng = Xoshiro256PlusPlus::from_u64(PHASE_ECDF_SEED);
        let mut buckets: Vec<u64> = Vec::new();
        for _ in 0..PHASE_ECDF_SAMPLES {
            let j = (waiting.sample_channel_phase(&mut ecdf_rng) / dt) as usize;
            if j >= buckets.len() {
                buckets.resize(j + 1, 0);
            }
            buckets[j] += 1;
        }
        buckets
            .iter()
            .map(|&b| b as f64 / PHASE_ECDF_SAMPLES as f64)
            .collect()
    };
    let ring_len = phase_probs.len() + 1;

    // --- Pools ------------------------------------------------------------
    let cells = (cap as usize + 1) * k;
    // Unlocked pools by freshness; `total` additionally covers in-flight
    // nodes (peer samples read *current* states, locked or not).
    let mut unlocked_fresh = vec![0u64; cells];
    let mut unlocked_stale = vec![0u64; cells];
    let mut total = vec![0u64; cells];
    for (c, &m) in cfg.counts.iter().enumerate() {
        // Nodes start at generation 0 with a zeroed leader copy, which
        // mismatches the leader's initial (1, false): everyone is stale.
        unlocked_stale[cell(0, c, k)] = m;
        total[cell(0, c, k)] = m;
    }
    // ring[slot] = (fresh, stale) in-flight counts per cell.
    let mut ring_fresh = vec![vec![0u64; cells]; ring_len];
    let mut ring_stale = vec![vec![0u64; cells]; ring_len];
    // In-flight gen-signals per generation (Exp(1) travel).
    let mut inflight_signals = vec![0u64; cap as usize + 1];

    let mut tracker = ConvergenceTracker::new(n, initial_winner, cfg.epsilon);
    let winner_idx = initial_winner.index() as usize;
    let support =
        |total: &[u64], col: usize| -> u64 { (0..=cap).map(|g| total[cell(g, col, k)]).sum() };
    let observe = |total: &[u64], tracker: &mut ConvergenceTracker, t: f64| {
        let winner_support = support(total, winner_idx);
        let max_support = (0..k).map(|c| support(total, c)).max().unwrap_or(0);
        tracker.observe(t, winner_support, max_support);
    };
    observe(&total, &mut tracker, 0.0);

    // Fold every fresh pool (unlocked and in flight) to stale: the
    // leader transitioned, so all stored copies are outdated at once.
    let fold_fresh = |unlocked_fresh: &mut [u64],
                      unlocked_stale: &mut [u64],
                      ring_fresh: &mut [Vec<u64>],
                      ring_stale: &mut [Vec<u64>]| {
        for (f, s) in unlocked_fresh.iter_mut().zip(unlocked_stale.iter_mut()) {
            *s += *f;
            *f = 0;
        }
        for (rf, rs) in ring_fresh.iter_mut().zip(ring_stale.iter_mut()) {
            for (f, s) in rf.iter_mut().zip(rs.iter_mut()) {
                *s += *f;
                *f = 0;
            }
        }
    };

    let p_lock = 1.0 - (-dt).exp();
    let p_arrival = 1.0 - (-dt).exp(); // ν = 1 travel rate
    let mut sub_steps = 0u64;
    let mut t = 0.0f64;
    let mut slot = 0usize;
    // Scratch buffers reused across sub-steps.
    let mut occupied: Vec<usize> = Vec::new();
    let mut targets: Vec<(usize, f64)> = Vec::new();
    let mut scattered = vec![0u64; cells];

    while !tracker.is_consensus() && t < max_time {
        sub_steps += 1;
        let t_next = t + dt;

        // 1. 0-signal window crossing (jump chain, applied at the
        //    boundary of the sub-step containing the predicted time).
        if !leader.is_terminal() && zero_flow.pred() <= t {
            let missing = zero_signal_threshold - leader.zero_count();
            if let Some(LeaderTransition::PropagationEnabled { .. }) = leader.on_zero_batch(missing)
            {
                fold_fresh(
                    &mut unlocked_fresh,
                    &mut unlocked_stale,
                    &mut ring_fresh,
                    &mut ring_stale,
                );
            }
            zero_flow.disarm(t);
        }

        // 2. Gen-signal arrivals from the in-flight pools.
        for g in 1..=cap {
            let pool = inflight_signals[g as usize];
            if pool == 0 {
                continue;
            }
            let arrivals = sample_binomial(pool, p_arrival, &mut rng);
            inflight_signals[g as usize] = pool - arrivals;
            if arrivals == 0 || leader.is_terminal() {
                continue;
            }
            if let Some(LeaderTransition::GenerationAllowed { .. }) =
                leader.on_generation_batch(g, arrivals)
            {
                fold_fresh(
                    &mut unlocked_fresh,
                    &mut unlocked_stale,
                    &mut ring_fresh,
                    &mut ring_stale,
                );
                // New window: the counter restarts at the birth.
                zero_flow.arm(t, zero_signal_threshold, &mut rng);
            }
        }

        // 3. Completions due in this sub-step.
        let lg = leader.generation();
        let prop = leader.propagation();
        // Stale batches refresh and return unlocked (nothing else).
        for (c, pool) in ring_stale[slot].iter_mut().enumerate() {
            if *pool > 0 {
                unlocked_fresh[c] += *pool;
                *pool = 0;
            }
        }
        // Fresh batches decide against the current fractions.
        if ring_fresh[slot].iter().any(|&m| m > 0) {
            occupied.clear();
            occupied.extend((0..cells).filter(|&c| total[c] > 0));
            for g in 0..=cap {
                let row = &mut ring_fresh[slot][cell(g, 0, k)..cell(g, 0, k) + k];
                if row.iter().all(|&m| m == 0) {
                    continue;
                }
                // Outcome distribution for a fresh gen-g node: exact
                // enumeration of ordered sample pairs over occupied
                // cells (decide() reads only the samples' (gen, col)).
                targets.clear();
                let mut target_mass = vec![0.0f64; cells];
                let mut move_mass = 0.0f64;
                for &c1_idx in &occupied {
                    let (g1, col1) = ((c1_idx / k) as u32, c1_idx % k);
                    let f1 = total[c1_idx] as f64 / nf;
                    for &c2_idx in &occupied {
                        let (g2, col2) = ((c2_idx / k) as u32, c2_idx % k);
                        let pr = f1 * total[c2_idx] as f64 / nf;
                        // Two-choices (line 6): no own-generation guard.
                        if !prop && lg >= 1 && g1 == g2 && g1 + 1 == lg && col1 == col2 {
                            target_mass[cell(lg, col1, k)] += pr;
                            move_mass += pr;
                            continue;
                        }
                        // Propagation (line 9): best qualifying sample,
                        // first sample winning generation ties.
                        let q1 = g1 > g && (g1 < lg || prop);
                        let q2 = g2 > g && (g2 < lg || prop);
                        let best = if q1 && (!q2 || g1 >= g2) {
                            Some((g1, col1))
                        } else if q2 {
                            Some((g2, col2))
                        } else {
                            None
                        };
                        if let Some((bg, bc)) = best {
                            target_mass[cell(bg, bc, k)] += pr;
                            move_mass += pr;
                        }
                    }
                }
                if move_mass <= 0.0 {
                    // Nothing can fire: the whole row returns unlocked.
                    for (col, m) in row.iter_mut().enumerate() {
                        if *m > 0 {
                            unlocked_fresh[cell(g, col, k)] += *m;
                            *m = 0;
                        }
                    }
                    continue;
                }
                targets.extend(
                    target_mass
                        .iter()
                        .enumerate()
                        .filter(|&(_, &m)| m > 0.0)
                        .map(|(c, &m)| (c, m)),
                );
                for col in 0..k {
                    let m = row[col];
                    if m == 0 {
                        continue;
                    }
                    row[col] = 0;
                    scattered[..].iter_mut().for_each(|s| *s = 0);
                    let stayed = multinomial_split(m, &targets, &mut scattered, &mut rng);
                    unlocked_fresh[cell(g, col, k)] += stayed;
                    let src = cell(g, col, k);
                    for (dst, &moved) in scattered.iter().enumerate() {
                        if moved == 0 {
                            continue;
                        }
                        unlocked_fresh[dst] += moved;
                        total[src] -= moved;
                        total[dst] += moved;
                        let dst_gen = (dst / k) as u32;
                        if dst_gen > g && !leader.is_terminal() {
                            // Promotion: gen-signal departs towards the
                            // leader with Exp(1) travel.
                            inflight_signals[dst_gen as usize] += moved;
                        }
                    }
                }
            }
        }

        // 4. Locks: unlocked nodes tick at rate 1 and enter the ring.
        for c in 0..cells {
            for (pools, ring) in [
                (&mut unlocked_fresh, &mut ring_fresh),
                (&mut unlocked_stale, &mut ring_stale),
            ] {
                let m = pools[c];
                if m == 0 {
                    continue;
                }
                let locked = sample_binomial(m, p_lock, &mut rng);
                if locked == 0 {
                    continue;
                }
                pools[c] = m - locked;
                let by_slot = sample_multinomial(locked, &phase_probs, &mut rng);
                for (j, &batch) in by_slot.iter().enumerate() {
                    if batch > 0 {
                        ring[(slot + 1 + j) % ring_len][c] += batch;
                    }
                }
            }
        }

        t = t_next;
        slot = (slot + 1) % ring_len;
        observe(&total, &mut tracker, t);
    }

    let final_counts = OpinionCounts::from_counts((0..k).map(|c| support(&total, c)).collect());
    let outcome = RunOutcome {
        n,
        k: k as u32,
        initial_winner,
        initial_bias,
        final_counts,
        epsilon_time: tracker.epsilon_time(),
        consensus_time: tracker.consensus_time(),
        duration: t,
        generations: Vec::new(),
    };
    LeaderMfResult {
        outcome,
        sub_steps,
        steps_per_unit: c1,
        leader_generation: leader.generation(),
        leader_terminal: leader.is_terminal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_and_preserves_plurality() {
        let r = LeaderMfConfig::new(1_000_000, 2, 4.0)
            .unwrap()
            .with_seed(1)
            .run();
        assert!(r.outcome.consensus_time.is_some(), "did not converge");
        assert!(r.outcome.plurality_preserved());
        assert_eq!(r.outcome.final_counts.n(), 1_000_000);
        assert!(r.leader_generation >= 1);
    }

    #[test]
    fn hundred_million_nodes_run_in_bounded_sub_steps() {
        let start = std::time::Instant::now();
        let r = LeaderMfConfig::new(100_000_000, 2, 4.0)
            .unwrap()
            .with_seed(2)
            .run();
        assert!(r.outcome.epsilon_time.is_some(), "no ε-convergence");
        assert!(r.outcome.plurality_preserved());
        assert!(start.elapsed().as_secs() < 30, "took {:?}", start.elapsed());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = LeaderMfConfig::new(200_000, 3, 3.0)
            .unwrap()
            .with_seed(7)
            .run();
        let b = LeaderMfConfig::new(200_000, 3, 3.0)
            .unwrap()
            .with_seed(7)
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn smaller_dt_still_converges_correctly() {
        let r = LeaderMfConfig::new(500_000, 2, 4.0)
            .unwrap()
            .with_seed(3)
            .with_dt(0.0625)
            .run();
        assert!(r.outcome.plurality_preserved());
    }

    #[test]
    fn leader_advances_generations() {
        let r = LeaderMfConfig::new(1_000_000, 2, 3.0)
            .unwrap()
            .with_seed(4)
            .run();
        // With α₀ = 3 and n = 10⁶ the cap is ≥ 2: at least one birth
        // must have happened on the way to consensus.
        assert!(r.leader_generation >= 2, "gen {}", r.leader_generation);
    }

    #[test]
    fn population_is_conserved_even_without_convergence() {
        let r = LeaderMfConfig::new(10_000, 2, 1.05)
            .unwrap()
            .with_seed(5)
            .with_max_time(30.0)
            .run();
        assert_eq!(r.outcome.final_counts.n(), 10_000);
    }
}
