//! Mean-field backends for the synchronous gossip baselines: 3-majority
//! and undecided-state dynamics on the clique.
//!
//! Both dynamics are *anonymous*: a node's next state depends only on its
//! own cell and on iid uniform samples of the current configuration. On
//! the complete graph the cells are therefore exchangeable pools, and
//! one synchronous round is an exact multinomial scatter of each pool
//! over its outcome distribution:
//!
//! * **3-majority** — the next color never depends on the node's *own*
//!   color (it is a pure function of the three samples), so the whole
//!   population is a single pool: one `Multinomial(n; p)` per round with
//!   the closed-form outcome law
//!   `p_j = f_j²(3 − 2 f_j) + f_j((1 − f_j)² − (m₂ − f_j²))`,
//!   `m₂ = Σᵢ fᵢ²` (first term: at least two samples show `j`; second:
//!   all three distinct with `j` among them, uniform tie-break). A unit
//!   test checks this against brute-force enumeration of all `k³`
//!   ordered sample triples.
//! * **undecided-state** — per-cell splits: an undecided node adopts its
//!   single sample verbatim (colors and undecided alike); a decided node
//!   keeps its color when the sample agrees or is undecided, else turns
//!   undecided — a single conditioned binomial per color cell.
//!
//! The per-node engine (`plurality_baselines::Dynamics`) samples uniform
//! *neighbors* (excluding self); the mean-field law samples the whole
//! population. The difference is `O(1/n)` per draw and vanishes in the
//! cross-validation tolerance even at `n` in the hundreds.

use plurality_core::{ConvergenceTracker, OpinionCounts, RunOutcome};
use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::{multinomial_split, sample_multinomial, InvalidParameterError};

use crate::biased_counts;

/// Index of the undecided pool in [`UndecidedMfResult`] cell vectors —
/// always the last entry, after the `k` color cells.
pub const UNDECIDED_CELL: usize = usize::MAX;

/// Default round cap shared with the per-node dynamics:
/// `200·log₂ n + 200`.
fn default_round_cap(n: u64) -> u64 {
    (200.0 * (n as f64).log2()).ceil() as u64 + 200
}

/// Configuration for a mean-field 3-majority run (facade spec name
/// `"majority3-mf"`).
///
/// # Examples
///
/// ```
/// use plurality_agg::Majority3MfConfig;
/// let r = Majority3MfConfig::new(1_000_000_000, 5, 3.0).unwrap().with_seed(1).run();
/// assert!(r.outcome.plurality_preserved());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Majority3MfConfig {
    counts: Vec<u64>,
    epsilon: f64,
    seed: u64,
    max_rounds: Option<u64>,
}

impl Majority3MfConfig {
    /// Creates a configuration with the canonical biased start: opinion 0
    /// leads by the multiplicative factor `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] for invalid `(n, k, alpha)`.
    pub fn new(n: u64, k: u32, alpha: f64) -> Result<Self, InvalidParameterError> {
        Ok(Self::from_counts(biased_counts(n, k, alpha)?))
    }

    /// Creates a configuration from explicit per-opinion counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self {
            counts,
            epsilon: 0.05,
            seed: 0,
            max_rounds: None,
        }
    }

    /// Sets ε for ε-convergence reporting (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of rounds (default `200·log₂ n + 200`).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Runs the mean-field 3-majority dynamic.
    ///
    /// # Panics
    ///
    /// Panics if the total population is below 2.
    pub fn run(&self) -> Majority3MfResult {
        let k = self.counts.len();
        let n: u64 = self.counts.iter().sum();
        assert!(n >= 2, "mean-field run needs at least 2 nodes");
        let nf = n as f64;
        let mut rng = Xoshiro256PlusPlus::from_u64(self.seed);

        let mut counts = OpinionCounts::from_counts(self.counts.clone());
        let initial_winner = counts.winner().expect("non-empty population");
        let initial_bias = counts.bias().unwrap_or(f64::INFINITY);
        let max_rounds = self.max_rounds.unwrap_or_else(|| default_round_cap(n));

        let mut tracker = ConvergenceTracker::new(n, initial_winner, self.epsilon);
        let observe = |c: &OpinionCounts, tracker: &mut ConvergenceTracker, t: f64| {
            let max = c.as_slice().iter().copied().max().unwrap_or(0);
            tracker.observe(t, c.support(initial_winner), max);
        };
        observe(&counts, &mut tracker, 0.0);

        let mut rounds = 0u64;
        if !counts.is_monochromatic() {
            let mut probs = vec![0.0f64; k];
            for round in 1..=max_rounds {
                rounds = round;
                let m2: f64 = counts
                    .as_slice()
                    .iter()
                    .map(|&c| {
                        let f = c as f64 / nf;
                        f * f
                    })
                    .sum();
                for (p, &c) in probs.iter_mut().zip(counts.as_slice()) {
                    let f = c as f64 / nf;
                    let two_agree = f * f * (3.0 - 2.0 * f);
                    let all_distinct = f * ((1.0 - f) * (1.0 - f) - (m2 - f * f));
                    *p = (two_agree + all_distinct).max(0.0);
                }
                counts = OpinionCounts::from_counts(sample_multinomial(n, &probs, &mut rng));
                observe(&counts, &mut tracker, round as f64);
                if counts.is_monochromatic() {
                    break;
                }
            }
        }

        let outcome = RunOutcome {
            n,
            k: k as u32,
            initial_winner,
            initial_bias,
            final_counts: counts,
            epsilon_time: tracker.epsilon_time(),
            consensus_time: tracker.consensus_time(),
            duration: rounds as f64,
            generations: Vec::new(),
        };
        Majority3MfResult { outcome, rounds }
    }
}

/// Result of a mean-field 3-majority run.
#[derive(Debug, Clone, PartialEq)]
pub struct Majority3MfResult {
    /// Common outcome report.
    pub outcome: RunOutcome,
    /// Rounds simulated.
    pub rounds: u64,
}

/// Configuration for a mean-field undecided-state run (facade spec name
/// `"undecided-mf"`).
///
/// # Examples
///
/// ```
/// use plurality_agg::UndecidedMfConfig;
/// let r = UndecidedMfConfig::new(1_000_000_000, 2, 3.0).unwrap().with_seed(1).run();
/// assert!(r.outcome.plurality_preserved());
/// assert!(r.peak_undecided > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UndecidedMfConfig {
    counts: Vec<u64>,
    epsilon: f64,
    seed: u64,
    max_rounds: Option<u64>,
}

impl UndecidedMfConfig {
    /// Creates a configuration with the canonical biased start (all nodes
    /// decided; opinion 0 leads by `alpha`).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] for invalid `(n, k, alpha)`.
    pub fn new(n: u64, k: u32, alpha: f64) -> Result<Self, InvalidParameterError> {
        Ok(Self::from_counts(biased_counts(n, k, alpha)?))
    }

    /// Creates a configuration from explicit per-opinion counts (no node
    /// starts undecided).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self {
            counts,
            epsilon: 0.05,
            seed: 0,
            max_rounds: None,
        }
    }

    /// Sets ε for ε-convergence reporting (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of rounds (default `200·log₂ n + 200`).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Runs the mean-field undecided-state dynamic.
    ///
    /// # Panics
    ///
    /// Panics if the total population is below 2.
    pub fn run(&self) -> UndecidedMfResult {
        let k = self.counts.len();
        let n: u64 = self.counts.iter().sum();
        assert!(n >= 2, "mean-field run needs at least 2 nodes");
        let nf = n as f64;
        let mut rng = Xoshiro256PlusPlus::from_u64(self.seed);

        let mut counts: Vec<u64> = self.counts.clone();
        let mut undecided: u64 = 0;
        let initial = OpinionCounts::from_counts(counts.clone());
        let initial_winner = initial.winner().expect("non-empty population");
        let initial_bias = initial.bias().unwrap_or(f64::INFINITY);
        let max_rounds = self.max_rounds.unwrap_or_else(|| default_round_cap(n));

        let mut tracker = ConvergenceTracker::new(n, initial_winner, self.epsilon);
        let winner_idx = initial_winner.index() as usize;
        // Consensus additionally requires that no node is undecided, so
        // the max-support channel reports 0 while any pool member is —
        // mirroring the per-node dynamics engine.
        let observe = |c: &[u64], u: u64, tracker: &mut ConvergenceTracker, t: f64| {
            let max = c.iter().copied().max().unwrap_or(0);
            tracker.observe(t, c[winner_idx], if u == 0 { max } else { 0 });
        };
        observe(&counts, undecided, &mut tracker, 0.0);

        let mono = |c: &[u64], u: u64| u == 0 && c.iter().filter(|&&x| x > 0).count() <= 1;
        let mut peak_undecided = 0.0f64;
        let mut rounds = 0u64;

        if !mono(&counts, undecided) {
            // Scatter layout: k color cells then the undecided cell.
            let mut probs = vec![0.0f64; k + 1];
            let mut next = vec![0u64; k + 1];
            for round in 1..=max_rounds {
                rounds = round;
                next.iter_mut().for_each(|c| *c = 0);
                let fu = undecided as f64 / nf;
                // Undecided pool: adopt the single sample verbatim.
                if undecided > 0 {
                    for (p, &c) in probs.iter_mut().zip(counts.iter()) {
                        *p = c as f64 / nf;
                    }
                    probs[k] = fu;
                    let scattered = sample_multinomial(undecided, &probs, &mut rng);
                    for (t, s) in next.iter_mut().zip(scattered) {
                        *t += s;
                    }
                }
                // Decided pools: stay on agreement or an undecided
                // sample, else turn undecided — one conditioned binomial
                // per color cell.
                for c in 0..k {
                    let m = counts[c];
                    if m == 0 {
                        continue;
                    }
                    let fc = counts[c] as f64 / nf;
                    let disagree = (1.0 - fc - fu).clamp(0.0, 1.0);
                    let stayed = multinomial_split(m, &[(k, disagree)], &mut next, &mut rng);
                    next[c] += stayed;
                }
                counts.copy_from_slice(&next[..k]);
                undecided = next[k];
                peak_undecided = peak_undecided.max(undecided as f64 / nf);
                observe(&counts, undecided, &mut tracker, round as f64);
                if mono(&counts, undecided) {
                    break;
                }
            }
        }

        let outcome = RunOutcome {
            n,
            k: k as u32,
            initial_winner,
            initial_bias,
            final_counts: OpinionCounts::from_counts(counts),
            epsilon_time: tracker.epsilon_time(),
            consensus_time: tracker.consensus_time(),
            duration: rounds as f64,
            generations: Vec::new(),
        };
        UndecidedMfResult {
            outcome,
            rounds,
            peak_undecided,
        }
    }
}

/// Result of a mean-field undecided-state run.
#[derive(Debug, Clone, PartialEq)]
pub struct UndecidedMfResult {
    /// Common outcome report (undecided nodes are excluded from
    /// `final_counts`, like the per-node engine).
    pub outcome: RunOutcome,
    /// Rounds simulated.
    pub rounds: u64,
    /// Peak fraction of simultaneously undecided nodes.
    pub peak_undecided: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::Opinion;

    /// Brute-force 3-majority outcome law: enumerate all k³ ordered
    /// sample triples with their probabilities.
    fn brute_force_majority3_probs(fracs: &[f64]) -> Vec<f64> {
        let k = fracs.len();
        let mut probs = vec![0.0f64; k];
        for a in 0..k {
            for b in 0..k {
                for c in 0..k {
                    let p = fracs[a] * fracs[b] * fracs[c];
                    if a == b || a == c {
                        probs[a] += p;
                    } else if b == c {
                        probs[b] += p;
                    } else {
                        // All distinct: uniform tie-break among the three.
                        probs[a] += p / 3.0;
                        probs[b] += p / 3.0;
                        probs[c] += p / 3.0;
                    }
                }
            }
        }
        probs
    }

    #[test]
    fn closed_form_majority3_law_matches_enumeration() {
        for fracs in [
            vec![0.5, 0.3, 0.2],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.7, 0.1, 0.1, 0.05, 0.05],
            vec![1.0, 0.0],
        ] {
            let brute = brute_force_majority3_probs(&fracs);
            let m2: f64 = fracs.iter().map(|f| f * f).sum();
            for (j, &f) in fracs.iter().enumerate() {
                let closed = f * f * (3.0 - 2.0 * f) + f * ((1.0 - f) * (1.0 - f) - (m2 - f * f));
                assert!(
                    (closed - brute[j]).abs() < 1e-12,
                    "fracs {fracs:?}, color {j}: closed {closed} vs brute {}",
                    brute[j]
                );
            }
            assert!((brute.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn majority3_converges_and_preserves_plurality() {
        let r = Majority3MfConfig::new(1_000_000, 5, 3.0)
            .unwrap()
            .with_seed(1)
            .run();
        assert!(r.outcome.consensus_time.is_some(), "did not converge");
        assert!(r.outcome.plurality_preserved());
        assert_eq!(r.outcome.winner(), Some(Opinion::new(0)));
        assert_eq!(r.outcome.final_counts.n(), 1_000_000);
    }

    #[test]
    fn majority3_handles_billion_nodes() {
        let r = Majority3MfConfig::new(1_000_000_000, 8, 2.0)
            .unwrap()
            .with_seed(2)
            .run();
        assert!(r.outcome.plurality_preserved());
        assert!(r.rounds < 200, "rounds {}", r.rounds);
    }

    #[test]
    fn majority3_deterministic_per_seed() {
        let a = Majority3MfConfig::new(50_000, 3, 2.0)
            .unwrap()
            .with_seed(7)
            .run();
        let b = Majority3MfConfig::new(50_000, 3, 2.0)
            .unwrap()
            .with_seed(7)
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn undecided_converges_with_a_transient_undecided_wave() {
        let r = UndecidedMfConfig::new(1_000_000, 2, 3.0)
            .unwrap()
            .with_seed(1)
            .run();
        assert!(r.outcome.consensus_time.is_some(), "did not converge");
        assert!(r.outcome.plurality_preserved());
        assert!(
            r.peak_undecided > 0.0 && r.peak_undecided < 1.0,
            "peak {}",
            r.peak_undecided
        );
        // Converged: nobody left undecided, so the counts cover n.
        assert_eq!(r.outcome.final_counts.n(), 1_000_000);
    }

    #[test]
    fn undecided_handles_billion_nodes() {
        let r = UndecidedMfConfig::new(1_000_000_000, 2, 3.0)
            .unwrap()
            .with_seed(3)
            .run();
        assert!(r.outcome.plurality_preserved());
        assert!(r.rounds < 300, "rounds {}", r.rounds);
    }

    #[test]
    fn undecided_deterministic_per_seed() {
        let a = UndecidedMfConfig::new(40_000, 3, 2.0)
            .unwrap()
            .with_seed(5)
            .run();
        let b = UndecidedMfConfig::new(40_000, 3, 2.0)
            .unwrap()
            .with_seed(5)
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn monochromatic_start_is_instant() {
        let m = Majority3MfConfig::from_counts(vec![700, 0])
            .with_seed(4)
            .run();
        assert_eq!(m.rounds, 0);
        assert_eq!(m.outcome.consensus_time, Some(0.0));
        let u = UndecidedMfConfig::from_counts(vec![700, 0])
            .with_seed(4)
            .run();
        assert_eq!(u.rounds, 0);
        assert_eq!(u.outcome.consensus_time, Some(0.0));
    }
}
