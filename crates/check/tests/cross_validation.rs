//! Cross-validation: the checker's reachable state space must cover real
//! engine executions. The asynchronous single-leader *engine*
//! (`plurality-core`) runs a small instance to completion under its
//! sampled schedule; the *checker* enumerates every schedule of the
//! matching instance. The engine's final per-node `(generation, color)`
//! profile must then appear among the checker's reachable states — if
//! the oracle's transition logic ever drifted from the engine's, the
//! profile would fall outside the enumerated space and this test would
//! catch it.

use std::collections::{HashSet, VecDeque};

use plurality_check::{canonical_key, CheckTopology, LeaderCheckConfig, StepOracle};
use plurality_core::leader::LeaderConfig;
use plurality_core::{InitialAssignment, RecordLevel};

/// Sorted multiset of per-node `(generation, color)` pairs.
fn profile(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    pairs.sort_unstable();
    pairs
}

/// Enumerates the full reachable state space of the standard n = 4
/// leader instance (complete topology, cap 2) through the public oracle
/// API and returns every reachable node-state profile.
fn reachable_profiles() -> (usize, HashSet<Vec<(u32, u32)>>) {
    let oracle = LeaderCheckConfig::new(4, 2, CheckTopology::Complete)
        .oracle()
        .expect("valid instance");
    let mut profiles = HashSet::new();
    let mut visited = HashSet::new();
    let mut frontier = VecDeque::new();

    let root = canonical_key(&oracle, &oracle.initial());
    visited.insert(root.clone());
    frontier.push_back(root);
    let mut acts = Vec::new();
    while let Some(key) = frontier.pop_front() {
        let state = oracle.decode(&key);
        profiles.insert(profile(
            state.nodes.iter().map(|n| (n.gen, n.col)).collect(),
        ));
        acts.clear();
        oracle.actions(&state, &mut acts);
        for a in acts.clone() {
            let succ = oracle.step(&state, &a);
            let succ_key = canonical_key(&oracle, &succ);
            if visited.insert(succ_key.clone()) {
                frontier.push_back(succ_key);
            }
        }
    }
    (visited.len(), profiles)
}

#[test]
fn engine_runs_land_inside_the_checker_state_space() {
    // The engine instance mirrors the checker's standard n = 4 one:
    // α₀ = 3 over k = 2 gives the same 3-vs-1 initial split as the
    // checker's majority construction, `gen_size_fraction` 0.5 gives the
    // same generation-size threshold (⌈n/2⌉ = 2), and the generation cap
    // is pinned to the checker's 2. The zero-signal threshold need not
    // match: the checker's scheduler may delay 0-signal deliveries
    // arbitrarily, so every engine phase sequence has a checker schedule.
    let (states, profiles) = reachable_profiles();
    assert!(states > 10_000, "state space implausibly small: {states}");
    assert!(profiles.len() > 20, "too few profiles: {}", profiles.len());

    for seed in [1u64, 7, 23, 101] {
        let assignment = InitialAssignment::with_bias(4, 2, 3.0).unwrap();
        let result = LeaderConfig::new(assignment)
            .with_seed(seed)
            .with_steps_per_unit(9.3)
            .with_generation_cap(2)
            .with_record(RecordLevel::Full)
            .run();
        let final_states = result
            .final_node_states
            .expect("full record keeps node states");
        let engine_profile = profile(final_states);
        assert!(
            profiles.contains(&engine_profile),
            "seed {seed}: engine profile {engine_profile:?} is not reachable in the checker"
        );
    }
}

#[test]
fn engine_initial_profile_is_the_checker_root() {
    // The mapping between the two instance descriptions is itself worth
    // pinning: `with_bias(4, 2, 3)` seats 3-vs-1, exactly the checker's
    // majority construction, so the cross-validation above really does
    // start both systems from the same configuration.
    let assignment = InitialAssignment::with_bias(4, 2, 3.0).unwrap();
    assert_eq!(assignment.n(), 4);
    let outcome = LeaderConfig::new(assignment).with_seed(1).run().outcome;
    assert_eq!(outcome.initial_bias, 3.0);

    let oracle = LeaderCheckConfig::new(4, 2, CheckTopology::Complete)
        .oracle()
        .unwrap();
    let root = oracle.initial();
    let mut root_counts = [0u64; 2];
    for node in &root.nodes {
        assert_eq!(node.gen, 0);
        root_counts[node.col as usize] += 1;
    }
    assert_eq!(root_counts, [3, 1]);
}
