//! Generic exhaustive state-space exploration over a [`StepOracle`].
//!
//! The explorer enumerates every state reachable from the oracle's
//! initial state under *all* schedules, deduplicating states by their
//! canonical key (the oracle's symmetry-reduced, dead-counter-normalized
//! encoding). It stores only parent links and the action that discovered
//! each state — full states are reconstructed on demand through
//! [`StepOracle::decode`], and counterexample traces are *concretized* by
//! replaying actions from the genuine initial state, so every printed
//! trace is a real execution of the protocol, not a quotient artifact.
//!
//! Two search orders are supported: breadth-first (default — discovered
//! witnesses are minimal in the number of actions) and depth-first (a
//! smaller frontier for pure invariant sweeps).

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-hash multiply-rotate construction. The visited set does a
/// hash lookup on every examined transition (hundreds of millions for a
/// cluster instance); SipHash's DoS resistance buys nothing on
/// checker-internal keys, so trade it for speed.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type KeySet = HashSet<Box<[u8]>, BuildHasherDefault<FxHasher>>;

/// The contract between the explorer and a protocol model.
///
/// Implementations must guarantee, for every state `s` reachable from
/// [`initial`](Self::initial):
///
/// * `canonicalize(decode(&canonicalize(s))) == canonicalize(s)` — decode
///   returns *some* representative of the key's equivalence class;
/// * equivalent states (equal keys) have equivalent futures: for every
///   action enabled in one representative there is an action in any other
///   leading to an equivalent successor;
/// * properties passed to [`explore`] are invariant under the equivalence
///   (they may not depend on node labels or normalized-away counters).
pub trait StepOracle {
    /// A full protocol configuration (all node and leader state).
    type State: Clone;
    /// One atomic scheduler choice (a delivery or an interaction).
    type Action: Clone + fmt::Display;

    /// The initial configuration.
    fn initial(&self) -> Self::State;
    /// Appends every action enabled in `state` to `out`.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);
    /// Writes the successor of `state` under `action` into `succ` (pure;
    /// no hidden state). Implementations start with
    /// `succ.clone_from(state)` so the explorer's hot loop reuses one
    /// successor's allocations across all transitions.
    fn step_into(&self, state: &Self::State, action: &Self::Action, succ: &mut Self::State);

    /// Allocating convenience successor for cold paths.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Self::State {
        let mut succ = state.clone();
        self.step_into(state, action, &mut succ);
        succ
    }
    /// Writes the canonical key — the symmetry-reduced, normalized
    /// encoding — into `key` (cleared first). Buffer-based so the
    /// explorer's per-transition duplicate test never allocates.
    fn canonicalize(&self, state: &Self::State, key: &mut Vec<u8>);
    /// A representative state of the class encoded by `key`.
    fn decode(&self, key: &[u8]) -> Self::State;
    /// A one-line human-readable rendering of `state` for traces.
    fn describe(&self, state: &Self::State) -> String;
}

/// Allocating convenience wrapper over [`StepOracle::canonicalize`] for
/// cold paths (trace replay, tests).
pub fn canonical_key<O: StepOracle>(oracle: &O, state: &O::State) -> Box<[u8]> {
    let mut key = Vec::new();
    oracle.canonicalize(state, &mut key);
    key.into_boxed_slice()
}

/// A property checked during exploration.
pub struct Property<S> {
    /// Stable property name (reported in verdicts and used by the CLI).
    pub name: &'static str,
    /// What to check.
    pub check: PropertyCheck<S>,
}

/// The two property shapes the explorer understands.
pub enum PropertyCheck<S> {
    /// An edge invariant, checked on every explored transition
    /// `(pre, post)`; returns a violation description on failure.
    Invariant(fn(&S, &S) -> Result<(), String>),
    /// A reachability query: is any reachable state satisfying the
    /// predicate? (Answered definitively when exploration is exhaustive.)
    Reachable(fn(&S) -> bool),
}

/// A concretized counterexample or witness: a genuine execution from the
/// initial state.
pub struct Trace<A> {
    /// The scheduler choices, in order, from the initial state.
    pub actions: Vec<A>,
    /// A pre-rendered step-by-step listing (actions interleaved with the
    /// states they produce).
    pub pretty: String,
}

/// Per-property outcome of an exploration.
pub enum Verdict<A> {
    /// Invariant: held on every explored edge.
    Holds,
    /// Invariant: violated on some edge; `trace` ends with the violating
    /// action.
    Violated {
        /// The violation description from the invariant function.
        detail: String,
        /// Minimal (under BFS) trace to the violating edge.
        trace: Trace<A>,
    },
    /// Reachability: a satisfying state exists; `trace` reaches one.
    Reachable {
        /// Minimal (under BFS) witness trace.
        trace: Trace<A>,
    },
    /// Reachability: no explored state satisfies the predicate. Definitive
    /// only when the exploration was exhaustive.
    Unreachable,
}

/// Frontier discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOrder {
    /// Layer by layer — witnesses and counterexamples are minimal in the
    /// number of actions.
    BreadthFirst,
    /// Stack order — smaller frontier, no minimality guarantee.
    DepthFirst,
}

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Stop expanding once this many distinct states have been seen; the
    /// result is then marked truncated and verdicts lose their
    /// definitiveness.
    pub max_states: usize,
    /// Frontier discipline.
    pub order: SearchOrder,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_states: 20_000_000,
            order: SearchOrder::BreadthFirst,
        }
    }
}

/// The result of [`explore`].
pub struct Exploration<A> {
    /// Distinct canonical states discovered.
    pub states: usize,
    /// Transitions examined (edges, counting re-visits).
    pub transitions: u64,
    /// True when the state budget was exhausted before the frontier
    /// emptied: `Holds`/`Unreachable` verdicts are then only valid for the
    /// explored prefix.
    pub truncated: bool,
    /// One verdict per property, in input order.
    pub verdicts: Vec<(&'static str, Verdict<A>)>,
}

impl<A> Exploration<A> {
    /// Whether every invariant held (reachability verdicts are answers,
    /// not failures).
    pub fn invariants_hold(&self) -> bool {
        !self
            .verdicts
            .iter()
            .any(|(_, v)| matches!(v, Verdict::Violated { .. }))
    }

    /// The verdict for a property by name.
    pub fn verdict(&self, name: &str) -> Option<&Verdict<A>> {
        self.verdicts
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }
}

/// Exhaustively explores the oracle's reachable state space and evaluates
/// `properties` over it.
pub fn explore<O: StepOracle>(
    oracle: &O,
    properties: &[Property<O::State>],
    limits: &Limits,
) -> Exploration<O::Action> {
    // Arena entry i: (parent index, action that discovered state i).
    // State 0 is the canonical root; its key is recomputed on demand.
    let mut arena: Vec<(u32, Option<O::Action>)> = Vec::new();
    let mut visited: KeySet = KeySet::default();
    let mut frontier: VecDeque<(u32, Box<[u8]>)> = VecDeque::new();

    let root_key = canonical_key(oracle, &oracle.initial());
    visited.insert(root_key.clone());
    arena.push((0, None));
    frontier.push_back((0, root_key.clone()));

    // First hit per property: (arena index, invariant detail).
    let mut inv_hit: Vec<Option<(u32, String)>> = properties.iter().map(|_| None).collect();
    let mut target_hit: Vec<Option<u32>> = properties.iter().map(|_| None).collect();

    let root_rep = oracle.decode(&root_key);
    for (pi, p) in properties.iter().enumerate() {
        if let PropertyCheck::Reachable(f) = &p.check {
            if f(&root_rep) {
                target_hit[pi] = Some(0);
            }
        }
    }

    let mut transitions = 0u64;
    let mut truncated = false;
    let mut acts: Vec<O::Action> = Vec::new();
    let mut keybuf: Vec<u8> = Vec::new();
    let mut succ = oracle.initial();
    loop {
        let popped = match limits.order {
            SearchOrder::BreadthFirst => frontier.pop_front(),
            SearchOrder::DepthFirst => frontier.pop_back(),
        };
        let Some((idx, key)) = popped else { break };
        if visited.len() >= limits.max_states {
            truncated = true;
            break;
        }
        let state = oracle.decode(&key);
        debug_assert_eq!(
            canonical_key(oracle, &state),
            key,
            "decode must return a representative of its own key"
        );
        acts.clear();
        oracle.actions(&state, &mut acts);
        for a in &acts {
            oracle.step_into(&state, a, &mut succ);
            transitions += 1;
            for (pi, p) in properties.iter().enumerate() {
                if let PropertyCheck::Invariant(f) = &p.check {
                    if inv_hit[pi].is_none() {
                        if let Err(detail) = f(&state, &succ) {
                            inv_hit[pi] = Some((idx, detail));
                        }
                    }
                }
            }
            oracle.canonicalize(&succ, &mut keybuf);
            if keybuf.as_slice() == &*key || visited.contains(keybuf.as_slice()) {
                continue;
            }
            let skey: Box<[u8]> = keybuf.as_slice().into();
            let nid = arena.len() as u32;
            arena.push((idx, Some(a.clone())));
            visited.insert(skey.clone());
            for (pi, p) in properties.iter().enumerate() {
                if let PropertyCheck::Reachable(f) = &p.check {
                    if target_hit[pi].is_none() && f(&succ) {
                        target_hit[pi] = Some(nid);
                    }
                }
            }
            frontier.push_back((nid, skey));
        }
    }

    let verdicts = properties
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let verdict = match &p.check {
                PropertyCheck::Invariant(f) => match &inv_hit[pi] {
                    None => Verdict::Holds,
                    Some((pre_idx, detail)) => {
                        let trace = concretize_violation(oracle, &arena, *pre_idx, *f);
                        Verdict::Violated {
                            detail: detail.clone(),
                            trace,
                        }
                    }
                },
                PropertyCheck::Reachable(_) => match target_hit[pi] {
                    None => Verdict::Unreachable,
                    Some(idx) => Verdict::Reachable {
                        trace: concretize_path(oracle, &arena, idx),
                    },
                },
            };
            (p.name, verdict)
        })
        .collect();

    Exploration {
        states: visited.len(),
        transitions,
        truncated,
        verdicts,
    }
}

/// The canonical-key chain from the root to `idx`, recomputed from the
/// arena's parent links and stored actions (keys are not retained during
/// exploration to keep memory at one key per *visited-set* entry).
fn key_chain<O: StepOracle>(
    oracle: &O,
    arena: &[(u32, Option<O::Action>)],
    idx: u32,
) -> Vec<Box<[u8]>> {
    let mut path = Vec::new();
    let mut at = idx;
    loop {
        path.push(at);
        if at == 0 {
            break;
        }
        at = arena[at as usize].0;
    }
    path.reverse();

    let mut keys = Vec::with_capacity(path.len());
    let root_key = canonical_key(oracle, &oracle.initial());
    let mut rep = oracle.decode(&root_key);
    keys.push(root_key);
    for &node in &path[1..] {
        let action = arena[node as usize]
            .1
            .as_ref()
            .expect("non-root arena entries store their discovering action");
        let succ = oracle.step(&rep, action);
        let key = canonical_key(oracle, &succ);
        rep = oracle.decode(&key);
        keys.push(key);
    }
    keys
}

/// Replays a key chain as a *genuine* execution from the canonical root
/// representative: at each step the first enabled action whose successor
/// canonicalizes to the next key is taken. Such an action always exists
/// because the canonical equivalence commutes with the transition
/// relation. The walk starts from `decode(keys[0])`, not from
/// [`StepOracle::initial`] — the recorded actions index nodes in the
/// *canonical* layout, which may be a relabeling of the initial one.
fn replay_keys<O: StepOracle>(oracle: &O, keys: &[Box<[u8]>]) -> (Vec<O::Action>, Vec<O::State>) {
    let mut state = oracle.decode(&keys[0]);
    debug_assert_eq!(canonical_key(oracle, &state), keys[0]);
    let mut actions = Vec::with_capacity(keys.len() - 1);
    let mut states = vec![state.clone()];
    let mut acts: Vec<O::Action> = Vec::new();
    for key in &keys[1..] {
        acts.clear();
        oracle.actions(&state, &mut acts);
        let step = acts
            .iter()
            .map(|a| (a, oracle.step(&state, a)))
            .find(|(_, succ)| canonical_key(oracle, succ) == *key)
            .expect("canonical successor must be replayable from a concrete state");
        actions.push(step.0.clone());
        state = step.1;
        states.push(state.clone());
    }
    (actions, states)
}

fn render<O: StepOracle>(oracle: &O, actions: &[O::Action], states: &[O::State]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  init  {}", oracle.describe(&states[0]));
    for (i, (a, s)) in actions.iter().zip(&states[1..]).enumerate() {
        let _ = writeln!(out, "  {:>4}  {a}", i + 1);
        let _ = writeln!(out, "        {}", oracle.describe(s));
    }
    out
}

/// A genuine trace from the initial state to the state at arena `idx`.
fn concretize_path<O: StepOracle>(
    oracle: &O,
    arena: &[(u32, Option<O::Action>)],
    idx: u32,
) -> Trace<O::Action> {
    let keys = key_chain(oracle, arena, idx);
    let (actions, states) = replay_keys(oracle, &keys);
    let pretty = render(oracle, &actions, &states);
    Trace { actions, pretty }
}

/// A genuine trace to the state at `pre_idx` extended by one action that
/// violates the invariant. The stored violating edge was found on a
/// decoded representative; because the invariant is label-invariant, a
/// violating action also exists at the concretely replayed state and is
/// re-discovered here.
fn concretize_violation<O: StepOracle>(
    oracle: &O,
    arena: &[(u32, Option<O::Action>)],
    pre_idx: u32,
    invariant: fn(&O::State, &O::State) -> Result<(), String>,
) -> Trace<O::Action> {
    let keys = key_chain(oracle, arena, pre_idx);
    let (mut actions, mut states) = replay_keys(oracle, &keys);
    let pre = states
        .last()
        .expect("replay yields at least the root")
        .clone();
    let mut acts: Vec<O::Action> = Vec::new();
    oracle.actions(&pre, &mut acts);
    let violating = acts
        .iter()
        .map(|a| (a, oracle.step(&pre, a)))
        .find(|(_, succ)| invariant(&pre, succ).is_err())
        .expect("a violating action must exist at the replayed pre-state");
    actions.push(violating.0.clone());
    states.push(violating.1);
    let pretty = render(oracle, &actions, &states);
    Trace { actions, pretty }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded counter: `Inc` up to `max`, plus a `Skip { by: 2 }` edge
    /// from even states. Used to exercise search order, minimality, and
    /// truncation without any protocol machinery.
    struct Counter {
        max: u8,
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Act {
        Inc,
        Skip,
    }

    impl fmt::Display for Act {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Act::Inc => write!(f, "inc"),
                Act::Skip => write!(f, "skip"),
            }
        }
    }

    impl StepOracle for Counter {
        type State = u8;
        type Action = Act;

        fn initial(&self) -> u8 {
            0
        }

        fn actions(&self, s: &u8, out: &mut Vec<Act>) {
            if *s < self.max {
                out.push(Act::Inc);
            }
            if *s % 2 == 0 && *s + 2 <= self.max {
                out.push(Act::Skip);
            }
        }

        fn step_into(&self, s: &u8, a: &Act, succ: &mut u8) {
            *succ = match a {
                Act::Inc => s + 1,
                Act::Skip => s + 2,
            };
        }

        fn canonicalize(&self, s: &u8, key: &mut Vec<u8>) {
            key.clear();
            key.push(*s);
        }

        fn decode(&self, key: &[u8]) -> u8 {
            key[0]
        }

        fn describe(&self, s: &u8) -> String {
            format!("counter={s}")
        }
    }

    fn reach_max(max: u8) -> Property<u8> {
        let _ = max;
        Property {
            name: "reach-max",
            check: PropertyCheck::Reachable(|s| *s == 6),
        }
    }

    #[test]
    fn bfs_finds_minimal_witness() {
        let oracle = Counter { max: 6 };
        let props = vec![
            Property {
                name: "monotone",
                check: PropertyCheck::Invariant(|pre, post| {
                    if post >= pre {
                        Ok(())
                    } else {
                        Err(format!("{pre} -> {post}"))
                    }
                }),
            },
            reach_max(6),
        ];
        let out = explore(&oracle, &props, &Limits::default());
        assert_eq!(out.states, 7);
        assert!(!out.truncated);
        assert!(out.invariants_hold());
        match out.verdict("reach-max").unwrap() {
            Verdict::Reachable { trace } => {
                // Skip-by-2 three times is the minimal schedule.
                assert_eq!(trace.actions, vec![Act::Skip, Act::Skip, Act::Skip]);
                assert!(trace.pretty.contains("counter=6"));
            }
            _ => panic!("expected reachable"),
        }
    }

    #[test]
    fn dfs_explores_the_same_set() {
        let oracle = Counter { max: 6 };
        let limits = Limits {
            order: SearchOrder::DepthFirst,
            ..Limits::default()
        };
        let out = explore(&oracle, &[reach_max(6)], &limits);
        assert_eq!(out.states, 7);
        assert!(matches!(
            out.verdict("reach-max"),
            Some(Verdict::Reachable { .. })
        ));
    }

    #[test]
    fn unreachable_is_definitive_when_exhaustive() {
        let oracle = Counter { max: 4 };
        let props = vec![Property {
            name: "reach-nine",
            check: PropertyCheck::Reachable(|s| *s == 9),
        }];
        let out = explore(&oracle, &props, &Limits::default());
        assert!(!out.truncated);
        assert!(matches!(
            out.verdict("reach-nine"),
            Some(Verdict::Unreachable)
        ));
    }

    #[test]
    fn truncation_is_reported() {
        let oracle = Counter { max: 200 };
        let limits = Limits {
            max_states: 10,
            order: SearchOrder::BreadthFirst,
        };
        let out = explore(&oracle, &[], &limits);
        assert!(out.truncated);
        assert!(out.states >= 10);
    }

    #[test]
    fn invariant_violation_carries_a_concrete_trace() {
        let oracle = Counter { max: 3 };
        let props = vec![Property {
            name: "below-three",
            check: PropertyCheck::Invariant(|_pre, post| {
                if *post < 3 {
                    Ok(())
                } else {
                    Err("hit three".into())
                }
            }),
        }];
        let out = explore(&oracle, &props, &Limits::default());
        match out.verdict("below-three").unwrap() {
            Verdict::Violated { detail, trace } => {
                assert_eq!(detail, "hit three");
                // The trace ends with the violating action; replaying it
                // from 0 must land on 3.
                let end: u8 = trace.actions.iter().fold(0, |s, a| oracle.step(&s, a));
                assert_eq!(end, 3);
            }
            _ => panic!("expected violation"),
        }
    }
}
