//! # plurality-check
//!
//! Exhaustive scheduler-interleaving model checking for small instances
//! of the paper's leader (Algorithms 2–3) and cluster (Algorithms 4–5)
//! protocols.
//!
//! The asynchronous engines in `plurality-core` *sample* schedules: Poisson
//! clocks, random latencies, and random peers produce one execution per
//! seed. This crate instead enumerates **every** schedule of a small
//! instance (`n = 4..=8`, bounded generations) and verifies safety
//! properties over the full reachable state space — or produces a concrete
//! counterexample trace. It answers questions sampling cannot, e.g.
//! whether a surviving top-generation minority pocket is *reachable* (a
//! possibility) rather than merely *probable* (experiment E17's open
//! question, recorded as E20 in `EXPERIMENTS.md`).
//!
//! The models own no protocol rules. Node transitions go through the same
//! pure functions the engines call ([`plurality_core::leader::decide`] /
//! [`plurality_core::leader::apply`], [`plurality_core::cluster::decide_member`] /
//! [`plurality_core::cluster::finished_exchange`]) and leader transitions
//! through the engine state machines themselves
//! ([`plurality_core::leader::LeaderState`],
//! [`plurality_core::cluster::ClusterLeaderState`]); the checker
//! contributes only the adversarial scheduler and the state-space
//! bookkeeping, so checker and simulator cannot drift.
//!
//! ## Quick start
//!
//! ```
//! use plurality_check::{check_leader, CheckTopology, LeaderCheckConfig, Limits};
//!
//! let cfg = LeaderCheckConfig::new(4, 2, CheckTopology::Complete);
//! let report = check_leader(cfg, &Limits::default()).unwrap();
//! assert!(report.exhaustive);
//! assert!(report.invariants_hold());
//! // The pocket question gets a definitive answer:
//! assert!(report.property("pocket").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod explore;
pub mod leader;
mod report;

pub use cluster::{
    cluster_properties, ClusterAction, ClusterCheckConfig, ClusterModel, ClusterOracle,
    ClusterUnit, Member,
};
pub use explore::{
    canonical_key, explore, Exploration, Limits, Property, PropertyCheck, SearchOrder, StepOracle,
    Trace, Verdict,
};
pub use leader::{leader_properties, LeaderAction, LeaderCheckConfig, LeaderModel, LeaderOracle};
pub use report::{check_cluster, check_leader, CheckReport, PropertyReport, VerdictSummary};

use std::fmt;
use std::str::FromStr;

/// The communication graphs the checker explores.
///
/// `Complete` mirrors the engine's default with-replacement uniform
/// sampler (self-draws and repeated draws included); `Ring` restricts each
/// node's samples to its two cycle neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckTopology {
    /// Uniform sampling over all `n` nodes (including the sampler itself).
    Complete,
    /// The cycle graph: node `v` samples only `v ± 1 (mod n)`.
    Ring,
}

impl CheckTopology {
    /// The per-node sample universe under this topology.
    pub fn neighbor_sets(self, n: usize) -> Vec<Vec<u8>> {
        match self {
            CheckTopology::Complete => {
                let all: Vec<u8> = (0..n as u8).collect();
                vec![all; n]
            }
            CheckTopology::Ring => (0..n)
                .map(|v| vec![((v + n - 1) % n) as u8, ((v + 1) % n) as u8])
                .collect(),
        }
    }
}

impl fmt::Display for CheckTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckTopology::Complete => write!(f, "complete"),
            CheckTopology::Ring => write!(f, "ring"),
        }
    }
}

impl FromStr for CheckTopology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "complete" => Ok(CheckTopology::Complete),
            "ring" => Ok(CheckTopology::Ring),
            other => Err(format!("unknown check topology '{other}' (complete|ring)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_sets_shapes() {
        let complete = CheckTopology::Complete.neighbor_sets(4);
        assert!(complete.iter().all(|nbrs| nbrs.len() == 4));
        let ring = CheckTopology::Ring.neighbor_sets(5);
        assert_eq!(ring[0], vec![4, 1]);
        assert_eq!(ring[4], vec![3, 0]);
    }

    #[test]
    fn topology_round_trips_through_str() {
        for t in [CheckTopology::Complete, CheckTopology::Ring] {
            assert_eq!(t.to_string().parse::<CheckTopology>().unwrap(), t);
        }
        assert!("torus".parse::<CheckTopology>().is_err());
    }
}
