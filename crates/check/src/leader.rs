//! Exhaustive model of the single-leader protocol (Algorithms 2–3).
//!
//! The model is a thin adapter over the *engine's own* transition logic:
//! node updates go through [`plurality_core::leader::decide`] /
//! [`plurality_core::leader::apply`] and the leader through
//! [`LeaderState::on_signal`] — the checker owns no protocol rules, only
//! the scheduler. Three action kinds capture every adversarial schedule:
//!
//! * `DeliverZero` — a 0-signal reaches the leader. Nodes tick forever,
//!   so this is enabled whenever the delivery is observable (propagation
//!   closed); delaying it models arbitrary signal latency and loss.
//! * `DeliverGen` — one in-flight gen-signal for the *current* generation
//!   reaches the leader. In-flight signals collapse to a single counter:
//!   a gen-signal is observable only while its generation is still the
//!   leader's current one, making all pending signals interchangeable —
//!   and stale ones (from before a birth) permanently silent, so the
//!   counter resets on birth. It is capped at the birth threshold, past
//!   which extra signals cannot add observable behavior before the reset.
//! * `Interact { v, a, b }` — node `v` completes a two-choices
//!   interaction with samples `a, b` read at completion time. The engine
//!   separates tick (sampling) from completion (reading state); the
//!   atomic version is a sound superset because the adversary choosing
//!   `(a, b)` freely at completion subsumes any earlier draw.
//!
//! States are canonicalized modulo the topology's automorphisms (full
//! symmetric group on the complete graph — node states become a sorted
//! multiset — and the dihedral group on the ring) and modulo dead
//! counters: the leader's zero-counter is unobservable while propagation
//! is open, and its generation-size counter and the pending counter are
//! unobservable at the generation cap.

use std::fmt;

use plurality_core::leader::{apply, decide, LeaderParams, LeaderState, NodeState, Signal};

use crate::explore::{Property, PropertyCheck, StepOracle};
use crate::CheckTopology;

/// Instance description for a leader-protocol check.
#[derive(Debug, Clone)]
pub struct LeaderCheckConfig {
    /// Initial color per node (`init.len()` is `n`).
    pub init: Vec<u32>,
    /// Number of opinions (colors are `0..k`).
    pub k: u32,
    /// Communication topology.
    pub topology: CheckTopology,
    /// Leader thresholds. Checker-scale values — the engine's asymptotic
    /// formulas produce thresholds that only make sense for large `n`.
    pub params: LeaderParams,
}

impl LeaderCheckConfig {
    /// A standard small instance: `n/2 + 1` nodes of color 0, the rest
    /// round-robin over the remaining colors; two zero-signals open
    /// propagation, `⌈n/2⌉` promotions birth a generation, cap 2.
    pub fn new(n: usize, k: u32, topology: CheckTopology) -> Self {
        let majority = n / 2 + 1;
        let mut init = vec![0u32; n];
        for (i, slot) in init.iter_mut().enumerate().skip(majority) {
            *slot = 1 + ((i - majority) as u32 % (k.max(2) - 1));
        }
        Self {
            init,
            k,
            topology,
            params: LeaderParams {
                zero_signal_threshold: 2,
                gen_size_threshold: n.div_ceil(2) as u64,
                generation_cap: 2,
            },
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.init.len()
    }

    /// Validates instance bounds (the canonical encoding packs fields
    /// into nibbles and `u8` counters).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if !(2..=8).contains(&n) {
            return Err(format!("n = {n} out of the checkable range 2..=8"));
        }
        if self.topology == CheckTopology::Ring && n < 3 {
            return Err("ring topology needs n >= 3".into());
        }
        if !(2..=15).contains(&self.k) {
            return Err(format!("k = {} out of range 2..=15", self.k));
        }
        if let Some(c) = self.init.iter().find(|c| **c >= self.k) {
            return Err(format!("initial color {c} out of range 0..{}", self.k));
        }
        if !(1..=15).contains(&self.params.generation_cap) {
            return Err(format!(
                "generation cap {} out of range 1..=15",
                self.params.generation_cap
            ));
        }
        if !(1..=200).contains(&self.params.zero_signal_threshold) {
            return Err("zero_signal_threshold out of range 1..=200".into());
        }
        if !(1..=200).contains(&self.params.gen_size_threshold) {
            return Err("gen_size_threshold out of range 1..=200".into());
        }
        Ok(())
    }

    /// Builds the oracle, validating first.
    pub fn oracle(self) -> Result<LeaderOracle, String> {
        self.validate()?;
        let n = self.n();
        let neighbors = self.topology.neighbor_sets(n);
        Ok(LeaderOracle {
            cfg: self,
            neighbors,
        })
    }
}

/// A full configuration of the modeled system.
#[derive(Clone)]
pub struct LeaderModel {
    /// Per-node protocol state.
    pub nodes: Vec<NodeState>,
    /// The leader (the engine's own state machine).
    pub leader: LeaderState,
    /// In-flight gen-signals for the leader's current generation.
    pub pending: u8,
}

/// One scheduler choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderAction {
    /// A 0-signal arrives at the leader.
    DeliverZero,
    /// A pending gen-signal (for the current generation) arrives.
    DeliverGen,
    /// Node `v` completes an interaction with samples `a, b`.
    Interact {
        /// The initiating node.
        v: u8,
        /// First sampled node.
        a: u8,
        /// Second sampled node.
        b: u8,
    },
}

impl fmt::Display for LeaderAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaderAction::DeliverZero => write!(f, "deliver 0-signal"),
            LeaderAction::DeliverGen => write!(f, "deliver gen-signal"),
            LeaderAction::Interact { v, a, b } => {
                write!(f, "node {v} interacts with samples ({a}, {b})")
            }
        }
    }
}

/// The leader-protocol [`StepOracle`].
pub struct LeaderOracle {
    cfg: LeaderCheckConfig,
    neighbors: Vec<Vec<u8>>,
}

impl LeaderOracle {
    /// The instance configuration.
    pub fn config(&self) -> &LeaderCheckConfig {
        &self.cfg
    }

    fn pack_node(node: &NodeState) -> u16 {
        ((node.gen as u16) << 12)
            | ((node.col as u16) << 8)
            | ((node.seen_gen as u16) << 4)
            | u16::from(node.seen_prop)
    }

    fn unpack_node(word: u16) -> NodeState {
        NodeState {
            gen: u32::from(word >> 12),
            col: u32::from((word >> 8) & 0xf),
            seen_gen: u32::from((word >> 4) & 0xf),
            seen_prop: word & 1 == 1,
        }
    }

    /// Rebuilds a leader in state `(gen, prop, zero, size)` purely through
    /// its public transition function, so the checker cannot fabricate a
    /// leader state the engine's machine could not reach.
    fn replay_leader(&self, gen: u32, prop: bool, zero: u64, size: u64) -> LeaderState {
        let params = self.cfg.params;
        let mut leader = LeaderState::new(params);
        for g in 1..gen {
            for _ in 0..params.gen_size_threshold {
                leader.on_signal(Signal::Generation(g));
            }
        }
        let zeros = if prop {
            params.zero_signal_threshold
        } else {
            zero
        };
        for _ in 0..zeros {
            leader.on_signal(Signal::Zero);
        }
        for _ in 0..size {
            leader.on_signal(Signal::Generation(gen));
        }
        debug_assert_eq!(leader.generation(), gen);
        debug_assert_eq!(leader.propagation(), prop);
        leader
    }
}

impl StepOracle for LeaderOracle {
    type State = LeaderModel;
    type Action = LeaderAction;

    fn initial(&self) -> LeaderModel {
        LeaderModel {
            nodes: self
                .cfg
                .init
                .iter()
                .map(|&col| NodeState {
                    gen: 0,
                    col,
                    seen_gen: 0,
                    seen_prop: false,
                })
                .collect(),
            leader: LeaderState::new(self.cfg.params),
            pending: 0,
        }
    }

    fn actions(&self, s: &LeaderModel, out: &mut Vec<LeaderAction>) {
        if !s.leader.propagation() {
            out.push(LeaderAction::DeliverZero);
        }
        if s.pending > 0 && s.leader.generation() < self.cfg.params.generation_cap {
            out.push(LeaderAction::DeliverGen);
        }
        if self.cfg.topology == CheckTopology::Complete {
            // Symmetry-reduced enumeration: on the complete graph, nodes
            // with equal state are interchangeable (the within-state
            // permutation is an automorphism), and sampled nodes are only
            // read — so two interactions with the same (v, a, b) *state*
            // triple have canonically identical successors. Emit one
            // representative per triple.
            let mut words = [0u16; 8];
            for (w, node) in words.iter_mut().zip(&s.nodes) {
                *w = Self::pack_node(node);
            }
            let n = s.nodes.len();
            let mut combos: Vec<(u64, LeaderAction)> = Vec::with_capacity(n * n * n);
            for v in 0..n {
                for a in 0..n {
                    for b in 0..n {
                        let key = (u64::from(words[v]) << 32)
                            | (u64::from(words[a]) << 16)
                            | u64::from(words[b]);
                        combos.push((
                            key,
                            LeaderAction::Interact {
                                v: v as u8,
                                a: a as u8,
                                b: b as u8,
                            },
                        ));
                    }
                }
            }
            combos.sort_unstable_by_key(|c| c.0);
            combos.dedup_by_key(|c| c.0);
            out.extend(combos.into_iter().map(|c| c.1));
        } else {
            for (v, nbrs) in self.neighbors.iter().enumerate() {
                for &a in nbrs {
                    for &b in nbrs {
                        out.push(LeaderAction::Interact { v: v as u8, a, b });
                    }
                }
            }
        }
    }

    fn step_into(&self, s: &LeaderModel, action: &LeaderAction, st: &mut LeaderModel) {
        st.clone_from(s);
        match *action {
            LeaderAction::DeliverZero => {
                st.leader.on_signal(Signal::Zero);
            }
            LeaderAction::DeliverGen => {
                st.pending -= 1;
                let g = st.leader.generation();
                if st.leader.on_signal(Signal::Generation(g)).is_some() {
                    // A birth: every still-pending signal is now stale.
                    st.pending = 0;
                }
            }
            LeaderAction::Interact { v, a, b } => {
                let s1 = st.nodes[a as usize].sample();
                let s2 = st.nodes[b as usize].sample();
                let leader_gen = st.leader.generation();
                let leader_prop = st.leader.propagation();
                let node = &mut st.nodes[v as usize];
                let decision = decide(node.view(), s1, s2, leader_gen, leader_prop);
                if let Some(Signal::Generation(g)) = apply(node, decision, leader_gen, leader_prop)
                {
                    // Observable only while its generation is current and a
                    // birth is still possible; the engine's send-side gate
                    // (`!leader.is_terminal()`) is implied by `gen < cap`.
                    if g == leader_gen && leader_gen < self.cfg.params.generation_cap {
                        let cap = self.cfg.params.gen_size_threshold.min(200) as u8;
                        st.pending = (st.pending + 1).min(cap);
                    }
                }
            }
        }
    }

    fn canonicalize(&self, s: &LeaderModel, key: &mut Vec<u8>) {
        key.clear();
        let n = s.nodes.len();
        let mut words = [0u16; 8];
        for (w, node) in words.iter_mut().zip(&s.nodes) {
            *w = Self::pack_node(node);
        }
        let words = &mut words[..n];
        match self.cfg.topology {
            CheckTopology::Complete => words.sort_unstable(),
            CheckTopology::Ring => dihedral_min(words),
        }
        let cap = self.cfg.params.generation_cap;
        let at_cap = s.leader.generation() >= cap;
        let zero_norm = if s.leader.propagation() {
            0
        } else {
            s.leader.zero_count() as u8
        };
        let size_norm = if at_cap { 0 } else { s.leader.gen_size() as u8 };
        let pending_norm = if at_cap { 0 } else { s.pending };
        key.push(s.leader.generation() as u8);
        key.push(u8::from(s.leader.propagation()));
        key.push(zero_norm);
        key.push(size_norm);
        key.push(pending_norm);
        for w in words {
            key.extend_from_slice(&w.to_be_bytes());
        }
    }

    fn decode(&self, key: &[u8]) -> LeaderModel {
        let leader = self.replay_leader(
            u32::from(key[0]),
            key[1] == 1,
            u64::from(key[2]),
            u64::from(key[3]),
        );
        let nodes = key[5..]
            .chunks_exact(2)
            .map(|c| Self::unpack_node(u16::from_be_bytes([c[0], c[1]])))
            .collect();
        LeaderModel {
            nodes,
            leader,
            pending: key[4],
        }
    }

    fn describe(&self, s: &LeaderModel) -> String {
        let nodes: Vec<String> = s
            .nodes
            .iter()
            .map(|n| format!("g{}c{}{}", n.gen, n.col, if n.seen_prop { "*" } else { "" }))
            .collect();
        format!(
            "leader(gen={}, prop={}, zero={}, size={}) pending={} nodes=[{}]",
            s.leader.generation(),
            s.leader.propagation(),
            s.leader.zero_count(),
            s.leader.gen_size(),
            s.pending,
            nodes.join(" ")
        )
    }
}

/// Replaces `words` (in place, allocation-free) with its lexicographic
/// minimum over the dihedral group — all rotations of the original and of
/// the reversed sequence, the automorphisms of the ring.
fn dihedral_min(words: &mut [u16]) {
    let n = words.len();
    let mut orig = [0u16; 8];
    orig[..n].copy_from_slice(words);
    let mut rev = orig;
    rev[..n].reverse();
    let mut candidate = [0u16; 8];
    for base in [orig, rev] {
        for shift in 0..n {
            for (i, slot) in candidate[..n].iter_mut().enumerate() {
                *slot = base[(i + shift) % n];
            }
            // `words` always holds the best candidate seen so far (it
            // starts as `orig`, the shift-0 candidate of the first base).
            if candidate[..n] < *words {
                words.copy_from_slice(&candidate[..n]);
            }
        }
    }
}

/// The four checked properties of the leader protocol (plus two
/// sanity/reachability probes).
pub fn leader_properties() -> Vec<Property<LeaderModel>> {
    vec![
        Property {
            name: "generation-monotonicity",
            check: PropertyCheck::Invariant(|pre, post| {
                for (i, (a, b)) in pre.nodes.iter().zip(&post.nodes).enumerate() {
                    if b.gen < a.gen {
                        return Err(format!("node {i} generation fell {} -> {}", a.gen, b.gen));
                    }
                }
                let lp = (pre.leader.generation(), pre.leader.propagation());
                let ln = (post.leader.generation(), post.leader.propagation());
                if ln < lp {
                    return Err(format!("leader lattice fell {lp:?} -> {ln:?}"));
                }
                Ok(())
            }),
        },
        Property {
            name: "decided-stability",
            check: PropertyCheck::Invariant(|pre, post| {
                if !pre.leader.is_terminal() {
                    return Ok(());
                }
                let cap = pre.leader.params().generation_cap;
                for (i, (a, b)) in pre.nodes.iter().zip(&post.nodes).enumerate() {
                    if a.gen >= cap && (b.gen, b.col) != (a.gen, a.col) {
                        return Err(format!(
                            "decided node {i} changed ({}, {}) -> ({}, {})",
                            a.gen, a.col, b.gen, b.col
                        ));
                    }
                }
                Ok(())
            }),
        },
        Property {
            name: "terminal-absorption",
            check: PropertyCheck::Invariant(|pre, post| {
                if pre.leader.is_terminal() && !post.leader.is_terminal() {
                    return Err("leader left its terminal state".into());
                }
                Ok(())
            }),
        },
        Property {
            name: "node-gen-bounded",
            check: PropertyCheck::Invariant(|_pre, post| {
                let lg = post.leader.generation();
                for (i, n) in post.nodes.iter().enumerate() {
                    if n.gen > lg {
                        return Err(format!("node {i} at gen {} outran leader {lg}", n.gen));
                    }
                }
                Ok(())
            }),
        },
        Property {
            name: "pocket",
            check: PropertyCheck::Reachable(|s| {
                if !s.leader.is_terminal() {
                    return false;
                }
                let cap = s.leader.params().generation_cap;
                let mut decided_col = None;
                for n in &s.nodes {
                    if n.gen >= cap {
                        match decided_col {
                            None => decided_col = Some(n.col),
                            Some(c) if c != n.col => return true,
                            Some(_) => {}
                        }
                    }
                }
                false
            }),
        },
        Property {
            name: "monochrome",
            check: PropertyCheck::Reachable(|s| s.nodes.iter().all(|n| n.col == s.nodes[0].col)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::canonical_key;

    fn oracle(n: usize, topology: CheckTopology) -> LeaderOracle {
        LeaderCheckConfig::new(n, 2, topology).oracle().unwrap()
    }

    #[test]
    fn initial_state_round_trips_through_key() {
        for topology in [CheckTopology::Complete, CheckTopology::Ring] {
            let o = oracle(4, topology);
            let init = o.initial();
            let key = canonical_key(&o, &init);
            let rep = o.decode(&key);
            assert_eq!(canonical_key(&o, &rep), key);
            assert_eq!(rep.leader, init.leader);
        }
    }

    #[test]
    fn interact_promotion_feeds_pending() {
        let o = oracle(4, CheckTopology::Complete);
        let mut s = o.initial();
        // Two-choices: samples agree at gen 0, leader gen 1, prop closed;
        // node 0 needs a refreshed view first (line 5 guard).
        s = o.step(&s, &LeaderAction::Interact { v: 0, a: 1, b: 2 });
        let s2 = o.step(&s, &LeaderAction::Interact { v: 0, a: 1, b: 2 });
        assert_eq!(s2.nodes[0].gen, 1);
        assert_eq!(s2.pending, 1);
    }

    #[test]
    fn deliver_gen_births_and_clears_pending() {
        let o = oracle(4, CheckTopology::Complete);
        let mut s = o.initial();
        // Promote nodes 0 and 1 into generation 1 (threshold is 2); the
        // repeated sample (2, 2) matches the engine's with-replacement
        // complete-graph sampler.
        for v in [0, 1] {
            s = o.step(&s, &LeaderAction::Interact { v, a: 2, b: 2 });
            s = o.step(&s, &LeaderAction::Interact { v, a: 2, b: 2 });
        }
        assert_eq!(s.pending, 2);
        s = o.step(&s, &LeaderAction::DeliverGen);
        assert_eq!(s.leader.generation(), 1);
        assert_eq!(s.pending, 1);
        s = o.step(&s, &LeaderAction::DeliverGen);
        assert_eq!(s.leader.generation(), 2, "threshold 2 births generation 2");
        assert_eq!(s.pending, 0, "birth makes leftovers stale");
    }

    #[test]
    fn complete_canonicalization_sorts_nodes() {
        let o = oracle(4, CheckTopology::Complete);
        let s = o.initial();
        let mut permuted = s.clone();
        permuted.nodes.swap(0, 3);
        assert_eq!(canonical_key(&o, &s), canonical_key(&o, &permuted));
    }

    #[test]
    fn ring_canonicalization_respects_rotation_only() {
        let o = oracle(4, CheckTopology::Ring);
        let s = o.initial(); // colors [0, 0, 0, 1]
        let mut rotated = s.clone();
        rotated.nodes.rotate_left(1);
        assert_eq!(canonical_key(&o, &s), canonical_key(&o, &rotated));
        // An arbitrary transposition is NOT a ring automorphism: colors
        // [0, 0, 0, 1] vs [0, 1, 0, 0]... both lie on one dihedral orbit
        // for this tiny pattern, so use a pattern with a genuine
        // asymmetry instead.
        let mut a = s.clone();
        a.nodes[0].gen = 1;
        a.nodes[1].gen = 1;
        let mut b = s.clone();
        b.nodes[0].gen = 1;
        b.nodes[2].gen = 1;
        assert_ne!(
            canonical_key(&o, &a),
            canonical_key(&o, &b),
            "adjacent vs opposite raised pairs are distinct on the ring"
        );
    }

    #[test]
    fn dead_counters_are_normalized() {
        let o = oracle(4, CheckTopology::Complete);
        let mut s = o.initial();
        // Open propagation: zero counter differences must vanish.
        s = o.step(&s, &LeaderAction::DeliverZero);
        let t = o.step(&s, &LeaderAction::DeliverZero);
        assert!(t.leader.propagation());
        let u = o.step(&t, &LeaderAction::DeliverZero);
        assert_eq!(
            canonical_key(&o, &t),
            canonical_key(&o, &u),
            "zero counter is dead once propagation is open"
        );
    }
}
