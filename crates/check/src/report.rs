//! Protocol-level check entry points and the serializable-ish report
//! type the CLI and CI consume.

use std::fmt::Write as _;

use crate::cluster::{cluster_properties, ClusterCheckConfig};
use crate::explore::{explore, Limits, Verdict};
use crate::leader::{leader_properties, LeaderCheckConfig};
use crate::CheckTopology;

/// A property verdict stripped of generic action types (traces are
/// pre-rendered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictSummary {
    /// Invariant held on every explored edge.
    Holds,
    /// Invariant violated.
    Violated {
        /// Violation description.
        detail: String,
    },
    /// Reachability: a witness exists at the given trace length.
    Reachable {
        /// Number of scheduler actions in the minimal witness.
        depth: usize,
    },
    /// Reachability: no reachable state satisfies the predicate.
    Unreachable,
}

/// One property's outcome.
#[derive(Debug, Clone)]
pub struct PropertyReport {
    /// Property name.
    pub name: &'static str,
    /// The verdict.
    pub verdict: VerdictSummary,
    /// Rendered counterexample/witness trace, when one exists.
    pub trace: Option<String>,
}

/// The result of checking one protocol instance.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// `"leader"` or `"cluster"`.
    pub protocol: &'static str,
    /// Number of nodes.
    pub n: usize,
    /// Topology checked.
    pub topology: CheckTopology,
    /// Distinct canonical states explored.
    pub states: usize,
    /// Transitions examined.
    pub transitions: u64,
    /// Whether the whole reachable space was covered (false after hitting
    /// the state budget — verdicts then only cover the explored prefix).
    pub exhaustive: bool,
    /// Per-property outcomes.
    pub properties: Vec<PropertyReport>,
}

impl CheckReport {
    /// The report for a property by name.
    pub fn property(&self, name: &str) -> Option<&PropertyReport> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Whether every invariant held.
    pub fn invariants_hold(&self) -> bool {
        !self
            .properties
            .iter()
            .any(|p| matches!(p.verdict, VerdictSummary::Violated { .. }))
    }

    /// Renders the report; `with_traces` appends witness and
    /// counterexample traces.
    pub fn render(&self, with_traces: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "check {}: n={} topology={} states={} transitions={} {}",
            self.protocol,
            self.n,
            self.topology,
            self.states,
            self.transitions,
            if self.exhaustive {
                "(exhaustive)"
            } else {
                "(TRUNCATED — verdicts cover a prefix only)"
            }
        );
        for p in &self.properties {
            let line = match &p.verdict {
                VerdictSummary::Holds => format!("  {:<26} holds", p.name),
                VerdictSummary::Violated { detail } => {
                    format!("  {:<26} VIOLATED: {detail}", p.name)
                }
                VerdictSummary::Reachable { depth } => {
                    format!(
                        "  {:<26} reachable (minimal schedule: {depth} actions)",
                        p.name
                    )
                }
                VerdictSummary::Unreachable => format!(
                    "  {:<26} unreachable{}",
                    p.name,
                    if self.exhaustive { "" } else { " so far" }
                ),
            };
            let _ = writeln!(out, "{line}");
            if with_traces {
                if let Some(trace) = &p.trace {
                    let _ = out.write_str(trace);
                }
            }
        }
        out
    }
}

fn summarize<A>(verdicts: Vec<(&'static str, Verdict<A>)>) -> Vec<PropertyReport> {
    verdicts
        .into_iter()
        .map(|(name, v)| match v {
            Verdict::Holds => PropertyReport {
                name,
                verdict: VerdictSummary::Holds,
                trace: None,
            },
            Verdict::Violated { detail, trace } => PropertyReport {
                name,
                verdict: VerdictSummary::Violated { detail },
                trace: Some(trace.pretty),
            },
            Verdict::Reachable { trace } => PropertyReport {
                name,
                verdict: VerdictSummary::Reachable {
                    depth: trace.actions.len(),
                },
                trace: Some(trace.pretty),
            },
            Verdict::Unreachable => PropertyReport {
                name,
                verdict: VerdictSummary::Unreachable,
                trace: None,
            },
        })
        .collect()
}

/// Exhaustively checks a leader-protocol instance.
pub fn check_leader(cfg: LeaderCheckConfig, limits: &Limits) -> Result<CheckReport, String> {
    let n = cfg.n();
    let topology = cfg.topology;
    let oracle = cfg.oracle()?;
    let exploration = explore(&oracle, &leader_properties(), limits);
    Ok(CheckReport {
        protocol: "leader",
        n,
        topology,
        states: exploration.states,
        transitions: exploration.transitions,
        exhaustive: !exploration.truncated,
        properties: summarize(exploration.verdicts),
    })
}

/// Exhaustively checks a cluster-protocol instance.
pub fn check_cluster(cfg: ClusterCheckConfig, limits: &Limits) -> Result<CheckReport, String> {
    let n = cfg.n();
    let topology = cfg.topology;
    let oracle = cfg.oracle()?;
    let exploration = explore(&oracle, &cluster_properties(), limits);
    Ok(CheckReport {
        protocol: "cluster",
        n,
        topology,
        states: exploration.states,
        transitions: exploration.transitions,
        exhaustive: !exploration.truncated,
        properties: summarize(exploration.verdicts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_n4_complete_is_checkable() {
        let report = check_leader(
            LeaderCheckConfig::new(4, 2, CheckTopology::Complete),
            &Limits::default(),
        )
        .unwrap();
        assert!(report.exhaustive);
        assert!(report.invariants_hold());
        // All four core properties must be present.
        for name in [
            "generation-monotonicity",
            "decided-stability",
            "terminal-absorption",
            "pocket",
        ] {
            assert!(report.property(name).is_some(), "missing {name}");
        }
        let rendered = report.render(false);
        assert!(rendered.contains("exhaustive"));
    }

    #[test]
    fn cluster_n3_complete_is_checkable() {
        // n = 3 keeps the default lane fast (~10⁵ states) while still
        // exercising heterogeneous cluster sizes ([2, 1]) — the case
        // where canonical block sorting relabels the clusters.
        let report = check_cluster(
            ClusterCheckConfig::new(3, 2, CheckTopology::Complete),
            &Limits::default(),
        )
        .unwrap();
        assert!(report.exhaustive);
        assert!(report.invariants_hold());
        assert!(report.property("finished-conflict").is_some());
    }

    #[test]
    fn cluster_n5_lopsided_cap1_ring_is_checkable() {
        // Locks the cap-1 + unit-threshold + heterogeneous-sizes path on
        // the ring, where cluster blocks are *not* reordered by
        // canonicalization (contrast with the complete-topology test
        // above, where they are).
        let mut cfg = ClusterCheckConfig::new(5, 2, CheckTopology::Ring);
        cfg.sizes = vec![4, 1];
        cfg.generation_cap = 1;
        cfg.sleep_units = 0;
        cfg.prop_units = 0;
        let report = check_cluster(cfg, &Limits::default()).unwrap();
        assert!(report.exhaustive);
        assert!(report.invariants_hold());
        assert!(matches!(
            report.property("finished-conflict").unwrap().verdict,
            VerdictSummary::Reachable { .. }
        ));
    }

    #[test]
    #[ignore = "tier-2: ~10⁶ states; run with `cargo test -- --ignored`"]
    fn cluster_n4_complete_is_checkable() {
        let report = check_cluster(
            ClusterCheckConfig::new(4, 2, CheckTopology::Complete),
            &Limits::default(),
        )
        .unwrap();
        assert!(report.exhaustive);
        assert!(report.invariants_hold());
        assert!(report.property("finished-conflict").is_some());
    }

    #[test]
    fn invalid_instances_are_rejected() {
        assert!(check_leader(
            LeaderCheckConfig::new(20, 2, CheckTopology::Complete),
            &Limits::default(),
        )
        .is_err());
        let mut cfg = ClusterCheckConfig::new(6, 2, CheckTopology::Complete);
        cfg.sizes = vec![5, 5];
        assert!(check_cluster(cfg, &Limits::default()).is_err());
    }
}
