//! Exhaustive model of the decentralized cluster protocol
//! (Algorithms 4–5), for the consensus phase.
//!
//! The model starts where clustering ends: every node belongs to a
//! consensus-mode cluster with a live [`ClusterLeaderState`]. The
//! clustering phase itself (filling/pausing/accepting windows) is a
//! performance mechanism with no bearing on the safety properties checked
//! here, and modeling it would square the state space.
//!
//! As in the leader model, the checker owns no protocol rules: member
//! updates go through [`decide_member`] / [`finished_exchange`] and
//! leaders through [`ClusterLeaderState`]'s own `on_zero` / `on_promoted`
//! / `merge_from` — the exact functions the event-driven engine calls.
//! Scheduler actions:
//!
//! * `MemberZero { cluster }` — a member 0-signal reaches the cluster's
//!   leader (members tick forever; enabled whenever observable, i.e. the
//!   leader is not yet propagating).
//! * `DeliverPromoted { cluster }` — one in-flight promotion signal for
//!   the leader's *current* generation arrives. The same
//!   single-counter argument as in the leader model applies per cluster;
//!   the counter resets when the generation advances (organic birth or
//!   lattice merge), which is exactly when outstanding signals go stale.
//! * `Interact { v, s1, s2, s3 }` — node `v` completes an interaction:
//!   finished-flag exchange first, then the leader lattice sync between
//!   `v`'s cluster and `s3`'s cluster, then the member promotion rule
//!   against the *post-sync* observed leader — the engine's exact order.
//!
//! Canonicalization on the complete graph sorts members within each
//! cluster and cluster blocks among each other (blocks embed the cluster
//! cardinality, and all leader thresholds are derived from cardinality,
//! so equal blocks are genuinely isomorphic). On the ring no node
//! symmetry is exploited (cluster segments break most of the dihedral
//! group; identity is always sound).

use std::fmt;

use plurality_core::cluster::{
    decide_member, finished_exchange, ClusterLeaderParams, ClusterLeaderState, ClusterPhase,
    FinishedExchange, MemberDecision, MemberSample, MemberView,
};

use crate::explore::{Property, PropertyCheck, StepOracle};
use crate::CheckTopology;

/// Instance description for a cluster-protocol check.
#[derive(Debug, Clone)]
pub struct ClusterCheckConfig {
    /// Cluster cardinalities; nodes are assigned contiguously in order.
    pub sizes: Vec<usize>,
    /// Initial color per node (`init.len()` must equal the size sum).
    pub init: Vec<u32>,
    /// Number of opinions.
    pub k: u32,
    /// Communication topology (over the *global* node indices).
    pub topology: CheckTopology,
    /// Maximum generation.
    pub generation_cap: u32,
    /// Sleep threshold per unit of cardinality
    /// (`sleep_threshold = card · sleep_units`).
    pub sleep_units: u64,
    /// Additional propagation delay per unit of cardinality
    /// (`prop_threshold = sleep_threshold + card · prop_units`).
    pub prop_units: u64,
}

impl ClusterCheckConfig {
    /// A standard small instance: two clusters of `⌈n/2⌉` and `⌊n/2⌋`
    /// nodes, a color-0 majority of `n/2 + 1`, generation cap 2, unit
    /// thresholds.
    pub fn new(n: usize, k: u32, topology: CheckTopology) -> Self {
        let majority = n / 2 + 1;
        let mut init = vec![0u32; n];
        for (i, slot) in init.iter_mut().enumerate().skip(majority) {
            *slot = 1 + ((i - majority) as u32 % (k.max(2) - 1));
        }
        Self {
            sizes: vec![n.div_ceil(2), n / 2],
            init,
            k,
            topology,
            generation_cap: 2,
            sleep_units: 1,
            prop_units: 1,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.init.len()
    }

    /// The leader thresholds for a cluster of the given cardinality —
    /// every block of equal cardinality shares them, which is what makes
    /// sorted-block canonicalization sound.
    pub fn params_for(&self, card: usize) -> ClusterLeaderParams {
        let sleep = (card as u64 * self.sleep_units).max(1);
        ClusterLeaderParams {
            sleep_threshold: sleep,
            prop_threshold: sleep + (card as u64 * self.prop_units).max(1),
            gen_size_threshold: (card as u64).div_ceil(2),
            generation_cap: self.generation_cap,
        }
    }

    /// Validates instance bounds for the canonical encoding.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if !(2..=8).contains(&n) {
            return Err(format!("n = {n} out of the checkable range 2..=8"));
        }
        if self.topology == CheckTopology::Ring && n < 3 {
            return Err("ring topology needs n >= 3".into());
        }
        if self.sizes.is_empty() || self.sizes.contains(&0) {
            return Err("cluster sizes must be non-empty and positive".into());
        }
        if self.sizes.iter().sum::<usize>() != n {
            return Err(format!(
                "cluster sizes {:?} do not sum to n = {n}",
                self.sizes
            ));
        }
        if !(2..=15).contains(&self.k) {
            return Err(format!("k = {} out of range 2..=15", self.k));
        }
        if let Some(c) = self.init.iter().find(|c| **c >= self.k) {
            return Err(format!("initial color {c} out of range 0..{}", self.k));
        }
        if !(1..=15).contains(&self.generation_cap) {
            return Err(format!(
                "generation cap {} out of range 1..=15",
                self.generation_cap
            ));
        }
        for &card in &self.sizes {
            let p = self.params_for(card);
            if p.prop_threshold > 250 {
                return Err(format!(
                    "prop threshold {} for cardinality {card} exceeds the u8 encoding",
                    p.prop_threshold
                ));
            }
        }
        Ok(())
    }

    /// Builds the oracle, validating first.
    pub fn oracle(self) -> Result<ClusterOracle, String> {
        self.validate()?;
        let n = self.n();
        let neighbors = self.topology.neighbor_sets(n);
        // `locs` must describe the layout of *decoded* states. Under the
        // complete topology canonicalization sorts cluster blocks, and the
        // leading block byte is the cardinality — so decoded states always
        // carry their cardinalities in ascending order, whatever `sizes`
        // says. Ring states are never reordered.
        let mut layout = self.sizes.clone();
        if self.topology == CheckTopology::Complete {
            layout.sort_unstable();
        }
        let mut locs = Vec::with_capacity(n);
        for (ci, &card) in layout.iter().enumerate() {
            for mi in 0..card {
                locs.push((ci as u8, mi as u8));
            }
        }
        Ok(ClusterOracle {
            cfg: self,
            neighbors,
            locs,
        })
    }
}

/// One cluster member's full state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Member {
    /// Own generation.
    pub gen: u32,
    /// Own color.
    pub col: u32,
    /// Leader generation stored at the last communication.
    pub stored_gen: u32,
    /// Leader phase state stored at the last communication (0 before any).
    pub stored_phase: u8,
    /// Finished flag (line 20 / lines 5–7 of Algorithm 4).
    pub finished: bool,
}

/// Maximum checkable instance size (shared by the canonical encoding's
/// stack buffers).
const MAX_NODES: usize = 8;

/// Fixed-capacity inline member list. The explorer clones a full state on
/// every examined transition (hundreds of millions per instance), so
/// member storage must not live on the heap. Derefs to `[Member]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberVec {
    len: u8,
    buf: [Member; MAX_NODES],
}

impl MemberVec {
    const EMPTY: Member = Member {
        gen: 0,
        col: 0,
        stored_gen: 0,
        stored_phase: 0,
        finished: false,
    };

    /// An empty list.
    pub fn new() -> Self {
        Self {
            len: 0,
            buf: [Self::EMPTY; MAX_NODES],
        }
    }

    /// Appends a member; panics past the checkable capacity of 8.
    pub fn push(&mut self, m: Member) {
        self.buf[self.len as usize] = m;
        self.len += 1;
    }
}

impl Default for MemberVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for MemberVec {
    type Target = [Member];

    fn deref(&self) -> &[Member] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::DerefMut for MemberVec {
    fn deref_mut(&mut self) -> &mut [Member] {
        &mut self.buf[..self.len as usize]
    }
}

impl FromIterator<Member> for MemberVec {
    fn from_iter<I: IntoIterator<Item = Member>>(iter: I) -> Self {
        let mut v = Self::new();
        for m in iter {
            v.push(m);
        }
        v
    }
}

/// One cluster: its leader, its members, and its in-flight promotion
/// signals.
#[derive(Clone)]
pub struct ClusterUnit {
    /// The leader (the engine's own state machine).
    pub leader: ClusterLeaderState,
    /// In-flight promotion signals for the leader's current generation.
    pub pending: u8,
    /// The members, in global-index order.
    pub members: MemberVec,
}

/// A full configuration of the modeled system.
#[derive(Clone)]
pub struct ClusterModel {
    /// The clusters; global node `v` lives in the cluster containing the
    /// `v`-th member in concatenation order.
    pub clusters: Vec<ClusterUnit>,
}

impl ClusterModel {
    /// Locates global node index `v` as `(cluster, member)` indices.
    pub fn locate(&self, v: usize) -> (usize, usize) {
        let mut at = v;
        for (ci, c) in self.clusters.iter().enumerate() {
            if at < c.members.len() {
                return (ci, at);
            }
            at -= c.members.len();
        }
        panic!("node index {v} out of range");
    }

    /// The member at global index `v`.
    pub fn member(&self, v: usize) -> &Member {
        let (ci, mi) = self.locate(v);
        &self.clusters[ci].members[mi]
    }

    #[cfg(test)]
    fn member_mut(&mut self, v: usize) -> &mut Member {
        let (ci, mi) = self.locate(v);
        &mut self.clusters[ci].members[mi]
    }

    /// Iterates members in global-index order.
    pub fn members(&self) -> impl Iterator<Item = &Member> {
        self.clusters.iter().flat_map(|c| c.members.iter())
    }
}

/// One scheduler choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAction {
    /// A member 0-signal arrives at the cluster's leader.
    MemberZero {
        /// Receiving cluster.
        cluster: u8,
    },
    /// A pending promotion signal (for the current generation) arrives.
    DeliverPromoted {
        /// Receiving cluster.
        cluster: u8,
    },
    /// Node `v` completes an interaction with samples `s1, s2, s3`.
    Interact {
        /// The initiating node.
        v: u8,
        /// First sampled node (opinion line).
        s1: u8,
        /// Second sampled node (opinion line).
        s2: u8,
        /// Third sampled node (the leader-observation line).
        s3: u8,
    },
}

impl fmt::Display for ClusterAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterAction::MemberZero { cluster } => {
                write!(f, "deliver 0-signal to cluster {cluster}")
            }
            ClusterAction::DeliverPromoted { cluster } => {
                write!(f, "deliver promotion signal to cluster {cluster}")
            }
            ClusterAction::Interact { v, s1, s2, s3 } => {
                write!(f, "node {v} interacts with samples ({s1}, {s2}, {s3})")
            }
        }
    }
}

/// The cluster-protocol [`StepOracle`].
pub struct ClusterOracle {
    cfg: ClusterCheckConfig,
    neighbors: Vec<Vec<u8>>,
    /// Global node index → (cluster, member) — fixed by `sizes`, so the
    /// hot path never walks the cluster list.
    locs: Vec<(u8, u8)>,
}

/// Maximum encoded block length: 6 header bytes plus one `u16` word per
/// member.
const MAX_BLOCK: usize = 6 + 2 * MAX_NODES;

fn phase_from_state(state: u8) -> ClusterPhase {
    match state {
        1 => ClusterPhase::TwoChoices,
        2 => ClusterPhase::Sleeping,
        3 => ClusterPhase::Propagation,
        other => panic!("invalid phase state {other}"),
    }
}

impl ClusterOracle {
    /// The instance configuration.
    pub fn config(&self) -> &ClusterCheckConfig {
        &self.cfg
    }

    #[inline]
    fn mem<'a>(&self, st: &'a ClusterModel, v: usize) -> &'a Member {
        let (ci, mi) = self.locs[v];
        &st.clusters[ci as usize].members[mi as usize]
    }

    #[inline]
    fn mem_mut<'a>(&self, st: &'a mut ClusterModel, v: usize) -> &'a mut Member {
        let (ci, mi) = self.locs[v];
        &mut st.clusters[ci as usize].members[mi as usize]
    }

    fn pack_member(m: &Member) -> u16 {
        ((m.gen as u16) << 12)
            | ((m.col as u16) << 8)
            | ((m.stored_gen as u16) << 4)
            | ((u16::from(m.stored_phase)) << 1)
            | u16::from(m.finished)
    }

    fn unpack_member(word: u16) -> Member {
        Member {
            gen: u32::from(word >> 12),
            col: u32::from((word >> 8) & 0xf),
            stored_gen: u32::from((word >> 4) & 0xf),
            stored_phase: ((word >> 1) & 0x7) as u8,
            finished: word & 1 == 1,
        }
    }

    /// Encodes one cluster as a block into `out`; members are pre-packed
    /// words in the order the caller wants them kept. Returns the block
    /// length.
    fn encode_block(&self, unit: &ClusterUnit, words: &[u16], out: &mut [u8; MAX_BLOCK]) -> usize {
        let cap = self.cfg.generation_cap;
        let leader = &unit.leader;
        let at_cap = leader.generation() >= cap;
        let tick_norm = if leader.phase() == ClusterPhase::Propagation {
            0
        } else {
            leader.tick_count() as u8
        };
        out[0] = words.len() as u8;
        out[1] = leader.generation() as u8;
        out[2] = leader.phase().as_state();
        out[3] = tick_norm;
        out[4] = if at_cap { 0 } else { leader.gen_size() as u8 };
        out[5] = if at_cap { 0 } else { unit.pending };
        for (i, w) in words.iter().enumerate() {
            out[6 + 2 * i..8 + 2 * i].copy_from_slice(&w.to_be_bytes());
        }
        6 + 2 * words.len()
    }

    /// Rebuilds a leader in state `(gen, phase, tick, size)` purely
    /// through its public transitions, mirroring the leader-model replay.
    fn replay_leader(
        &self,
        card: usize,
        gen: u32,
        phase: ClusterPhase,
        tick: u64,
        size: u64,
    ) -> ClusterLeaderState {
        let params = self.cfg.params_for(card);
        let mut leader = ClusterLeaderState::new(params);
        if (gen, phase) > (1, ClusterPhase::TwoChoices) {
            leader.merge_from(gen, phase);
        }
        let extra = match phase {
            ClusterPhase::TwoChoices => tick,
            ClusterPhase::Sleeping => tick - params.sleep_threshold,
            ClusterPhase::Propagation => 0,
        };
        for _ in 0..extra {
            leader.on_zero();
        }
        for _ in 0..size {
            leader.on_promoted(gen);
        }
        debug_assert_eq!(leader.generation(), gen);
        debug_assert_eq!(leader.phase(), phase);
        leader
    }
}

impl StepOracle for ClusterOracle {
    type State = ClusterModel;
    type Action = ClusterAction;

    fn initial(&self) -> ClusterModel {
        let mut init = self.cfg.init.iter().copied();
        let clusters = self
            .cfg
            .sizes
            .iter()
            .map(|&card| ClusterUnit {
                leader: ClusterLeaderState::new(self.cfg.params_for(card)),
                pending: 0,
                members: (0..card)
                    .map(|_| Member {
                        gen: 0,
                        col: init.next().expect("init covers all nodes"),
                        stored_gen: 0,
                        stored_phase: 0,
                        finished: false,
                    })
                    .collect(),
            })
            .collect();
        ClusterModel { clusters }
    }

    fn actions(&self, s: &ClusterModel, out: &mut Vec<ClusterAction>) {
        for (ci, c) in s.clusters.iter().enumerate() {
            if c.leader.phase() != ClusterPhase::Propagation {
                out.push(ClusterAction::MemberZero { cluster: ci as u8 });
            }
            if c.pending > 0 && c.leader.generation() < self.cfg.generation_cap {
                out.push(ClusterAction::DeliverPromoted { cluster: ci as u8 });
            }
        }
        if self.cfg.topology == CheckTopology::Complete {
            // Symmetry-reduced enumeration. On the complete graph, nodes
            // with equal member state *in the same cluster* are
            // interchangeable: the permutation swapping them fixes every
            // cluster (and therefore every leader) and fixes the state up
            // to canonical equivalence. Two interactions whose (v, s1,
            // s2, s3) agree pairwise on (cluster, member state) AND on
            // the identity-coincidence pattern (which positions are the
            // same concrete node — a Push flips a twice-sampled node once
            // but two distinct equal-state nodes twice) are therefore
            // related by such an automorphism and have canonically equal
            // successors. Emit one representative per class.
            let n = self.cfg.n();
            let mut class = [0u32; MAX_NODES];
            let mut at = 0;
            for (ci, c) in s.clusters.iter().enumerate() {
                for m in c.members.iter() {
                    class[at] = ((ci as u32) << 16) | u32::from(Self::pack_member(m));
                    at += 1;
                }
            }
            let mut combos: Vec<(u128, ClusterAction)> = Vec::with_capacity(n * n * n * n);
            for v in 0..n {
                for s1 in 0..n {
                    for s2 in 0..n {
                        for s3 in 0..n {
                            let samples = [s1, s2, s3];
                            let mut key = u128::from(class[v]);
                            for (i, &sx) in samples.iter().enumerate() {
                                let eq = if sx == v {
                                    0u32
                                } else if let Some(j) = (0..i).find(|&j| samples[j] == sx) {
                                    1 + j as u32
                                } else {
                                    // Fresh node, interchangeable with any
                                    // other fresh node of the same class.
                                    3
                                };
                                key = (key << 22) | u128::from((eq << 19) | class[sx]);
                            }
                            combos.push((
                                key,
                                ClusterAction::Interact {
                                    v: v as u8,
                                    s1: s1 as u8,
                                    s2: s2 as u8,
                                    s3: s3 as u8,
                                },
                            ));
                        }
                    }
                }
            }
            combos.sort_unstable_by_key(|c| c.0);
            combos.dedup_by_key(|c| c.0);
            out.extend(combos.into_iter().map(|c| c.1));
        } else {
            for (v, nbrs) in self.neighbors.iter().enumerate() {
                for &s1 in nbrs {
                    for &s2 in nbrs {
                        for &s3 in nbrs {
                            out.push(ClusterAction::Interact {
                                v: v as u8,
                                s1,
                                s2,
                                s3,
                            });
                        }
                    }
                }
            }
        }
    }

    fn step_into(&self, s: &ClusterModel, action: &ClusterAction, st: &mut ClusterModel) {
        st.clone_from(s);
        match *action {
            ClusterAction::MemberZero { cluster } => {
                st.clusters[cluster as usize].leader.on_zero();
            }
            ClusterAction::DeliverPromoted { cluster } => {
                let unit = &mut st.clusters[cluster as usize];
                unit.pending -= 1;
                let g = unit.leader.generation();
                if unit.leader.on_promoted(g).is_some() {
                    // A birth: every still-pending signal is now stale.
                    unit.pending = 0;
                }
            }
            ClusterAction::Interact { v, s1, s2, s3 } => {
                let (v, s1, s2, s3) = (v as usize, s1 as usize, s2 as usize, s3 as usize);
                let line = [s1, s2, s3];
                let line_finished = line.map(|x| self.mem(st, x).finished);
                // Lines 5–7: finished-flag exchange ends the interaction.
                match finished_exchange(self.mem(st, v).finished, &line_finished) {
                    FinishedExchange::Push => {
                        let col = self.mem(st, v).col;
                        for x in line {
                            // Live re-check: a repeated sample flips once.
                            let m = self.mem_mut(st, x);
                            if !m.finished {
                                m.finished = true;
                                m.col = col;
                            }
                        }
                        return;
                    }
                    FinishedExchange::Pull { from } => {
                        let col = self.mem(st, line[from]).col;
                        let m = self.mem_mut(st, v);
                        m.finished = true;
                        m.col = col;
                        return;
                    }
                    FinishedExchange::None => {}
                }

                let own = self.locs[v].0 as usize;
                let sampled = self.locs[s3].0 as usize;
                // Leader lattice sync on the *pre-merge* public states
                // (the engine reads both before merging either).
                if own != sampled {
                    let a_pub = {
                        let l = &st.clusters[own].leader;
                        (l.generation(), l.phase())
                    };
                    let b_pub = {
                        let l = &st.clusters[sampled].leader;
                        (l.generation(), l.phase())
                    };
                    for (ci, (peer_gen, peer_phase)) in [(own, b_pub), (sampled, a_pub)] {
                        let unit = &mut st.clusters[ci];
                        let pre_gen = unit.leader.generation();
                        unit.leader.merge_from(peer_gen, peer_phase);
                        if unit.leader.generation() > pre_gen {
                            // Generation advanced: outstanding promotion
                            // signals for the old generation are stale.
                            unit.pending = 0;
                        }
                    }
                }

                let (l_gen, l_phase) = {
                    let l = &st.clusters[sampled].leader;
                    (l.generation(), l.phase())
                };
                let view = {
                    let m = self.mem(st, v);
                    MemberView {
                        gen: m.gen,
                        col: m.col,
                        stored_gen: m.stored_gen,
                        stored_phase: m.stored_phase,
                    }
                };
                let sample = |x: usize| {
                    let m = self.mem(st, x);
                    MemberSample {
                        gen: m.gen,
                        col: m.col,
                    }
                };
                match decide_member(
                    view,
                    sample(s1),
                    sample(s2),
                    l_gen,
                    l_phase,
                    self.cfg.generation_cap,
                ) {
                    MemberDecision::Promote {
                        gen,
                        col,
                        increased,
                        finished,
                    } => {
                        {
                            let m = self.mem_mut(st, v);
                            m.gen = gen;
                            m.col = col;
                            if finished {
                                m.finished = true;
                            }
                        }
                        let unit = &mut st.clusters[own];
                        // Observable only while `gen` is the own leader's
                        // current generation and a birth is still possible
                        // (the engine's `!cluster_absorbed` gate is implied).
                        if increased
                            && gen == unit.leader.generation()
                            && unit.leader.generation() < self.cfg.generation_cap
                        {
                            let cap = unit.leader.params().gen_size_threshold.min(200) as u8;
                            unit.pending = (unit.pending + 1).min(cap);
                        }
                    }
                    MemberDecision::Refresh { gen, phase } => {
                        let m = self.mem_mut(st, v);
                        m.stored_gen = gen;
                        m.stored_phase = phase;
                    }
                }
            }
        }
    }

    fn canonicalize(&self, s: &ClusterModel, key: &mut Vec<u8>) {
        key.clear();
        let sort = self.cfg.topology == CheckTopology::Complete;
        let mut blocks = [[0u8; MAX_BLOCK]; MAX_NODES];
        let mut lens = [0usize; MAX_NODES];
        for ((unit, block), len) in s.clusters.iter().zip(&mut blocks).zip(&mut lens) {
            let mut words = [0u16; MAX_NODES];
            let m = unit.members.len();
            for (w, mem) in words.iter_mut().zip(unit.members.iter()) {
                *w = Self::pack_member(mem);
            }
            let words = &mut words[..m];
            if sort {
                words.sort_unstable();
            }
            *len = self.encode_block(unit, words, block);
        }
        let k = s.clusters.len();
        let mut order = [0usize, 1, 2, 3, 4, 5, 6, 7];
        if sort {
            order[..k].sort_unstable_by(|&a, &b| blocks[a][..lens[a]].cmp(&blocks[b][..lens[b]]));
        }
        for &bi in &order[..k] {
            key.extend_from_slice(&blocks[bi][..lens[bi]]);
        }
    }

    fn decode(&self, key: &[u8]) -> ClusterModel {
        let mut clusters = Vec::new();
        let mut at = 0;
        while at < key.len() {
            let card = key[at] as usize;
            let gen = u32::from(key[at + 1]);
            let phase = phase_from_state(key[at + 2]);
            let tick = u64::from(key[at + 3]);
            let size = u64::from(key[at + 4]);
            let pending = key[at + 5];
            let leader = self.replay_leader(card, gen, phase, tick, size);
            let members = key[at + 6..at + 6 + 2 * card]
                .chunks_exact(2)
                .map(|c| Self::unpack_member(u16::from_be_bytes([c[0], c[1]])))
                .collect();
            clusters.push(ClusterUnit {
                leader,
                pending,
                members,
            });
            at += 6 + 2 * card;
        }
        ClusterModel { clusters }
    }

    fn describe(&self, s: &ClusterModel) -> String {
        let blocks: Vec<String> = s
            .clusters
            .iter()
            .enumerate()
            .map(|(ci, unit)| {
                let members: Vec<String> = unit
                    .members
                    .iter()
                    .map(|m| format!("g{}c{}{}", m.gen, m.col, if m.finished { "!" } else { "" }))
                    .collect();
                format!(
                    "C{ci}(gen={}, ph={}, tick={}, size={}, pending={})[{}]",
                    unit.leader.generation(),
                    unit.leader.phase().as_state(),
                    unit.leader.tick_count(),
                    unit.leader.gen_size(),
                    unit.pending,
                    members.join(" ")
                )
            })
            .collect();
        blocks.join(" ")
    }
}

/// The four checked properties of the cluster protocol (plus two
/// sanity/reachability probes).
pub fn cluster_properties() -> Vec<Property<ClusterModel>> {
    vec![
        Property {
            name: "generation-monotonicity",
            check: PropertyCheck::Invariant(|pre, post| {
                for (i, (a, b)) in pre.members().zip(post.members()).enumerate() {
                    if b.gen < a.gen {
                        return Err(format!("node {i} generation fell {} -> {}", a.gen, b.gen));
                    }
                }
                for (ci, (a, b)) in pre.clusters.iter().zip(&post.clusters).enumerate() {
                    let la = (a.leader.generation(), a.leader.phase());
                    let lb = (b.leader.generation(), b.leader.phase());
                    if lb < la {
                        return Err(format!("cluster {ci} lattice fell {la:?} -> {lb:?}"));
                    }
                }
                Ok(())
            }),
        },
        Property {
            name: "decided-stability",
            check: PropertyCheck::Invariant(|pre, post| {
                for (i, (a, b)) in pre.members().zip(post.members()).enumerate() {
                    if a.finished {
                        if !b.finished {
                            return Err(format!("node {i} revoked its finished flag"));
                        }
                        if (b.gen, b.col) != (a.gen, a.col) {
                            return Err(format!(
                                "finished node {i} changed ({}, {}) -> ({}, {})",
                                a.gen, a.col, b.gen, b.col
                            ));
                        }
                    }
                }
                Ok(())
            }),
        },
        Property {
            name: "terminal-absorption",
            check: PropertyCheck::Invariant(|pre, post| {
                for (ci, (a, b)) in pre.clusters.iter().zip(&post.clusters).enumerate() {
                    if a.leader.is_terminal() && !b.leader.is_terminal() {
                        return Err(format!("cluster {ci} leader left its terminal state"));
                    }
                }
                Ok(())
            }),
        },
        Property {
            name: "member-gen-bounded",
            check: PropertyCheck::Invariant(|_pre, post| {
                let max_leader = post
                    .clusters
                    .iter()
                    .map(|c| c.leader.generation())
                    .max()
                    .unwrap_or(0);
                for (i, m) in post.members().enumerate() {
                    if m.gen > max_leader {
                        return Err(format!(
                            "node {i} at gen {} outran every leader (max {max_leader})",
                            m.gen
                        ));
                    }
                }
                Ok(())
            }),
        },
        Property {
            name: "finished-conflict",
            check: PropertyCheck::Reachable(|s| {
                let mut decided_col = None;
                for m in s.members() {
                    if m.finished {
                        match decided_col {
                            None => decided_col = Some(m.col),
                            Some(c) if c != m.col => return true,
                            Some(_) => {}
                        }
                    }
                }
                false
            }),
        },
        Property {
            name: "monochrome",
            check: PropertyCheck::Reachable(|s| {
                let mut cols = s.members().map(|m| m.col);
                let first = cols.next();
                first.is_some_and(|f| cols.all(|c| c == f))
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::canonical_key;

    fn oracle(n: usize, topology: CheckTopology) -> ClusterOracle {
        ClusterCheckConfig::new(n, 2, topology).oracle().unwrap()
    }

    #[test]
    fn initial_state_round_trips_through_key() {
        for topology in [CheckTopology::Complete, CheckTopology::Ring] {
            let o = oracle(5, topology);
            let init = o.initial();
            let key = canonical_key(&o, &init);
            let rep = o.decode(&key);
            assert_eq!(canonical_key(&o, &rep), key);
        }
    }

    #[test]
    fn locate_spans_cluster_boundaries() {
        let o = oracle(5, CheckTopology::Complete); // sizes [3, 2]
        let s = o.initial();
        assert_eq!(s.locate(0), (0, 0));
        assert_eq!(s.locate(2), (0, 2));
        assert_eq!(s.locate(3), (1, 0));
        assert_eq!(s.locate(4), (1, 1));
    }

    #[test]
    fn push_flags_the_whole_line_once() {
        let o = oracle(4, CheckTopology::Complete);
        let mut s = o.initial();
        s.member_mut(0).finished = true;
        s.member_mut(0).col = 1;
        let t = o.step(
            &s,
            &ClusterAction::Interact {
                v: 0,
                s1: 1,
                s2: 1,
                s3: 2,
            },
        );
        assert!(t.member(1).finished);
        assert_eq!(t.member(1).col, 1, "pushed nodes adopt the pusher's color");
        assert!(t.member(2).finished);
        assert!(!t.member(3).finished);
    }

    #[test]
    fn pull_adopts_the_first_finished_sample() {
        let o = oracle(4, CheckTopology::Complete);
        let mut s = o.initial();
        s.member_mut(2).finished = true;
        s.member_mut(2).col = 1;
        let t = o.step(
            &s,
            &ClusterAction::Interact {
                v: 0,
                s1: 1,
                s2: 2,
                s3: 3,
            },
        );
        assert!(t.member(0).finished);
        assert_eq!(t.member(0).col, 1);
        assert!(!t.member(1).finished, "pull does not spread to samples");
    }

    #[test]
    fn promotion_feeds_pending_and_birth_clears_it() {
        let o = oracle(4, CheckTopology::Complete); // sizes [2,2], gen_size 1
        let mut s = o.initial();
        // Member 0, in sync with its gen-1 two-choices leader after one
        // refresh, promotes via two-choices on agreeing gen-0 samples.
        let act = ClusterAction::Interact {
            v: 0,
            s1: 1,
            s2: 1,
            s3: 1,
        };
        s = o.step(&s, &act); // refresh stored copy
        s = o.step(&s, &act); // two-choices promotion
        assert_eq!(s.member(0).gen, 1);
        assert_eq!(s.clusters[0].pending, 1);
        let t = o.step(&s, &ClusterAction::DeliverPromoted { cluster: 0 });
        assert_eq!(t.clusters[0].leader.generation(), 2, "gen_size 1 births");
        assert_eq!(t.clusters[0].pending, 0);
    }

    #[test]
    fn interact_syncs_leaders_and_drops_stale_pending() {
        let o = oracle(4, CheckTopology::Complete);
        let mut s = o.initial();
        // Advance cluster 1's leader to (2, TwoChoices) and give cluster 0
        // a pending signal for generation 1.
        s.clusters[1].leader.merge_from(2, ClusterPhase::TwoChoices);
        s.clusters[0].pending = 1;
        // Node 0 samples node 2 (cluster 1) on the observation line.
        let t = o.step(
            &s,
            &ClusterAction::Interact {
                v: 0,
                s1: 1,
                s2: 1,
                s3: 2,
            },
        );
        assert_eq!(t.clusters[0].leader.generation(), 2, "lattice merged");
        assert_eq!(t.clusters[0].pending, 0, "stale promotion dropped");
    }

    #[test]
    fn complete_canonicalization_sorts_equal_blocks() {
        let o = oracle(4, CheckTopology::Complete); // sizes [2, 2]
        let mut a = o.initial(); // colors [0, 0, 0, 1]
                                 // Mirror: put the odd color in cluster 0 instead.
        let mut b = o.initial();
        a.member_mut(3).col = 1;
        b.member_mut(3).col = 0;
        b.member_mut(1).col = 1;
        assert_eq!(canonical_key(&o, &a), canonical_key(&o, &b));
    }

    #[test]
    fn ring_canonicalization_is_identity() {
        let o = oracle(4, CheckTopology::Ring);
        let mut a = o.initial();
        let mut b = o.initial();
        a.member_mut(0).col = 1;
        a.member_mut(0).gen = 0;
        b.member_mut(1).col = 1;
        b.member_mut(0).col = 0;
        assert_ne!(
            canonical_key(&o, &a),
            canonical_key(&o, &b),
            "ring keys keep node positions"
        );
    }
}
