//! Property tests for the deterministic event queue: the total order the
//! engines rely on must hold for arbitrary schedules, and the calendar
//! queue must reproduce the binary heap's pop sequence *bit-identically* —
//! including `(time, seq)` tie-breaks — on adversarial schedules.

use plurality_sim::{CalendarQueue, EventQueue, HeapQueue};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Drains both queues in lockstep, asserting identical `(time, event)`
/// pops. Event payloads are unique ids, so payload equality pins the
/// insertion-sequence tie-break, not just the timestamp order.
fn assert_drain_equal(
    cal: &mut CalendarQueue<u64>,
    heap: &mut HeapQueue<u64>,
) -> Result<(), TestCaseError> {
    loop {
        let (c, h) = (cal.pop(), heap.pop());
        prop_assert_eq!(c, h, "pop sequences diverged");
        if c.is_none() {
            return Ok(());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pops_are_sorted_by_time_then_insertion(
        times in prop::collection::vec(0.0f64..1e6, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated on tie");
            }
        }
        // Every event came out exactly once.
        let mut ids: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        prop_assert!(ids.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn interleaved_scheduling_respects_now(
        seeds in prop::collection::vec(0.0f64..100.0, 1..50),
    ) {
        // Schedule a chain where each popped event schedules a follow-up
        // strictly later; `now` must never run backwards.
        let mut q = EventQueue::new();
        for (i, &t) in seeds.iter().enumerate() {
            q.schedule(t, i as u64);
        }
        let mut last = 0.0f64;
        let mut budget = 500usize;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            if budget > 0 && id < 1_000 {
                budget -= 1;
                q.schedule_in(0.5, id + 1_000);
            }
        }
    }

    #[test]
    fn len_tracks_schedules_and_pops(
        ops in prop::collection::vec(0.0f64..10.0, 0..100),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in ops.iter().enumerate() {
            q.schedule(t, i);
            prop_assert_eq!(q.len(), i + 1);
        }
        for i in (0..ops.len()).rev() {
            q.pop();
            prop_assert_eq!(q.len(), i);
        }
        prop_assert!(q.is_empty());
    }

    // --- Calendar ≡ heap equivalence (the legacy-heap oracle) ---

    #[test]
    fn calendar_matches_heap_on_random_schedules(
        times in prop::collection::vec(0.0f64..1e4, 1..400),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(t, i as u64);
            heap.schedule(t, i as u64);
        }
        assert_drain_equal(&mut cal, &mut heap)?;
    }

    #[test]
    fn calendar_matches_heap_on_dense_ties(
        // Timestamps drawn from a tiny discrete grid: most schedules
        // collide exactly, so nearly every pop exercises the seq
        // tie-break (the Latency::Deterministic regime).
        grid in prop::collection::vec(0u8..4, 2..300),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &g) in grid.iter().enumerate() {
            let t = f64::from(g) * 0.25;
            cal.schedule(t, i as u64);
            heap.schedule(t, i as u64);
        }
        assert_drain_equal(&mut cal, &mut heap)?;
    }

    #[test]
    fn calendar_matches_heap_under_interleaved_push_pop(
        // Each op: < 1000 = schedule at now + (op/10)·0.5, ≥ 1000 = pop.
        ops in prop::collection::vec(0u16..1400, 1..600),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut next_id = 0u64;
        for op in ops {
            if op < 1000 {
                // A coarse grid keeps exact ties frequent while the
                // range spans several calendar years.
                let delay = f64::from(op / 10) * 0.5;
                cal.schedule_in(delay, next_id);
                heap.schedule_in(delay, next_id);
                next_id += 1;
            } else {
                prop_assert_eq!(cal.pop(), heap.pop(), "mid-stream pop diverged");
                prop_assert_eq!(cal.len(), heap.len());
            }
        }
        assert_drain_equal(&mut cal, &mut heap)?;
    }

    #[test]
    fn calendar_matches_heap_with_pop_before(
        times in prop::collection::vec(0.0f64..100.0, 1..200),
        limits in prop::collection::vec(0.0f64..120.0, 1..50),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(t, i as u64);
            heap.schedule(t, i as u64);
        }
        for limit in limits {
            prop_assert_eq!(cal.pop_before(limit), heap.pop_before(limit));
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
        }
        assert_drain_equal(&mut cal, &mut heap)?;
    }

    #[test]
    fn calendar_matches_heap_on_poisson_like_chains(
        // The engines' actual shape: a near-homogeneous event population
        // where every pop schedules follow-ups a small pseudo-random
        // delay ahead.
        seed in 0u64..1_000,
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = HeapQueue::new();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut rand01 = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..64u64 {
            let t = rand01() * 2.0;
            cal.schedule(t, i);
            heap.schedule(t, i);
        }
        let mut next_id = 64u64;
        for _ in 0..2_000 {
            let (c, h) = (cal.pop(), heap.pop());
            prop_assert_eq!(c, h, "chain pop diverged");
            let Some((t, _)) = c else { break };
            // Two follow-ups with small delays keep the population near-
            // homogeneous like the ticks/ops/signals mix in the engines.
            for _ in 0..2 {
                if next_id < 64 + 2 * 2_000 && rand01() < 0.55 {
                    let delay = rand01() * 0.3;
                    cal.schedule(t + delay, next_id);
                    heap.schedule(t + delay, next_id);
                    next_id += 1;
                }
            }
        }
        assert_drain_equal(&mut cal, &mut heap)?;
    }
}
