//! Property tests for the deterministic event queue: the total order the
//! engines rely on must hold for arbitrary schedules.

use plurality_sim::EventQueue;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pops_are_sorted_by_time_then_insertion(
        times in prop::collection::vec(0.0f64..1e6, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped: Vec<(f64, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated on tie");
            }
        }
        // Every event came out exactly once.
        let mut ids: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        prop_assert!(ids.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn interleaved_scheduling_respects_now(
        seeds in prop::collection::vec(0.0f64..100.0, 1..50),
    ) {
        // Schedule a chain where each popped event schedules a follow-up
        // strictly later; `now` must never run backwards.
        let mut q = EventQueue::new();
        for (i, &t) in seeds.iter().enumerate() {
            q.schedule(t, i as u64);
        }
        let mut last = 0.0f64;
        let mut budget = 500usize;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            if budget > 0 && id < 1_000 {
                budget -= 1;
                q.schedule_in(0.5, id + 1_000);
            }
        }
    }

    #[test]
    fn len_tracks_schedules_and_pops(
        ops in prop::collection::vec(0.0f64..10.0, 0..100),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in ops.iter().enumerate() {
            q.schedule(t, i);
            prop_assert_eq!(q.len(), i + 1);
        }
        for i in (0..ops.len()).rev() {
            q.pop();
            prop_assert_eq!(q.len(), i);
        }
        prop_assert!(q.is_empty());
    }
}
