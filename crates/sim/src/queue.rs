//! Deterministic future-event queue.
//!
//! The asynchronous protocols are executed as discrete-event simulations:
//! ticks, channel completions, and signal arrivals are events scheduled at
//! continuous timestamps. The queue orders events by `(time, insertion
//! sequence)`, so simultaneous events (a probability-zero occurrence with
//! continuous clocks, but possible with deterministic latencies) are resolved
//! in insertion order — making every run a pure function of the seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single scheduled entry.
#[derive(Debug, Clone)]
struct QueueEntry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for QueueEntry<E> {}

impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        // `time` is guaranteed finite by `EventQueue::schedule`.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordering events by time, breaking ties by insertion
/// order.
///
/// # Examples
///
/// ```
/// use plurality_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueueEntry<E>>,
    seq: u64,
    now: f64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: 0.0,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (zero initially). Time never runs backwards.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN/infinite or lies strictly in the past
    /// (before [`EventQueue::now`]).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "schedule: event time must be finite");
        assert!(
            time >= self.now,
            "schedule: event time {time} is before current time {}",
            self.now
        );
        let entry = QueueEntry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Schedules `event` at `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "schedule_in: delay must be a non-negative finite number, got {delay}"
        );
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3u32);
        q.schedule(1.0, 1u32);
        q.schedule(2.0, 2u32);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(1.0, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.schedule(7.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.pop();
        assert_eq!(q.now(), 7.0);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "a");
        q.pop();
        q.schedule_in(1.5, "b");
        assert_eq!(q.pop(), Some((3.5, "b")));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scheduling_nan_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(4.0, ());
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.len(), 1);
    }
}
