//! Deterministic future-event queue.
//!
//! The asynchronous protocols are executed as discrete-event simulations:
//! ticks, channel completions, and signal arrivals are events scheduled at
//! continuous timestamps. The queue orders events by `(time, insertion
//! sequence)`, so simultaneous events (a probability-zero occurrence with
//! continuous clocks, but possible with deterministic latencies) are resolved
//! in insertion order — making every run a pure function of the seed.
//!
//! Two implementations share this contract:
//!
//! * [`CalendarQueue`] — a bucketed calendar queue (Brown 1988) tuned for
//!   the near-homogeneous Poisson event populations the engines generate:
//!   O(1) amortized push and pop, lazy power-of-two bucket resizing, and
//!   the exact `(time, seq)` order of the heap (see the determinism
//!   argument on the type). This is the default [`EventQueue`].
//! * [`HeapQueue`] — the original `BinaryHeap` implementation, kept behind
//!   the `legacy-heap` cargo feature (which re-points the [`EventQueue`]
//!   alias at it) and as the reference oracle for the cross-implementation
//!   equivalence property tests in `tests/queue_properties.rs`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Always-on operation counters both queue implementations keep —
/// plain integer increments on paths that already mutate the queue, so
/// they cost nothing measurable and consume no RNG. Engines surface
/// them through their profiling hooks so `perf_snapshot` can localize a
/// regression (more pops? resize churn?) instead of only seeing wall
/// time move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueProfile {
    /// Events scheduled.
    pub pushes: u64,
    /// Events popped.
    pub pops: u64,
    /// Bucket-array resizes (always 0 for [`HeapQueue`]).
    pub resizes: u64,
}

/// One calendar-queue resize, timestamped with the simulated clock —
/// recorded only when tracing is opted in via
/// [`CalendarQueue::set_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResizeRecord {
    /// Simulated time (`now`) when the resize fired.
    pub at: f64,
    /// New bucket count.
    pub buckets: u64,
    /// New bucket width.
    pub width: f64,
}

/// The event queue used by the engines: [`CalendarQueue`] by default,
/// [`HeapQueue`] when the `legacy-heap` cargo feature is enabled. Both
/// types expose the same API and the same `(time, seq)` pop order, so the
/// alias is a drop-in switch.
#[cfg(not(feature = "legacy-heap"))]
pub type EventQueue<E> = CalendarQueue<E>;

/// The event queue used by the engines: [`CalendarQueue`] by default,
/// [`HeapQueue`] when the `legacy-heap` cargo feature is enabled. Both
/// types expose the same API and the same `(time, seq)` pop order, so the
/// alias is a drop-in switch.
#[cfg(feature = "legacy-heap")]
pub type EventQueue<E> = HeapQueue<E>;

/// A single scheduled entry of the [`HeapQueue`].
#[derive(Debug, Clone)]
struct QueueEntry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for QueueEntry<E> {}

impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        // `time` is guaranteed finite by `HeapQueue::schedule`.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A binary-heap future-event list ordering events by time, breaking ties
/// by insertion order — the pre-calendar implementation, kept as the
/// `legacy-heap` feature and as the reference oracle for the equivalence
/// property tests.
///
/// # Examples
///
/// ```
/// use plurality_sim::HeapQueue;
/// let mut q = HeapQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<QueueEntry<E>>,
    seq: u64,
    now: f64,
    profile: QueueProfile,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            profile: QueueProfile::default(),
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: 0.0,
            profile: QueueProfile::default(),
        }
    }

    /// Operation counters since construction (resizes are always 0 for
    /// the heap).
    pub fn profile(&self) -> QueueProfile {
        self.profile
    }

    /// Opt-in resize tracing: a no-op for the heap (it never resizes),
    /// kept so the [`EventQueue`] alias exposes one API.
    pub fn set_trace(&mut self, _enabled: bool) {}

    /// Drains the recorded resize log: always empty for the heap.
    pub fn take_resize_log(&mut self) -> Vec<ResizeRecord> {
        Vec::new()
    }

    /// The current simulation time: the timestamp of the last popped event
    /// or the last [`HeapQueue::advance_to`] call, whichever is later
    /// (zero initially). Time never runs backwards.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN/infinite or lies strictly in the past
    /// (before [`HeapQueue::now`]).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "schedule: event time must be finite");
        assert!(
            time >= self.now,
            "schedule: event time {time} is before current time {}",
            self.now
        );
        let entry = QueueEntry {
            time,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.profile.pushes += 1;
        self.heap.push(entry);
    }

    /// Schedules `event` at `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "schedule_in: delay must be a non-negative finite number, got {delay}"
        );
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        self.profile.pops += 1;
        Some((entry.time, entry.event))
    }

    /// Removes and returns the earliest event if its timestamp is at most
    /// `limit`; otherwise leaves the queue untouched and returns `None`.
    ///
    /// This replaces the peek-then-pop double comparison in engine drain
    /// loops with a single ordered lookup.
    pub fn pop_before(&mut self, limit: f64) -> Option<(f64, E)> {
        if self.heap.peek()?.time > limit {
            return None;
        }
        self.pop()
    }

    /// Advances the clock to `time` without popping — used by engines that
    /// interleave the queue with externally maintained event sources (the
    /// superposed Poisson tick chains), so `schedule` keeps rejecting
    /// genuinely past timestamps.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN/infinite or lies strictly in the past.
    pub fn advance_to(&mut self, time: f64) {
        assert!(time.is_finite(), "advance_to: time must be finite");
        assert!(
            time >= self.now,
            "advance_to: time {time} is before current time {}",
            self.now
        );
        self.now = time;
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Smallest bucket array the calendar queue keeps (a power of two).
const MIN_BUCKETS: usize = 16;

/// When the *average* pop scan since the last resize examines more than
/// this many buckets + entries, the width is mistuned (the live event
/// population drifted away from what was measured at the last resize) and
/// the queue retunes. A well-tuned width keeps the average near
/// `1 + TARGET_OCCUPANCY`, so this threshold only trips on genuine drift,
/// not on Poisson fluctuation of individual bucket sizes.
const SCAN_TUNE_THRESHOLD: u64 = 8;

/// Bucket width is sized so that the *front* of the event population —
/// where every pop scans — holds about this many entries per bucket:
/// `width = TARGET_OCCUPANCY × (mean sim-time gap between pops)`, since by
/// Little's law the density of pending events at the current time is one
/// per pop gap. Sizing from the pop rate rather than from the total span
/// is what makes skewed populations (exponential residence times pile
/// events near `now` with a long sparse tail) scan O(1) at the front.
const TARGET_OCCUPANCY: f64 = 2.0;

/// A measurement window triggers a retune when the width its pop rate
/// calls for differs from the width in force by more than this factor in
/// either direction — catching widths tuned during a transient (ramp-up,
/// rate shift) that have since gone stale but keep scans just under
/// [`SCAN_TUNE_THRESHOLD`].
const WIDTH_DRIFT: f64 = 1.5;

/// A single scheduled entry of the [`CalendarQueue`]. `vb` caches the
/// entry's *virtual bucket* `⌊time / width⌋` under the width in force when
/// the entry was (re-)bucketed, so the pop-time year scan compares exact
/// integers instead of re-deriving bucket years from floats.
#[derive(Debug, Clone)]
struct CalEntry<E> {
    time: f64,
    seq: u64,
    vb: u64,
    event: E,
}

/// A bucketed calendar queue (Brown 1988) with the exact `(time, seq)` pop
/// order of [`HeapQueue`].
///
/// Timestamps map to *virtual buckets* `vb = ⌊time / width⌋`; virtual
/// bucket `vb` lives in physical bucket `vb mod nbuckets` (nbuckets a
/// power of two, so the mod is a mask). A pop scans virtual buckets from a
/// cursor; if one full "year" (`nbuckets` virtual buckets) holds nothing,
/// it falls back to a direct scan of all entries. The bucket count and
/// width are retuned lazily: the array grows when occupancy exceeds 2
/// entries per bucket, shrinks below 1/8, and a resize also fires when
/// the average pop scan drifts past `SCAN_TUNE_THRESHOLD`. Each resize
/// re-derives the width from the observed pop rate
/// (`TARGET_OCCUPANCY` pop gaps per bucket), so steady-state operations
/// touch O(1) entries without any tuning input from the caller.
///
/// # Determinism
///
/// The pop order is exactly the heap's, not merely equivalent in law:
///
/// * `t ↦ (t·(1/width)) as u64` is monotone (multiplication by a positive
///   finite constant and the saturating float→int cast both preserve
///   order), so every entry in the first non-empty virtual bucket precedes
///   every entry in later ones, and *equal* timestamps always share a
///   virtual bucket — the `(time, seq)` minimum inside that bucket is the
///   global minimum, with the insertion-order tie-break intact.
/// * The cursor only ever commits to the virtual bucket of an actually
///   popped entry (never during [`CalendarQueue::peek_time`] or a
///   [`CalendarQueue::pop_before`] miss), and `schedule` rejects past
///   timestamps, so no entry can land below the cursor and be skipped.
///
/// The property tests in `tests/queue_properties.rs` assert bit-identical
/// pop sequences against [`HeapQueue`] on adversarial schedules (dense
/// ties, interleaved push/pop, resize churn).
///
/// # Examples
///
/// ```
/// use plurality_sim::CalendarQueue;
/// let mut q = CalendarQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    /// Physical buckets; length is a power of two.
    buckets: Vec<Vec<CalEntry<E>>>,
    /// `buckets.len() - 1`, for masking virtual bucket numbers.
    mask: u64,
    /// Current bucket width in time units.
    width: f64,
    /// `1.0 / width`, the factor actually used to map times to buckets
    /// (one consistent formula everywhere, so cached `vb`s never disagree
    /// with fresh ones).
    inv_width: f64,
    len: usize,
    seq: u64,
    now: f64,
    /// Virtual bucket of the last popped entry: the year scan starts here.
    /// Invariant: no pending entry has a virtual bucket below the cursor.
    cursor: u64,
    /// Pops since the last resize — rate-limits drift-triggered retuning
    /// and, with `last_tune_now`, measures the pop rate the width is
    /// tuned from.
    pops_since_tune: usize,
    /// Total buckets + entries examined by pop scans since the last
    /// resize; `examined_since_tune / pops_since_tune` is the drift
    /// signal compared against [`SCAN_TUNE_THRESHOLD`].
    examined_since_tune: u64,
    /// Value of `now` at the last resize, for the pop-rate measurement.
    last_tune_now: f64,
    /// Memoized front: `(time, seq, bucket, index, examined)` of the
    /// `(time, seq)`-minimal pending entry, plus the scan cost that
    /// located it (billed to the tuning stats when the entry is actually
    /// popped). Engines running an external tick chain peek far more
    /// often than they pop; the memo makes every repeat peek O(1)
    /// instead of re-walking the same empty-bucket run. Invalidated by
    /// any mutation that can move the front (pops, resizes); updated in
    /// place by a schedule that beats it.
    front: Option<(f64, u64, usize, usize, usize)>,
    /// Always-on operation counters (pushes / pops / resizes).
    profile: QueueProfile,
    /// Opt-in resize log (`Some` iff tracing is enabled); timestamps are
    /// the simulated clock, so the log is a pure function of the
    /// schedule and consumes no RNG.
    resize_log: Option<Vec<ResizeRecord>>,
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            width: 1.0,
            inv_width: 1.0,
            len: 0,
            seq: 0,
            now: 0.0,
            cursor: 0,
            pops_since_tune: 0,
            examined_since_tune: 0,
            last_tune_now: 0.0,
            front: None,
            profile: QueueProfile::default(),
            resize_log: None,
        }
    }

    /// Operation counters since construction.
    pub fn profile(&self) -> QueueProfile {
        self.profile
    }

    /// Opt-in resize tracing: when enabled, every subsequent resize is
    /// recorded as a [`ResizeRecord`] retrievable via
    /// [`CalendarQueue::take_resize_log`]. Off by default; toggling
    /// never affects scheduling, popping, or tuning decisions.
    pub fn set_trace(&mut self, enabled: bool) {
        if enabled {
            if self.resize_log.is_none() {
                self.resize_log = Some(Vec::new());
            }
        } else {
            self.resize_log = None;
        }
    }

    /// Drains the recorded resize log (empty unless tracing was enabled
    /// via [`CalendarQueue::set_trace`]).
    pub fn take_resize_log(&mut self) -> Vec<ResizeRecord> {
        self.resize_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Creates an empty queue. The capacity hint is ignored: the bucket
    /// array self-tunes through resize doublings, and pre-sizing it would
    /// skip the width retuning those resizes perform.
    pub fn with_capacity(_capacity: usize) -> Self {
        Self::new()
    }

    /// The current simulation time: the timestamp of the last popped event
    /// or the last [`CalendarQueue::advance_to`] call, whichever is later
    /// (zero initially). Time never runs backwards.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The virtual bucket of `time` under the current width.
    #[inline]
    fn vbucket(&self, time: f64) -> u64 {
        // Saturating float→int cast: monotone even at the u64::MAX clamp,
        // which is all the ordering argument needs.
        (time * self.inv_width) as u64
    }

    /// Locates the `(time, seq)`-minimal entry as `(physical bucket,
    /// index within it, buckets + entries examined)`, serving from the
    /// front memo when it is valid and scanning (then filling the memo)
    /// otherwise.
    fn locate(&mut self) -> Option<(usize, usize, usize)> {
        if let Some((_, _, bi, i, examined)) = self.front {
            return Some((bi, i, examined));
        }
        let (bi, i, examined) = self.locate_scan()?;
        let e = &self.buckets[bi][i];
        self.front = Some((e.time, e.seq, bi, i, examined));
        Some((bi, i, examined))
    }

    /// The scanning body of [`CalendarQueue::locate`]: walks buckets from
    /// the cursor without consulting or mutating the memo. The examined
    /// count lets the popping paths detect a mistuned width and trigger a
    /// retune.
    fn locate_scan(&self) -> Option<(usize, usize, usize)> {
        if self.len == 0 {
            return None;
        }
        // Year scan: walk virtual buckets from the cursor. The first one
        // holding an entry contains the global minimum (see the
        // determinism argument on the type).
        let mut examined = 0usize;
        for off in 0..self.buckets.len() as u64 {
            let vb = self.cursor.wrapping_add(off);
            let bi = (vb & self.mask) as usize;
            let bucket = &self.buckets[bi];
            examined += 1 + bucket.len();
            let mut best: Option<(usize, f64, u64)> = None;
            for (i, e) in bucket.iter().enumerate() {
                if e.vb == vb
                    && !best.is_some_and(|(_, bt, bs)| e.time > bt || (e.time == bt && e.seq > bs))
                {
                    best = Some((i, e.time, e.seq));
                }
            }
            if let Some((i, _, _)) = best {
                return Some((bi, i, examined));
            }
        }
        // A whole year was empty: the pending entries are sparse relative
        // to the bucket range (far-future outliers). Fall back to a direct
        // scan for the global minimum — O(len), rare by construction.
        let mut best: Option<(usize, usize, f64, u64)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                if !best.is_some_and(|(_, _, bt, bs)| e.time > bt || (e.time == bt && e.seq > bs)) {
                    best = Some((bi, i, e.time, e.seq));
                }
            }
        }
        best.map(|(bi, i, _, _)| (bi, i, usize::MAX))
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        if let Some((t, ..)) = self.front {
            return Some(t);
        }
        self.locate_scan()
            .map(|(bi, i, _)| self.buckets[bi][i].time)
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN/infinite or lies strictly in the past
    /// (before [`CalendarQueue::now`]).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "schedule: event time must be finite");
        assert!(
            time >= self.now,
            "schedule: event time {time} is before current time {}",
            self.now
        );
        let vb = self.vbucket(time);
        let seq = self.seq;
        let entry = CalEntry {
            time,
            seq,
            vb,
            event,
        };
        self.seq += 1;
        self.profile.pushes += 1;
        let bi = (vb & self.mask) as usize;
        self.buckets[bi].push(entry);
        self.len += 1;
        // A strictly earlier arrival takes over the front memo (on a time
        // tie the incumbent wins: its seq is necessarily smaller).
        if let Some((ft, ..)) = self.front {
            if time < ft {
                self.front = Some((time, seq, bi, self.buckets[bi].len() - 1, 0));
            }
        }
        if self.len > 2 * self.buckets.len() {
            self.resize();
        }
    }

    /// Schedules `event` at `delay` after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "schedule_in: delay must be a non-negative finite number, got {delay}"
        );
        self.schedule(self.now + delay, event);
    }

    /// Removes the located entry, committing clock and cursor.
    fn take(&mut self, bi: usize, i: usize, examined: usize) -> (f64, E) {
        self.front = None;
        let entry = self.buckets[bi].swap_remove(i);
        self.len -= 1;
        self.now = entry.time;
        self.cursor = entry.vb;
        self.profile.pops += 1;
        self.pops_since_tune += 1;
        // A direct-search fallback scanned everything; bill it as such.
        self.examined_since_tune += if examined == usize::MAX {
            (self.len + self.buckets.len()) as u64
        } else {
            examined as u64
        };
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 8 {
            self.resize();
        } else if self.pops_since_tune > (self.len / 2).max(32) {
            // End of a measurement window (at most once per `len/2` pops,
            // keeping the amortized cost O(1) even on degenerate
            // schedules where no width can help). Retune if the width no
            // longer matches the live event population — either pop scans
            // averaged long buckets / long empty runs over the window, or
            // the width the window's pop rate calls for has drifted more
            // than [`WIDTH_DRIFT`]× from the one in force (a stale width
            // can sit just under the scan threshold yet still waste most
            // of every scan).
            let pop_gap = (self.now - self.last_tune_now) / self.pops_since_tune as f64;
            let ideal = TARGET_OCCUPANCY * pop_gap;
            let scans_long =
                self.examined_since_tune > SCAN_TUNE_THRESHOLD * self.pops_since_tune as u64;
            let width_stale = ideal.is_finite()
                && ideal > 0.0
                && (ideal > self.width * WIDTH_DRIFT || self.width > ideal * WIDTH_DRIFT);
            if scans_long || width_stale {
                self.resize();
            } else {
                // Healthy window: start the next one.
                self.pops_since_tune = 0;
                self.examined_since_tune = 0;
                self.last_tune_now = self.now;
            }
        }
        (entry.time, entry.event)
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let (bi, i, examined) = self.locate()?;
        Some(self.take(bi, i, examined))
    }

    /// Removes and returns the earliest event if its timestamp is at most
    /// `limit`; otherwise leaves the queue untouched and returns `None`.
    ///
    /// This replaces the peek-then-pop double comparison in engine drain
    /// loops with a single ordered lookup.
    pub fn pop_before(&mut self, limit: f64) -> Option<(f64, E)> {
        let (bi, i, examined) = self.locate()?;
        if self.buckets[bi][i].time > limit {
            return None;
        }
        Some(self.take(bi, i, examined))
    }

    /// Advances the clock to `time` without popping — used by engines that
    /// interleave the queue with externally maintained event sources (the
    /// superposed Poisson tick chains), so `schedule` keeps rejecting
    /// genuinely past timestamps. The cursor is left alone: it may only
    /// ever commit to popped entries.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN/infinite or lies strictly in the past.
    pub fn advance_to(&mut self, time: f64) {
        assert!(time.is_finite(), "advance_to: time must be finite");
        assert!(
            time >= self.now,
            "advance_to: time {time} is before current time {}",
            self.now
        );
        self.now = time;
    }

    /// Rebuilds the bucket array at `next_power_of_two(len)` buckets and
    /// retunes the width. The primary estimator is the observed pop rate
    /// (`TARGET_OCCUPANCY` pop gaps per bucket — see that constant for why
    /// rate beats span on skewed populations); before any pops have been
    /// observed (ramp-up growth from pure scheduling) it falls back to
    /// spreading the live span at ~1 entry per bucket over half a year.
    fn resize(&mut self) {
        self.front = None;
        let nbuckets = self.len.max(MIN_BUCKETS).next_power_of_two();
        let pop_gap = (self.now - self.last_tune_now) / self.pops_since_tune as f64;
        let mut width = if self.pops_since_tune >= 32 && pop_gap > 0.0 && pop_gap.is_finite() {
            TARGET_OCCUPANCY * pop_gap
        } else {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for bucket in &self.buckets {
                for e in bucket {
                    lo = lo.min(e.time);
                    hi = hi.max(e.time);
                }
            }
            let span = hi - lo;
            if self.len >= 2 && span > 0.0 && span.is_finite() {
                2.0 * span / self.len as f64
            } else {
                1.0
            }
        };
        // Degenerate widths (e.g. a span of one ulp) would overflow the
        // inverse; any positive width is *correct* (the scan falls back to
        // the direct search), so clamp rather than special-case.
        if !(width.is_finite() && width > 0.0 && (1.0 / width).is_finite()) {
            width = 1.0;
        }
        self.width = width;
        self.inv_width = 1.0 / width;
        self.mask = (nbuckets - 1) as u64;
        let old = std::mem::replace(
            &mut self.buckets,
            (0..nbuckets).map(|_| Vec::new()).collect(),
        );
        for bucket in old {
            for mut e in bucket {
                e.vb = self.vbucket(e.time);
                self.buckets[(e.vb & self.mask) as usize].push(e);
            }
        }
        // All pending entries sit at or after `now`, so the cursor
        // invariant (no entry below it) is re-established directly.
        self.cursor = self.vbucket(self.now);
        self.pops_since_tune = 0;
        self.examined_since_tune = 0;
        self.last_tune_now = self.now;
        self.profile.resizes += 1;
        if let Some(log) = self.resize_log.as_mut() {
            log.push(ResizeRecord {
                at: self.now,
                buckets: nbuckets as u64,
                width,
            });
        }
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared contract suite, instantiated for both implementations.
    macro_rules! queue_contract_suite {
        ($name:ident, $Q:ident) => {
            mod $name {
                use super::$Q;

                #[test]
                fn pops_in_time_order() {
                    let mut q = $Q::new();
                    q.schedule(3.0, 3u32);
                    q.schedule(1.0, 1u32);
                    q.schedule(2.0, 2u32);
                    assert_eq!(q.pop().unwrap().1, 1);
                    assert_eq!(q.pop().unwrap().1, 2);
                    assert_eq!(q.pop().unwrap().1, 3);
                }

                #[test]
                fn ties_break_by_insertion_order() {
                    let mut q = $Q::new();
                    for i in 0..100u32 {
                        q.schedule(1.0, i);
                    }
                    for i in 0..100u32 {
                        assert_eq!(q.pop().unwrap().1, i);
                    }
                }

                #[test]
                fn now_advances_with_pops() {
                    let mut q = $Q::new();
                    q.schedule(5.0, ());
                    q.schedule(7.0, ());
                    assert_eq!(q.now(), 0.0);
                    q.pop();
                    assert_eq!(q.now(), 5.0);
                    q.pop();
                    assert_eq!(q.now(), 7.0);
                }

                #[test]
                fn schedule_in_is_relative() {
                    let mut q = $Q::new();
                    q.schedule(2.0, "a");
                    q.pop();
                    q.schedule_in(1.5, "b");
                    assert_eq!(q.pop(), Some((3.5, "b")));
                }

                #[test]
                #[should_panic(expected = "before current time")]
                fn scheduling_in_the_past_panics() {
                    let mut q = $Q::new();
                    q.schedule(2.0, ());
                    q.pop();
                    q.schedule(1.0, ());
                }

                #[test]
                #[should_panic(expected = "finite")]
                fn scheduling_nan_panics() {
                    let mut q = $Q::new();
                    q.schedule(f64::NAN, ());
                }

                #[test]
                fn len_and_empty_track_contents() {
                    let mut q = $Q::new();
                    assert!(q.is_empty());
                    q.schedule(1.0, ());
                    q.schedule(2.0, ());
                    assert_eq!(q.len(), 2);
                    q.pop();
                    assert_eq!(q.len(), 1);
                    assert!(!q.is_empty());
                    q.pop();
                    assert!(q.is_empty());
                }

                #[test]
                fn peek_does_not_remove() {
                    let mut q = $Q::new();
                    q.schedule(4.0, ());
                    assert_eq!(q.peek_time(), Some(4.0));
                    assert_eq!(q.len(), 1);
                }

                #[test]
                fn pop_before_respects_the_limit() {
                    let mut q = $Q::new();
                    q.schedule(1.0, "a");
                    q.schedule(2.0, "b");
                    assert_eq!(q.pop_before(0.5), None);
                    assert_eq!(q.len(), 2, "a miss must not disturb the queue");
                    assert_eq!(q.pop_before(1.0), Some((1.0, "a")), "limit is inclusive");
                    assert_eq!(q.pop_before(10.0), Some((2.0, "b")));
                    assert_eq!(q.pop_before(10.0), None);
                }

                #[test]
                fn pop_before_miss_keeps_order_intact() {
                    let mut q = $Q::new();
                    q.schedule(5.0, 5u32);
                    q.schedule(3.0, 3u32);
                    assert_eq!(q.pop_before(1.0), None);
                    // An earlier event scheduled *after* the miss must still
                    // come out first.
                    q.schedule(2.0, 2u32);
                    assert_eq!(q.pop(), Some((2.0, 2)));
                    assert_eq!(q.pop(), Some((3.0, 3)));
                    assert_eq!(q.pop(), Some((5.0, 5)));
                }

                #[test]
                fn advance_to_moves_now_only() {
                    let mut q = $Q::new();
                    q.schedule(4.0, ());
                    q.advance_to(3.0);
                    assert_eq!(q.now(), 3.0);
                    assert_eq!(q.len(), 1);
                    assert_eq!(q.pop(), Some((4.0, ())));
                }

                #[test]
                #[should_panic(expected = "before current time")]
                fn advance_to_rejects_the_past() {
                    let mut q = $Q::new();
                    q.schedule(2.0, ());
                    q.pop();
                    q.advance_to(1.0);
                }
            }
        };
    }

    queue_contract_suite!(heap, HeapQueue);
    queue_contract_suite!(calendar, CalendarQueue);

    #[test]
    fn calendar_survives_growth_and_shrink_churn() {
        // Push far past several grow thresholds, then drain through the
        // shrink threshold; order must hold throughout.
        let mut q = CalendarQueue::new();
        for i in 0..5_000u64 {
            // Non-monotone insertion order across a wide range.
            let t = ((i.wrapping_mul(2_654_435_761)) % 100_000) as f64 / 7.0;
            q.schedule(t, i);
        }
        let mut last = (f64::NEG_INFINITY, 0u64);
        let mut count = 0usize;
        while let Some((t, i)) = q.pop() {
            assert!(
                t > last.0 || (t == last.0 && i > last.1),
                "order violated at ({t}, {i}) after {last:?}"
            );
            last = (t, i);
            count += 1;
        }
        assert_eq!(count, 5_000);
    }

    #[test]
    fn calendar_handles_far_future_outliers() {
        // A dense cluster near zero plus outliers many "years" away: the
        // year scan must give up and fall back to the direct search.
        let mut q = CalendarQueue::new();
        q.schedule(1e9, u64::MAX);
        for i in 0..100u64 {
            q.schedule(i as f64 * 1e-3, i);
        }
        for i in 0..100u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert_eq!(q.pop(), Some((1e9, u64::MAX)));
    }

    #[test]
    fn calendar_keeps_tie_order_across_resizes() {
        // 300 identical timestamps interleaved with spread ones: resizes
        // re-bucket everything, insertion order must survive.
        let mut q = CalendarQueue::new();
        for i in 0..300u64 {
            q.schedule(10.0, i);
            q.schedule(20.0 + i as f64, 1_000 + i);
        }
        for i in 0..300u64 {
            assert_eq!(q.pop(), Some((10.0, i)));
        }
        for i in 0..300u64 {
            assert_eq!(q.pop(), Some((20.0 + i as f64, 1_000 + i)));
        }
    }

    #[test]
    fn calendar_degenerate_span_stays_correct() {
        // All entries at one timestamp: resize's span is zero, the width
        // falls back, and everything lands in one virtual bucket — order
        // must still be exact.
        let mut q = CalendarQueue::new();
        for i in 0..200u64 {
            q.schedule(123.456, i);
        }
        for i in 0..200u64 {
            assert_eq!(q.pop(), Some((123.456, i)));
        }
    }

    #[test]
    fn calendar_interleaved_chains_advance() {
        // The engines' usage pattern: each pop schedules a follow-up a
        // little later (self-perpetuating chains).
        let mut q = CalendarQueue::new();
        for i in 0..32u64 {
            q.schedule(i as f64 * 0.1, i);
        }
        let mut pops = 0u64;
        let mut last = f64::NEG_INFINITY;
        while let Some((t, id)) = q.pop() {
            assert!(t >= last);
            last = t;
            pops += 1;
            if pops < 10_000 {
                q.schedule(t + 0.05 + (id % 7) as f64 * 0.01, id);
            }
        }
        assert_eq!(pops, 10_000 + 31);
    }
}
