//! # plurality-sim
//!
//! Deterministic discrete-event simulation substrate for the `plurality`
//! workspace.
//!
//! The asynchronous protocols of the paper (single-leader Algorithm 2/3 and
//! the clustered multi-leader Algorithm 4/5) are executed against this
//! engine: an [`EventQueue`] orders ticks, channel completions and signal
//! arrivals on a continuous time axis; [`PoissonClock`] produces the
//! unit-rate tick processes the model postulates; [`Series`] and
//! [`EventLog`] capture the observables the experiment harness turns into
//! the paper's figures.
//!
//! Determinism is a design requirement: a simulation run is a pure function
//! of its `u64` seed (see `plurality_dist::rng`), and the queue breaks
//! timestamp ties by insertion order.
//!
//! [`EventQueue`] is a [`CalendarQueue`] (O(1) amortized bucketed calendar
//! queue) by default; the `legacy-heap` cargo feature re-points it at the
//! original binary-heap [`HeapQueue`]. Both implementations are always
//! compiled and produce bit-identical pop sequences (see the equivalence
//! property tests in `tests/queue_properties.rs`).
//!
//! ## Example
//!
//! ```
//! use plurality_sim::{EventQueue, PoissonClock};
//! use plurality_dist::rng::Xoshiro256PlusPlus;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(usize) }
//!
//! let mut rng = Xoshiro256PlusPlus::from_u64(7);
//! let clock = PoissonClock::unit_rate();
//! let mut queue = EventQueue::new();
//! queue.schedule(clock.next_tick(0.0, &mut rng), Ev::Tick(0));
//! let (t, Ev::Tick(node)) = queue.pop().unwrap();
//! assert_eq!(node, 0);
//! assert!(t > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod queue;

pub use clock::PoissonClock;
pub use metrics::{EventLog, Series};
pub use queue::{CalendarQueue, EventQueue, HeapQueue, QueueProfile, ResizeRecord};
