//! Poisson clocks.
//!
//! Every node in the paper's asynchronous model carries an independent
//! Poisson clock with constant rate (w.l.o.g. rate 1, Section 3.1). A clock
//! is just an exponential inter-arrival sampler; the engine schedules the
//! next tick event whenever the current one fires. A per-node `rate` allows
//! the straggler-injection extension (heterogeneous clocks) used by the
//! robustness tests.

use plurality_dist::Exponential;
use plurality_dist::InvalidParameterError;
use rand::Rng;

/// A Poisson clock producing exponentially distributed inter-tick times.
///
/// # Examples
///
/// ```
/// use plurality_sim::PoissonClock;
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// # fn main() -> Result<(), plurality_dist::InvalidParameterError> {
/// let clock = PoissonClock::unit_rate();
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let t1 = clock.next_tick(0.0, &mut rng);
/// let t2 = clock.next_tick(t1, &mut rng);
/// assert!(t2 > t1 && t1 > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonClock {
    inter_tick: Exponential,
}

impl PoissonClock {
    /// Creates a clock with the given tick rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `rate` is not positive and
    /// finite.
    pub fn new(rate: f64) -> Result<Self, InvalidParameterError> {
        Ok(Self {
            inter_tick: Exponential::new(rate)?,
        })
    }

    /// The standard unit-rate clock of the paper's model.
    pub fn unit_rate() -> Self {
        Self::new(1.0).expect("rate 1 is valid")
    }

    /// The tick rate.
    pub fn rate(&self) -> f64 {
        self.inter_tick.rate()
    }

    /// Returns the absolute time of the next tick after `now`.
    ///
    /// Uses the ziggurat sampler ([`Exponential::sample_fast`]): the same
    /// inter-tick law as inversion sampling, but a different consumption
    /// of the RNG stream, and ~5× cheaper per draw. The engines draw one
    /// inter-tick per event, so this is their single hottest sampler.
    #[inline]
    pub fn next_tick<R: Rng + ?Sized>(&self, now: f64, rng: &mut R) -> f64 {
        now + self.inter_tick.sample_fast(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_dist::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_bad_rate() {
        assert!(PoissonClock::new(0.0).is_err());
        assert!(PoissonClock::new(-1.0).is_err());
    }

    #[test]
    fn unit_rate_mean_inter_tick_is_one() {
        let clock = PoissonClock::unit_rate();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut now = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            now = clock.next_tick(now, &mut rng);
        }
        let mean = now / N as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean inter-tick {mean}");
    }

    #[test]
    fn ticks_strictly_increase() {
        let clock = PoissonClock::new(5.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let mut now = 0.0;
        for _ in 0..10_000 {
            let next = clock.next_tick(now, &mut rng);
            assert!(next > now);
            now = next;
        }
    }

    #[test]
    fn count_in_unit_interval_is_poisson_like() {
        // Over [0, T] a rate-r clock ticks ~ Poisson(rT) times.
        let clock = PoissonClock::new(2.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let horizon = 10_000.0;
        let mut now = 0.0;
        let mut count = 0u64;
        loop {
            now = clock.next_tick(now, &mut rng);
            if now > horizon {
                break;
            }
            count += 1;
        }
        let expected = 2.0 * horizon;
        assert!(
            (count as f64 - expected).abs() < 4.0 * expected.sqrt(),
            "count {count} vs expected {expected}"
        );
    }
}
