//! Run-time measurement containers.
//!
//! Experiments need two kinds of observations from a run: *time series*
//! (e.g. the fraction of nodes holding the plurality opinion, sampled on a
//! grid) and *event logs* (e.g. leader phase changes for Figure 2). Both are
//! deliberately dumb containers — analysis lives in `plurality-stats`.

/// A scalar time series: `(time, value)` pairs in non-decreasing time order.
///
/// # Examples
///
/// ```
/// use plurality_sim::Series;
/// let mut s = Series::new("plurality_fraction");
/// s.push(0.0, 0.4);
/// s.push(1.0, 0.7);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.last_value(), Some(0.7));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Series {
    /// Creates an empty series with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded time or is not finite.
    pub fn push(&mut self, time: f64, value: f64) {
        assert!(time.is_finite(), "Series::push: time must be finite");
        if let Some(&last) = self.times.last() {
            assert!(
                time >= last,
                "Series::push: time {time} precedes last time {last}"
            );
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The recorded times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// The first time at which the value reaches at least `threshold`, if
    /// ever.
    pub fn first_time_at_least(&self, threshold: f64) -> Option<f64> {
        self.times
            .iter()
            .zip(&self.values)
            .find(|(_, &v)| v >= threshold)
            .map(|(&t, _)| t)
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }
}

/// A timestamped log of discrete happenings of type `T`.
///
/// # Examples
///
/// ```
/// use plurality_sim::EventLog;
/// let mut log = EventLog::new();
/// log.record(0.5, "generation 1 born");
/// log.record(1.5, "propagation enabled");
/// assert_eq!(log.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog<T> {
    entries: Vec<(f64, T)>,
}

impl<T> EventLog<T> {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn record(&mut self, time: f64, entry: T) {
        assert!(time.is_finite(), "EventLog::record: time must be finite");
        self.entries.push((time, entry));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in recording order.
    pub fn entries(&self) -> &[(f64, T)] {
        &self.entries
    }

    /// Iterates over entries.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, T)> {
        self.entries.iter()
    }
}

impl<T> Default for EventLog<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_records_in_order() {
        let mut s = Series::new("x");
        s.push(0.0, 1.0);
        s.push(0.5, 2.0);
        s.push(0.5, 3.0); // equal times allowed
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn series_rejects_time_travel() {
        let mut s = Series::new("x");
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    fn first_time_at_least_finds_threshold_crossing() {
        let mut s = Series::new("frac");
        s.push(0.0, 0.1);
        s.push(1.0, 0.6);
        s.push(2.0, 0.9);
        assert_eq!(s.first_time_at_least(0.5), Some(1.0));
        assert_eq!(s.first_time_at_least(0.95), None);
    }

    #[test]
    fn event_log_accumulates() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.record(1.0, 42u32);
        log.record(2.0, 43u32);
        let collected: Vec<u32> = log.iter().map(|&(_, v)| v).collect();
        assert_eq!(collected, vec![42, 43]);
    }
}
