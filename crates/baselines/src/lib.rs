//! # plurality-baselines
//!
//! Baseline consensus dynamics for comparison against the paper's
//! generation-based protocols (experiment E12 and the related-work
//! discussion of Section 1.1):
//!
//! * [`Dynamics`] — synchronous gossip dynamics on the clique: pull voting,
//!   two-choices, 3-majority, undecided-state dynamics.
//! * [`PopulationProtocol`] — sequential pairwise population protocols:
//!   3-state approximate majority and 4-state exact majority.
//!
//! All runners report the shared
//! [`RunOutcome`](plurality_core::RunOutcome), so experiment harnesses can
//! compare convergence times and plurality preservation uniformly.
//!
//! ## Example
//!
//! ```
//! use plurality_baselines::{Dynamics, DynamicsConfig};
//! use plurality_core::InitialAssignment;
//!
//! let assignment = InitialAssignment::with_bias(2_000, 3, 3.0).unwrap();
//! let result = DynamicsConfig::new(Dynamics::TwoChoices, assignment)
//!     .with_seed(7)
//!     .run();
//! assert!(result.outcome.plurality_preserved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamics;
mod population;

pub use dynamics::{Dynamics, DynamicsConfig, DynamicsResult};
pub use population::{PopulationConfig, PopulationProtocol, PopulationResult};
