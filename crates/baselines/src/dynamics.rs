//! Synchronous gossip dynamics on the complete graph.
//!
//! These are the baselines the paper's related-work section measures
//! against (experiment E12):
//!
//! * **Pull voting** [HP01, NIY99] — adopt one uniform sample; `Ω(n)`
//!   expected convergence, preserves the plurality only in expectation.
//! * **Two-choices voting** [CER14] — adopt when two uniform samples agree;
//!   `O(log n)` for two opinions with sufficient bias.
//! * **3-majority** [BCN+14] — adopt the majority of three samples, random
//!   tie-break; `Θ(k log n)` with sufficient absolute bias.
//! * **Undecided-state dynamics** [AAE08, BCN+15] — one sample, disagreeing
//!   nodes pass through an *undecided* state before flipping.
//!
//! All four run in simultaneous rounds against the previous round's state,
//! exactly like the paper's synchronous protocol, so round counts are
//! directly comparable.

use plurality_core::{ConvergenceTracker, InitialAssignment, OpinionCounts, RunOutcome};
use plurality_dist::rng::{derive_seed, Xoshiro256PlusPlus};
use plurality_obs::{TraceEvent, TraceKind, Tracer};
use plurality_scenario::{Effect, Environment, Scenario};
use plurality_topology::{Topology, TOPOLOGY_STREAM};
use rand::Rng;

/// Sentinel color index for the undecided state (only used internally by
/// [`Dynamics::Undecided`]).
const UNDECIDED: u32 = u32::MAX;

/// A synchronous baseline dynamic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dynamics {
    /// Pull voting: adopt one uniform sample.
    PullVoting,
    /// Two-choices: adopt if two uniform samples agree.
    TwoChoices,
    /// 3-majority: adopt the majority among three samples (random
    /// tie-break).
    ThreeMajority,
    /// Undecided-state dynamics: one sample; disagreement makes a node
    /// undecided, undecided nodes adopt the next decided sample.
    Undecided,
}

impl Dynamics {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::PullVoting => "pull-voting",
            Self::TwoChoices => "two-choices",
            Self::ThreeMajority => "3-majority",
            Self::Undecided => "undecided-state",
        }
    }

    /// All baseline dynamics, for sweeps.
    pub fn all() -> [Dynamics; 4] {
        [
            Self::PullVoting,
            Self::TwoChoices,
            Self::ThreeMajority,
            Self::Undecided,
        ]
    }
}

/// Configuration for a baseline run. Also runnable through the unified
/// facade (`plurality-api`'s `GossipEngine`; spec names `"pull"`,
/// `"two-choices"`, `"3-majority"`, `"undecided"`), which consumes the
/// byte-identical RNG stream.
///
/// # Examples
///
/// ```
/// use plurality_baselines::{Dynamics, DynamicsConfig};
/// use plurality_core::InitialAssignment;
/// let assignment = InitialAssignment::with_bias(2_000, 3, 3.0).unwrap();
/// let result = DynamicsConfig::new(Dynamics::ThreeMajority, assignment)
///     .with_seed(1)
///     .run();
/// assert!(result.outcome.consensus_time.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsConfig {
    dynamics: Dynamics,
    assignment: InitialAssignment,
    epsilon: f64,
    seed: u64,
    max_rounds: Option<u64>,
    topology: Topology,
    scenario: Scenario,
    trace: bool,
}

impl DynamicsConfig {
    /// Creates a configuration with `ε = 0.05`, seed 0, and a default
    /// round cap of `200·log₂n + 200` (pull voting needs `Ω(n)` and will
    /// usually hit the cap — that is part of the measurement). With a
    /// scenario attached, the default cap additionally stretches past
    /// the scenario horizon so scripted events actually fire.
    pub fn new(dynamics: Dynamics, assignment: InitialAssignment) -> Self {
        Self {
            dynamics,
            assignment,
            epsilon: 0.05,
            seed: 0,
            max_rounds: None,
            topology: Topology::Complete,
            scenario: Scenario::new(),
            trace: false,
        }
    }

    /// Enables structured run tracing (default off). The tracer consumes
    /// no process RNG: a traced run produces the byte-identical
    /// [`DynamicsResult::outcome`] of an untraced one, plus the event
    /// log in [`DynamicsResult::trace`].
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a time-scripted environment (default: the empty
    /// scenario). Event times are in *rounds*, like the synchronous
    /// engine: crashed nodes freeze and interactions that sample them
    /// (or lose a channel during a `burst-loss` window) keep the node's
    /// own opinion; `corrupt` re-colors decided and undecided nodes
    /// alike; `latency:` shifts are no-ops in round-based dynamics. The
    /// empty scenario consumes the byte-identical process RNG stream as
    /// before the subsystem existed.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the communication topology (default [`Topology::Complete`]):
    /// all samples a node draws per round come from uniform neighbors on
    /// the given graph (isolated nodes sample themselves). Random graph
    /// families are rebuilt per run from `derive_seed(seed,
    /// TOPOLOGY_STREAM)`.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets ε for ε-convergence reporting.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the round cap, overriding the default formula.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Runs the dynamic.
    ///
    /// # Panics
    ///
    /// Panics if the assignment materializes fewer than 2 nodes, or if
    /// the configured topology cannot be built for that population size.
    pub fn run(&self) -> DynamicsResult {
        run_dynamics(self)
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsResult {
    /// Which dynamic ran.
    pub dynamics: Dynamics,
    /// Common outcome report (no generation telemetry — these dynamics have
    /// no generations).
    pub outcome: RunOutcome,
    /// Rounds simulated.
    pub rounds: u64,
    /// Peak fraction of undecided nodes (always 0 except for
    /// [`Dynamics::Undecided`]).
    pub peak_undecided: f64,
    /// Structured trace events, sorted by time (only when
    /// [`DynamicsConfig::with_trace`] was enabled).
    pub trace: Option<Vec<TraceEvent>>,
}

fn run_dynamics(cfg: &DynamicsConfig) -> DynamicsResult {
    let mut rng = Xoshiro256PlusPlus::from_u64(cfg.seed);
    let opinions = cfg.assignment.materialize(&mut rng);
    let n = opinions.len();
    assert!(n >= 2, "baseline run needs at least 2 nodes");
    let k = cfg.assignment.k() as usize;

    // Private RNG stream: complete-graph runs reproduce the historical
    // results bitwise.
    let mut sampler = cfg
        .topology
        .build(n, derive_seed(cfg.seed, TOPOLOGY_STREAM))
        .expect("topology must be buildable for this population size");

    // `None` for the empty scenario: the zero-cost fast path.
    let mut env: Option<Environment> = cfg.scenario.for_run(n, k as u32, cfg.seed);
    let max_rounds = cfg.max_rounds.unwrap_or_else(|| {
        let derived = (200.0 * (n as f64).log2()).ceil() as u64 + 200;
        derived.max(cfg.scenario.horizon().ceil() as u64 + 200)
    });

    let mut col: Vec<u32> = opinions.iter().map(|o| o.index()).collect();
    let mut counts = OpinionCounts::tally(&opinions, k);
    let initial_winner = counts.winner().expect("non-empty population");
    let initial_bias = counts.bias().unwrap_or(f64::INFINITY);

    let mut tracker = ConvergenceTracker::new(n as u64, initial_winner, cfg.epsilon);
    let mut undecided_count: u64 = 0;
    let mut peak_undecided = 0.0f64;
    tracker.observe(
        0.0,
        counts.support(initial_winner),
        counts.as_slice().iter().copied().max().unwrap_or(0),
    );

    let mut new_col = col.clone();
    let mut rounds = 0u64;
    let mut tracer = Tracer::new(cfg.trace);

    // Consensus for the undecided dynamic additionally requires that no
    // node is undecided.
    let mono = |counts: &OpinionCounts, undecided: u64| undecided == 0 && counts.is_monochromatic();

    // A sampled channel is unusable if the peer is crashed or the draw
    // falls inside a loss burst; the node then keeps its own opinion.
    fn blocked(env: &mut Option<Environment>, peer: u32) -> bool {
        match env.as_mut() {
            Some(e) => e.is_crashed(peer) || e.message_lost(),
            None => false,
        }
    }

    if !mono(&counts, undecided_count) {
        for round in 1..=max_rounds {
            rounds = round;
            if let Some(e) = env.as_mut() {
                for effect in e.poll(round as f64) {
                    match effect {
                        Effect::Joined(joins) => {
                            tracer.emit(
                                round as f64,
                                TraceKind::ScenarioEffect {
                                    name: "joined",
                                    count: joins.len() as u64,
                                },
                            );
                            for (v, c) in joins {
                                col[v as usize] = c;
                            }
                        }
                        Effect::Corrupt { budget, mode } => {
                            // Undecided nodes carry the sentinel (≥ k) and
                            // are skipped by the adversary's support count;
                            // victims always end up decided.
                            let targets = e.corruption_targets(budget, mode, &col, k as u32);
                            tracer.emit(
                                round as f64,
                                TraceKind::ScenarioEffect {
                                    name: "corrupt",
                                    count: targets.len() as u64,
                                },
                            );
                            for (v, c) in targets {
                                col[v as usize] = c;
                            }
                        }
                        Effect::Rewired(s) => {
                            tracer.emit(
                                round as f64,
                                TraceKind::ScenarioEffect {
                                    name: "rewired",
                                    count: 1,
                                },
                            );
                            sampler = s;
                        }
                        _ => {}
                    }
                }
            }
            for v in 0..n {
                let own = col[v];
                let vu = v as u32;
                if env.as_ref().is_some_and(|e| e.is_crashed(vu)) {
                    new_col[v] = own;
                    continue;
                }
                new_col[v] = match cfg.dynamics {
                    Dynamics::PullVoting => {
                        let s = sampler.sample(vu, &mut rng);
                        if blocked(&mut env, s) {
                            own
                        } else {
                            col[s as usize]
                        }
                    }
                    Dynamics::TwoChoices => {
                        let sa = sampler.sample(vu, &mut rng);
                        let sb = sampler.sample(vu, &mut rng);
                        if blocked(&mut env, sa) || blocked(&mut env, sb) {
                            own
                        } else {
                            let (a, b) = (col[sa as usize], col[sb as usize]);
                            if a == b {
                                a
                            } else {
                                own
                            }
                        }
                    }
                    Dynamics::ThreeMajority => {
                        let sa = sampler.sample(vu, &mut rng);
                        let sb = sampler.sample(vu, &mut rng);
                        let sc = sampler.sample(vu, &mut rng);
                        if blocked(&mut env, sa) || blocked(&mut env, sb) || blocked(&mut env, sc) {
                            own
                        } else {
                            let (a, b, c) = (col[sa as usize], col[sb as usize], col[sc as usize]);
                            if a == b || a == c {
                                a
                            } else if b == c {
                                b
                            } else {
                                // All distinct: uniform tie-break among them.
                                [a, b, c][rng.gen_range(0..3usize)]
                            }
                        }
                    }
                    Dynamics::Undecided => {
                        let su = sampler.sample(vu, &mut rng);
                        if blocked(&mut env, su) {
                            own
                        } else {
                            let s = col[su as usize];
                            if own == UNDECIDED {
                                s // adopt whatever the sample holds (or stay
                                  // undecided if the sample is undecided too)
                            } else if s == UNDECIDED || s == own {
                                own
                            } else {
                                UNDECIDED
                            }
                        }
                    }
                };
            }
            // Re-tally (cheaper than incremental transfer bookkeeping here).
            undecided_count = 0;
            let mut tally = vec![0u64; k];
            for &c in &new_col {
                if c == UNDECIDED {
                    undecided_count += 1;
                } else {
                    tally[c as usize] += 1;
                }
            }
            counts = OpinionCounts::from_counts(tally);
            std::mem::swap(&mut col, &mut new_col);

            peak_undecided = peak_undecided.max(undecided_count as f64 / n as f64);
            let max_support = counts.as_slice().iter().copied().max().unwrap_or(0);
            tracker.observe(
                round as f64,
                counts.support(initial_winner),
                if undecided_count == 0 { max_support } else { 0 },
            );
            if mono(&counts, undecided_count) {
                break;
            }
        }
    }

    if let Some(t) = tracker.epsilon_time() {
        tracer.emit(
            t,
            TraceKind::Milestone {
                name: "epsilon-converged",
                value: t,
            },
        );
    }
    if let Some(t) = tracker.consensus_time() {
        tracer.emit(
            t,
            TraceKind::Milestone {
                name: "consensus",
                value: t,
            },
        );
    }
    let outcome = RunOutcome {
        n: n as u64,
        k: k as u32,
        initial_winner,
        initial_bias,
        final_counts: counts,
        epsilon_time: tracker.epsilon_time(),
        consensus_time: tracker.consensus_time(),
        duration: rounds as f64,
        generations: Vec::new(),
    };
    DynamicsResult {
        dynamics: cfg.dynamics,
        outcome,
        rounds,
        peak_undecided,
        trace: tracer.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_core::Opinion;

    fn biased(n: u64, k: u32, alpha: f64) -> InitialAssignment {
        InitialAssignment::with_bias(n, k, alpha).unwrap()
    }

    #[test]
    fn two_choices_preserves_large_bias() {
        let r = DynamicsConfig::new(Dynamics::TwoChoices, biased(2_000, 2, 3.0))
            .with_seed(1)
            .run();
        assert!(r.outcome.plurality_preserved());
        assert_eq!(r.outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn three_majority_preserves_large_bias_multi_opinion() {
        let r = DynamicsConfig::new(Dynamics::ThreeMajority, biased(3_000, 5, 3.0))
            .with_seed(2)
            .run();
        assert!(r.outcome.plurality_preserved());
    }

    #[test]
    fn undecided_dynamics_converges_and_uses_undecided_state() {
        let r = DynamicsConfig::new(Dynamics::Undecided, biased(3_000, 2, 3.0))
            .with_seed(3)
            .run();
        assert!(r.outcome.consensus_time.is_some(), "did not converge");
        assert!(r.peak_undecided > 0.0, "never used the undecided state");
        assert!(r.outcome.plurality_preserved());
    }

    #[test]
    fn pull_voting_converges_with_overwhelming_majority() {
        // 95% initial majority: pull voting wins this whp.
        let assignment = InitialAssignment::Exact(vec![950, 50]);
        let r = DynamicsConfig::new(Dynamics::PullVoting, assignment)
            .with_seed(4)
            .run();
        assert!(r.outcome.consensus_time.is_some(), "no consensus");
        assert!(r.outcome.plurality_preserved());
    }

    #[test]
    fn pull_voting_is_slower_than_two_choices() {
        let a = biased(2_000, 2, 3.0);
        let pull = DynamicsConfig::new(Dynamics::PullVoting, a.clone())
            .with_seed(5)
            .run();
        let two = DynamicsConfig::new(Dynamics::TwoChoices, a)
            .with_seed(5)
            .run();
        let two_time = two.outcome.consensus_time.expect("two-choices converges");
        // Pull voting either did not converge at all or took longer.
        match pull.outcome.consensus_time {
            None => {}
            Some(t) => assert!(t > two_time, "pull {t} ≤ two-choices {two_time}"),
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = biased(800, 3, 2.0);
        let r1 = DynamicsConfig::new(Dynamics::ThreeMajority, a.clone())
            .with_seed(9)
            .run();
        let r2 = DynamicsConfig::new(Dynamics::ThreeMajority, a)
            .with_seed(9)
            .run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn monochromatic_start_is_instant() {
        let a = InitialAssignment::Exact(vec![100, 0]);
        for d in Dynamics::all() {
            let r = DynamicsConfig::new(d, a.clone()).run();
            assert_eq!(r.outcome.consensus_time, Some(0.0), "{}", d.name());
            assert_eq!(r.rounds, 0);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Dynamics::PullVoting.name(), "pull-voting");
        assert_eq!(Dynamics::all().len(), 4);
    }

    #[test]
    fn explicit_complete_topology_is_bitwise_identical_to_default() {
        let a = biased(900, 3, 2.5);
        let default = DynamicsConfig::new(Dynamics::ThreeMajority, a.clone())
            .with_seed(11)
            .run();
        let explicit = DynamicsConfig::new(Dynamics::ThreeMajority, a)
            .with_seed(11)
            .with_topology(Topology::Complete)
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn sparse_expander_preserves_large_bias() {
        for d in [Dynamics::TwoChoices, Dynamics::ThreeMajority] {
            let r = DynamicsConfig::new(d, biased(2_000, 2, 3.0))
                .with_seed(12)
                .with_topology(Topology::Regular { d: 8 })
                .run();
            assert!(r.outcome.consensus_time.is_some(), "{} stalled", d.name());
            assert!(r.outcome.plurality_preserved(), "{}", d.name());
        }
    }

    #[test]
    fn empty_scenario_is_bitwise_identical_to_default() {
        let a = biased(900, 3, 2.5);
        let default = DynamicsConfig::new(Dynamics::ThreeMajority, a.clone())
            .with_seed(21)
            .run();
        let explicit = DynamicsConfig::new(Dynamics::ThreeMajority, a)
            .with_seed(21)
            .with_scenario(Scenario::new())
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn tracing_off_is_bitwise_identical_to_default() {
        let a = biased(900, 3, 2.5);
        let default = DynamicsConfig::new(Dynamics::ThreeMajority, a.clone())
            .with_seed(31)
            .run();
        let explicit = DynamicsConfig::new(Dynamics::ThreeMajority, a)
            .with_seed(31)
            .with_trace(false)
            .run();
        assert_eq!(default, explicit);
        assert!(default.trace.is_none());
    }

    #[test]
    fn tracing_on_changes_nothing_but_the_trace() {
        let a = biased(900, 3, 2.5);
        let plain = DynamicsConfig::new(Dynamics::ThreeMajority, a.clone())
            .with_seed(32)
            .run();
        let traced = DynamicsConfig::new(Dynamics::ThreeMajority, a)
            .with_seed(32)
            .with_trace(true)
            .run();
        let events = traced.trace.clone().expect("trace recorded");
        // Converging runs always carry the convergence milestones.
        assert!(events.iter().any(|e| e.kind.label() == "consensus"));
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        let mut untraced = traced.clone();
        untraced.trace = None;
        assert_eq!(untraced, plain, "tracing perturbed the run");
    }

    #[test]
    fn scenario_churn_and_corruption_run_deterministically() {
        for dynamics in [Dynamics::ThreeMajority, Dynamics::Undecided] {
            let mk = || {
                DynamicsConfig::new(dynamics, biased(1_000, 3, 3.0))
                    .with_seed(22)
                    .with_scenario(
                        Scenario::parse("crash:0.3@2;corrupt:0.15:adaptive@4;join:0.3@8").unwrap(),
                    )
                    .run()
            };
            let r = mk();
            assert_eq!(r, mk(), "{}", dynamics.name());
            assert!(
                r.outcome.consensus_time.is_some(),
                "{} did not converge",
                dynamics.name()
            );
        }
    }

    #[test]
    fn oblivious_corruption_perturbs_the_trajectory() {
        let a = biased(2_000, 2, 3.0);
        let clean = DynamicsConfig::new(Dynamics::TwoChoices, a.clone())
            .with_seed(23)
            .run();
        let attacked = DynamicsConfig::new(Dynamics::TwoChoices, a)
            .with_seed(23)
            .with_scenario(Scenario::parse("corrupt:0.2@3").unwrap())
            .run();
        assert_ne!(clean, attacked, "corruption left the run untouched");
    }

    #[test]
    fn respects_round_cap() {
        // Bias 1.0 with two huge camps: pull voting will not finish in 3
        // rounds; the cap must hold.
        let a = InitialAssignment::Uniform { n: 1_000, k: 2 };
        let r = DynamicsConfig::new(Dynamics::PullVoting, a)
            .with_seed(6)
            .with_max_rounds(3)
            .run();
        assert!(r.rounds <= 3);
    }
}
