//! Population protocols for (approximate and exact) majority.
//!
//! The paper positions its asynchronous model against the population
//! protocol literature (Section 1.1): discrete steps, one ordered pair of
//! agents interacting per step, run time divided by `n` to obtain *parallel
//! time*. Two classic two-opinion protocols are implemented:
//!
//! * the **3-state approximate majority** protocol of Angluin, Aspnes and
//!   Eisenstat [AAE08] — `O(n log n)` interactions given bias
//!   `ω(√(n log n))`, but may err for tiny bias;
//! * the **4-state exact majority** protocol of Draief–Vojnović [DV10] and
//!   Mertzios et al. [MNRS14] — always outputs the true majority
//!   (differences are conserved), at the price of `O(n² log n)`
//!   interactions in the worst case.

use plurality_core::{InitialAssignment, Opinion, OpinionCounts, RunOutcome};
use plurality_dist::rng::{derive_seed, Xoshiro256PlusPlus};
use plurality_obs::{TraceEvent, TraceKind, Tracer};
use plurality_scenario::{Effect, Environment, Scenario};
use plurality_topology::{Topology, TOPOLOGY_STREAM};
use rand::Rng;

/// A two-opinion population protocol for majority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopulationProtocol {
    /// AAE08 3-state protocol: states {A, B, blank}.
    ApproximateMajority,
    /// DV10/MNRS14 4-state protocol: states {A, B, a, b}; |A|−|B| is
    /// conserved, so the output is always the true initial majority.
    ExactMajority,
}

impl PopulationProtocol {
    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Self::ApproximateMajority => "3-state-approximate-majority",
            Self::ExactMajority => "4-state-exact-majority",
        }
    }
}

/// Agent states shared by both protocols. `StrongA/StrongB` double as the
/// plain A/B states of the 3-state protocol; `Blank` is its third state;
/// `WeakA/WeakB` only occur in the 4-state protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    StrongA,
    StrongB,
    WeakA,
    WeakB,
    Blank,
}

impl State {
    /// The opinion an agent currently outputs, if any.
    #[cfg(test)]
    fn output(self) -> Option<Opinion> {
        match self {
            State::StrongA | State::WeakA => Some(Opinion::new(0)),
            State::StrongB | State::WeakB => Some(Opinion::new(1)),
            State::Blank => None,
        }
    }
}

/// Configuration for a population-protocol run. Also runnable through
/// the unified facade (`plurality-api`'s `PopulationEngine`; spec names
/// `"approx-majority"`, `"exact-majority"`), which consumes the
/// byte-identical RNG stream.
///
/// # Examples
///
/// ```
/// use plurality_baselines::{PopulationConfig, PopulationProtocol};
/// let result = PopulationConfig::new(PopulationProtocol::ExactMajority, 120, 70)
///     .with_seed(1)
///     .run();
/// assert_eq!(result.outcome.winner(), Some(plurality_core::Opinion::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    protocol: PopulationProtocol,
    n: u64,
    initial_a: u64,
    seed: u64,
    max_interactions: Option<u64>,
    topology: Topology,
    scenario: Scenario,
    trace: bool,
}

impl PopulationConfig {
    /// Creates a configuration for `n` agents of which `initial_a` start
    /// with opinion A (index 0) and the rest with B (index 1).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `initial_a > n`.
    pub fn new(protocol: PopulationProtocol, n: u64, initial_a: u64) -> Self {
        assert!(n >= 2, "population needs at least 2 agents");
        assert!(initial_a <= n, "initial_a cannot exceed n");
        Self {
            protocol,
            n,
            initial_a,
            seed: 0,
            max_interactions: None,
            topology: Topology::Complete,
            scenario: Scenario::new(),
            trace: false,
        }
    }

    /// Enables structured run tracing (default: off). Tracing consumes
    /// no process RNG, so the run outcome is byte-identical with the
    /// knob on or off; only [`PopulationResult::trace`] changes.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a time-scripted environment (default: the empty
    /// scenario). Event times are in *parallel time* (interactions
    /// divided by `n`, the protocols' native clock). Scheduler draws
    /// that pick a crashed agent — or fall inside a `burst-loss`
    /// window — consume a step without an interaction; `corrupt` and
    /// `join` overwrite agent states with fresh strong opinions (note
    /// that corruption voids the 4-state protocol's exactness guarantee,
    /// which is precisely what E18 measures); `latency:` shifts are
    /// no-ops in the sequential scheduler. The empty scenario consumes
    /// the byte-identical process RNG stream as before the subsystem
    /// existed.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the communication topology (default [`Topology::Complete`]).
    /// The sequential scheduler then draws each interacting pair as a
    /// uniformly random *directed edge* of the graph (initiator
    /// degree-proportional, responder a uniform neighbor), the standard
    /// population-protocol-on-graphs model. A run on an edgeless graph
    /// performs no interactions at all. Random graph families are
    /// rebuilt per run from `derive_seed(seed, TOPOLOGY_STREAM)`.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Builds from an [`InitialAssignment`] with `k = 2`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment has `k != 2`.
    pub fn from_assignment(
        protocol: PopulationProtocol,
        assignment: &InitialAssignment,
        seed: u64,
    ) -> Self {
        assert_eq!(assignment.k(), 2, "population protocols here are binary");
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let ops = assignment.materialize(&mut rng);
        let counts = OpinionCounts::tally(&ops, 2);
        Self::new(protocol, counts.n(), counts.support(Opinion::new(0))).with_seed(seed)
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of interactions (default: `500·n·ln n` for the
    /// 3-state protocol, `50·n² ln n / max(1, bias gap)` for the 4-state).
    pub fn with_max_interactions(mut self, max: u64) -> Self {
        self.max_interactions = Some(max);
        self
    }

    /// Runs the protocol.
    pub fn run(&self) -> PopulationResult {
        run_population(self)
    }
}

/// Result of a population-protocol run.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationResult {
    /// Which protocol ran.
    pub protocol: PopulationProtocol,
    /// Common outcome report; times are in *parallel time* (interactions
    /// divided by `n`).
    pub outcome: RunOutcome,
    /// Total pairwise interactions executed.
    pub interactions: u64,
    /// Whether the run converged (all agents output the same opinion and no
    /// strong opponents remain).
    pub converged: bool,
    /// Structured trace events, sorted by time (only when
    /// [`PopulationConfig::with_trace`] was enabled). Times are in
    /// *parallel time*, the protocols' native clock.
    pub trace: Option<Vec<TraceEvent>>,
}

fn run_population(cfg: &PopulationConfig) -> PopulationResult {
    let n = cfg.n as usize;
    // Private RNG stream: complete-graph runs reproduce the historical
    // results bitwise.
    let mut sampler = cfg
        .topology
        .build(n, derive_seed(cfg.seed, TOPOLOGY_STREAM))
        .expect("topology must be buildable for this population size");
    // `None` for the empty scenario: the zero-cost fast path.
    let mut env: Option<Environment> = cfg.scenario.for_run(n, 2, cfg.seed);
    let mut tracer = Tracer::new(cfg.trace);
    let mut rng = Xoshiro256PlusPlus::from_u64(cfg.seed);
    let mut states: Vec<State> = (0..n)
        .map(|i| {
            if (i as u64) < cfg.initial_a {
                State::StrongA
            } else {
                State::StrongB
            }
        })
        .collect();
    // Shuffle so agent index is independent of opinion.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        states.swap(i, j);
    }

    let initial_a = cfg.initial_a;
    let initial_b = cfg.n - cfg.initial_a;
    let initial_winner = if initial_a >= initial_b {
        Opinion::new(0)
    } else {
        Opinion::new(1)
    };
    let initial_bias = if initial_a >= initial_b {
        initial_a as f64 / initial_b.max(1) as f64
    } else {
        initial_b as f64 / initial_a.max(1) as f64
    };

    let nf = cfg.n as f64;
    let max_interactions = cfg.max_interactions.unwrap_or_else(|| {
        let derived = match cfg.protocol {
            PopulationProtocol::ApproximateMajority => (500.0 * nf * nf.ln()).ceil() as u64,
            PopulationProtocol::ExactMajority => {
                let gap = initial_a.abs_diff(initial_b).max(1) as f64;
                ((50.0 * nf * nf * nf.ln()) / gap).ceil() as u64
            }
        };
        // Scripted events (in parallel time) must actually fire.
        derived.max(((cfg.scenario.horizon() + 50.0) * nf).ceil() as u64)
    });

    // Incremental count of outputs per opinion, and of "unstable" agents
    // (blank, or weak opposing a remaining strong side).
    let count = |states: &[State]| -> (u64, u64, u64, u64, u64) {
        let (mut sa, mut sb, mut wa, mut wb, mut blank) = (0, 0, 0, 0, 0);
        for &s in states {
            match s {
                State::StrongA => sa += 1,
                State::StrongB => sb += 1,
                State::WeakA => wa += 1,
                State::WeakB => wb += 1,
                State::Blank => blank += 1,
            }
        }
        (sa, sb, wa, wb, blank)
    };

    let converged_now = |sa: u64, sb: u64, wa: u64, wb: u64, blank: u64| -> bool {
        let all_a = sb == 0 && wb == 0 && blank == 0;
        let all_b = sa == 0 && wa == 0 && blank == 0;
        all_a || all_b
    };

    let (mut sa, mut sb, mut wa, mut wb, mut blank) = count(&states);
    let mut interactions = 0u64;

    while !converged_now(sa, sb, wa, wb, blank) && interactions < max_interactions {
        if let Some(e) = env.as_mut() {
            let effects = e.poll(interactions as f64 / nf);
            if !effects.is_empty() {
                let now = interactions as f64 / nf;
                for effect in effects {
                    match effect {
                        Effect::Joined(joins) => {
                            tracer.emit(
                                now,
                                TraceKind::ScenarioEffect {
                                    name: "joined",
                                    count: joins.len() as u64,
                                },
                            );
                            for (v, c) in joins {
                                states[v as usize] = if c == 0 {
                                    State::StrongA
                                } else {
                                    State::StrongB
                                };
                            }
                        }
                        Effect::Corrupt { budget, mode } => {
                            // Blank agents map to the out-of-range color 2,
                            // hiding them from the *adaptive* adversary's
                            // support count (oblivious victims are uniform
                            // over all alive agents, Blank included);
                            // victims come back as strong opinions.
                            let colors: Vec<u32> = states
                                .iter()
                                .map(|s| match s {
                                    State::StrongA | State::WeakA => 0,
                                    State::StrongB | State::WeakB => 1,
                                    State::Blank => 2,
                                })
                                .collect();
                            let targets = e.corruption_targets(budget, mode, &colors, 2);
                            tracer.emit(
                                now,
                                TraceKind::ScenarioEffect {
                                    name: "corrupt",
                                    count: targets.len() as u64,
                                },
                            );
                            for (v, c) in targets {
                                states[v as usize] = if c == 0 {
                                    State::StrongA
                                } else {
                                    State::StrongB
                                };
                            }
                        }
                        Effect::Rewired(s) => {
                            tracer.emit(
                                now,
                                TraceKind::ScenarioEffect {
                                    name: "rewired",
                                    count: 1,
                                },
                            );
                            sampler = s;
                        }
                        _ => {}
                    }
                }
                // Bulk state edits: recompute the counters, then re-check
                // convergence before the next interaction.
                (sa, sb, wa, wb, blank) = count(&states);
                continue;
            }
        }
        // Ordered pair of distinct agents (initiator, responder); on a
        // graph: a uniformly random directed edge. An edgeless graph
        // admits no interaction — ever — so the run ends unconverged.
        let Some((iu, ju)) = sampler.sample_interaction_pair(&mut rng) else {
            break;
        };
        interactions += 1;
        if let Some(e) = env.as_mut() {
            // A step whose initiator or responder is crashed — or that
            // falls inside a loss burst — consumes scheduler time
            // without an interaction.
            if e.is_crashed(iu) || e.is_crashed(ju) || e.message_lost() {
                continue;
            }
        }
        let (i, j) = (iu as usize, ju as usize);
        let (x, y) = (states[i], states[j]);
        let (nx, ny) = match cfg.protocol {
            PopulationProtocol::ApproximateMajority => match (x, y) {
                (State::StrongA, State::StrongB) => (x, State::Blank),
                (State::StrongB, State::StrongA) => (x, State::Blank),
                (State::StrongA, State::Blank) => (x, State::StrongA),
                (State::StrongB, State::Blank) => (x, State::StrongB),
                _ => (x, y),
            },
            PopulationProtocol::ExactMajority => match (x, y) {
                // Strong tokens annihilate pairwise into weak ones; the
                // difference |A| − |B| is conserved.
                (State::StrongA, State::StrongB) => (State::WeakA, State::WeakB),
                (State::StrongB, State::StrongA) => (State::WeakB, State::WeakA),
                // A surviving strong side converts opposing weak tokens.
                (State::StrongA, State::WeakB) => (x, State::WeakA),
                (State::StrongB, State::WeakA) => (x, State::WeakB),
                _ => (x, y),
            },
        };
        if nx != x || ny != y {
            for (old, new) in [(x, nx), (y, ny)] {
                if old == new {
                    continue;
                }
                match old {
                    State::StrongA => sa -= 1,
                    State::StrongB => sb -= 1,
                    State::WeakA => wa -= 1,
                    State::WeakB => wb -= 1,
                    State::Blank => blank -= 1,
                }
                match new {
                    State::StrongA => sa += 1,
                    State::StrongB => sb += 1,
                    State::WeakA => wa += 1,
                    State::WeakB => wb += 1,
                    State::Blank => blank += 1,
                }
            }
            states[i] = nx;
            states[j] = ny;
        }
    }

    let converged = converged_now(sa, sb, wa, wb, blank);
    let final_counts = OpinionCounts::from_counts(vec![sa + wa, sb + wb]);
    let parallel_time = interactions as f64 / nf;
    let consensus_time = converged.then_some(parallel_time);
    if let Some(t) = consensus_time {
        tracer.emit(
            t,
            TraceKind::Milestone {
                name: "consensus",
                value: t,
            },
        );
    }

    let outcome = RunOutcome {
        n: cfg.n,
        k: 2,
        initial_winner,
        initial_bias,
        final_counts,
        epsilon_time: consensus_time,
        consensus_time,
        duration: parallel_time,
        generations: Vec::new(),
    };
    PopulationResult {
        protocol: cfg.protocol,
        outcome,
        interactions,
        converged,
        trace: tracer.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_output_mapping() {
        assert_eq!(State::StrongA.output(), Some(Opinion::new(0)));
        assert_eq!(State::WeakA.output(), Some(Opinion::new(0)));
        assert_eq!(State::StrongB.output(), Some(Opinion::new(1)));
        assert_eq!(State::WeakB.output(), Some(Opinion::new(1)));
        assert_eq!(State::Blank.output(), None);
    }

    #[test]
    fn approximate_majority_converges_with_clear_bias() {
        let r = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 1_000, 700)
            .with_seed(1)
            .run();
        assert!(r.converged, "did not converge");
        assert!(r.outcome.plurality_preserved());
        // O(n log n) interactions ⇒ parallel time O(log n); be generous.
        assert!(
            r.outcome.duration < 200.0,
            "parallel time {}",
            r.outcome.duration
        );
    }

    #[test]
    fn exact_majority_is_exact_even_with_minimal_bias() {
        // 51 vs 49: the 3-state protocol may err here; the 4-state never.
        for seed in 0..5 {
            let r = PopulationConfig::new(PopulationProtocol::ExactMajority, 100, 51)
                .with_seed(seed)
                .run();
            assert!(r.converged, "seed {seed} did not converge");
            assert_eq!(
                r.outcome.winner(),
                Some(Opinion::new(0)),
                "seed {seed} output the minority"
            );
        }
    }

    #[test]
    fn exact_majority_favors_b_when_b_larger() {
        let r = PopulationConfig::new(PopulationProtocol::ExactMajority, 100, 40)
            .with_seed(3)
            .run();
        assert!(r.converged);
        assert_eq!(r.outcome.winner(), Some(Opinion::new(1)));
    }

    #[test]
    fn exact_majority_slower_than_approximate_on_small_bias() {
        let approx = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 500, 300)
            .with_seed(4)
            .run();
        let exact = PopulationConfig::new(PopulationProtocol::ExactMajority, 500, 260)
            .with_seed(4)
            .run();
        assert!(approx.converged && exact.converged);
        assert!(
            exact.interactions > approx.interactions,
            "exact {} ≤ approx {}",
            exact.interactions,
            approx.interactions
        );
    }

    #[test]
    fn explicit_complete_topology_is_bitwise_identical_to_default() {
        let default = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 400, 260)
            .with_seed(9)
            .run();
        let explicit = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 400, 260)
            .with_seed(9)
            .with_topology(Topology::Complete)
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn sparse_expander_still_finds_the_majority() {
        let r = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 600, 420)
            .with_seed(10)
            .with_topology(Topology::Regular { d: 8 })
            .run();
        assert!(r.converged, "did not converge on the expander");
        assert_eq!(r.outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn edgeless_topology_never_interacts() {
        let r = PopulationConfig::new(PopulationProtocol::ExactMajority, 50, 30)
            .with_seed(11)
            .with_topology(Topology::ErdosRenyi { p: 0.0 })
            .run();
        assert!(!r.converged);
        assert_eq!(r.interactions, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let r1 = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 300, 200)
            .with_seed(7)
            .run();
        let r2 = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 300, 200)
            .with_seed(7)
            .run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn from_assignment_maps_counts() {
        let a = InitialAssignment::Exact(vec![60, 40]);
        let cfg = PopulationConfig::from_assignment(PopulationProtocol::ExactMajority, &a, 1);
        let r = cfg.run();
        assert_eq!(r.outcome.n, 100);
        assert_eq!(r.outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn from_assignment_rejects_k3() {
        let a = InitialAssignment::Uniform { n: 30, k: 3 };
        let _ = PopulationConfig::from_assignment(PopulationProtocol::ExactMajority, &a, 1);
    }

    #[test]
    fn empty_scenario_is_bitwise_identical_to_default() {
        let default = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 400, 260)
            .with_seed(13)
            .run();
        let explicit = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 400, 260)
            .with_seed(13)
            .with_scenario(Scenario::new())
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn corruption_can_defeat_exact_majority() {
        // The 4-state protocol's exactness rests on |A| − |B| being
        // conserved; a large adaptive corruption wave breaks the
        // conservation law, so the output may flip — deterministically
        // reproducible either way.
        let mk = || {
            PopulationConfig::new(PopulationProtocol::ExactMajority, 300, 160)
                .with_seed(14)
                .with_scenario(Scenario::parse("corrupt:0.4:adaptive@2").unwrap())
                .run()
        };
        let r = mk();
        assert_eq!(r, mk());
        assert!(r.converged, "did not converge");
        assert_eq!(
            r.outcome.winner(),
            Some(Opinion::new(1)),
            "a 40% adaptive flip of a 160/140 split must hand B the win"
        );
    }

    #[test]
    fn crash_churn_runs_deterministically_and_converges() {
        let mk = || {
            PopulationConfig::new(PopulationProtocol::ApproximateMajority, 500, 350)
                .with_seed(15)
                .with_scenario(Scenario::parse("crash:0.3@1;join:1@5;burst-loss:0.5@2..4").unwrap())
                .run()
        };
        let r = mk();
        assert_eq!(r, mk());
        assert!(r.converged, "did not converge");
    }

    #[test]
    fn tracing_off_is_bitwise_identical_to_default() {
        let plain = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 400, 260)
            .with_seed(16)
            .run();
        let knob = PopulationConfig::new(PopulationProtocol::ApproximateMajority, 400, 260)
            .with_seed(16)
            .with_trace(false)
            .run();
        assert_eq!(plain, knob);
        assert!(plain.trace.is_none());
    }

    #[test]
    fn tracing_on_changes_nothing_but_the_trace() {
        let plain = PopulationConfig::new(PopulationProtocol::ExactMajority, 300, 160)
            .with_seed(17)
            .with_scenario(Scenario::parse("corrupt:0.4:adaptive@2").unwrap())
            .run();
        let mut traced = PopulationConfig::new(PopulationProtocol::ExactMajority, 300, 160)
            .with_seed(17)
            .with_scenario(Scenario::parse("corrupt:0.4:adaptive@2").unwrap())
            .with_trace(true)
            .run();
        let events = traced.trace.take().expect("trace requested");
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(events.iter().any(|e| matches!(
            e.kind,
            TraceKind::ScenarioEffect {
                name: "corrupt",
                ..
            }
        )));
        assert!(traced.converged);
        assert!(events.iter().any(|e| matches!(
            e.kind,
            TraceKind::Milestone {
                name: "consensus",
                ..
            }
        )));
        assert_eq!(plain, traced);
    }

    #[test]
    fn interaction_cap_is_respected() {
        let r = PopulationConfig::new(PopulationProtocol::ExactMajority, 100, 50)
            .with_seed(5)
            .with_max_interactions(1_000)
            .run();
        assert!(r.interactions <= 1_000);
        // A perfect tie cannot converge to a single opinion.
        assert!(!r.converged);
    }
}
