//! **Experiments E8 + E13 — Theorem 13**: asynchronous single-leader
//! convergence times.
//!
//! Theorem 13 claims `ε`-convergence (all but a `1/polylog n` fraction on
//! the plurality opinion) in `O(log log_α k · log k + log log n)` time whp.,
//! and full convergence after `O(log n)` additional time. We sweep `n` and
//! `k` and report the ε-time, the full-consensus tail, and success rates.

use plurality_bench::{is_full, results_dir, run_many, theorem_bias};
use plurality_core::leader::LeaderConfig;
use plurality_core::InitialAssignment;
use plurality_stats::{fit, fmt_f64, Axis, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 8 } else { 3 };

    // Sweep 1: n at fixed k.
    let ns: &[u64] = if full {
        &[2_000, 5_000, 10_000, 20_000, 50_000, 100_000]
    } else {
        &[2_000, 5_000, 10_000, 20_000]
    };
    let k = 4u32;
    let mut t1 = Table::new(
        "Theorem 13 (a): async single-leader times vs n (k = 4, α at bound)",
        &[
            "n",
            "α₀",
            "ε-time (steps)",
            "full time",
            "tail/ln n",
            "success",
        ],
    );
    let mut xs = Vec::new();
    let mut tails = Vec::new();
    for &n in ns {
        let alpha = theorem_bias(n, k).max(1.2);
        let mut eps_t = OnlineStats::new();
        let mut full_t = OnlineStats::new();
        let mut tail_ratio = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_many(0xB13, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            LeaderConfig::new(assignment).with_seed(rep.seed).run()
        });
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            if let Some(f) = r.outcome.consensus_time {
                full_t.push(f);
                if let Some(e) = r.outcome.epsilon_time {
                    tail_ratio.push((f - e) / (n as f64).ln());
                }
            }
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        t1.row(&[
            n.to_string(),
            fmt_f64(alpha),
            fmt_f64(eps_t.mean()),
            fmt_f64(full_t.mean()),
            fmt_f64(tail_ratio.mean()),
            format!("{wins}/{reps}"),
        ]);
        xs.push(n as f64);
        tails.push(eps_t.mean());
    }
    println!("{}", t1.render());
    let f = fit(&xs, &tails, Axis::Log, Axis::Linear);
    println!(
        "ε-time vs ln n: slope {:.3}, R² {:.4} (paper: ε-time is O(log k·log log_α k + log log n) — nearly flat; the full-consensus tail is the Θ(log n) part)\n",
        f.slope, f.r_squared
    );

    // Sweep 2: k at fixed n.
    let n = if full { 50_000 } else { 20_000 };
    let ks: &[u32] = &[2, 4, 8, 16, 32, 64];
    let mut t2 = Table::new(
        format!("Theorem 13 (b): async single-leader times vs k (n = {n})"),
        &["k", "α₀", "ε-time (steps)", "ε-time (units)", "success"],
    );
    let mut kxs = Vec::new();
    let mut kys = Vec::new();
    for &k in ks {
        let alpha = theorem_bias(n, k).max(1.2);
        let mut eps_t = OnlineStats::new();
        let mut units = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_many(0xB14, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            LeaderConfig::new(assignment).with_seed(rep.seed).run()
        });
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
                units.push(e / r.steps_per_unit);
            }
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        t2.row(&[
            k.to_string(),
            fmt_f64(alpha),
            fmt_f64(eps_t.mean()),
            fmt_f64(units.mean()),
            format!("{wins}/{reps}"),
        ]);
        kxs.push(k as f64);
        kys.push(eps_t.mean());
    }
    println!("{}", t2.render());
    let f = fit(&kxs, &kys, Axis::Log, Axis::Linear);
    println!(
        "ε-time vs ln k: slope {:.3}, R² {:.4} (paper: O(log k · log log_α k))\n",
        f.slope, f.r_squared
    );

    let dir = results_dir();
    t1.write_csv(dir.join("thm13_async_vs_n.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("thm13_async_vs_k.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("thm13_async_vs_n.csv").display());
    println!("wrote {}", dir.join("thm13_async_vs_k.csv").display());
}
