//! **Experiment E14 — the PODC title claim**: positive aging suffices.
//!
//! The published title — *Positive Aging Admits Fast Asynchronous Plurality
//! Consensus* — names the property of the latency law that the analysis
//! needs: a non-decreasing hazard rate. We fix the expected latency at 1 and
//! swap the distribution family: exponential (constant hazard, the boundary
//! case), Erlang-2/Erlang-5 and Weibull 1.5/3 (strictly aging),
//! uniform [0, 2], and deterministic 1 (extreme aging). The time-unit
//! length `C1` and the ε-convergence time *in units* should be stable
//! across the family — that is the "positive aging admits" claim in
//! measurable form.

use plurality_bench::{is_full, results_dir, run_many, theorem_bias};
use plurality_core::leader::LeaderConfig;
use plurality_core::InitialAssignment;
use plurality_dist::{ChannelPattern, Latency, WaitingTime};
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 6 } else { 3 };
    let n: u64 = if full { 50_000 } else { 15_000 };
    let k = 4u32;
    let alpha = theorem_bias(n, k).max(1.5);

    let families: Vec<(&str, Latency)> = vec![
        ("exponential(1)", Latency::exponential(1.0).unwrap()),
        ("erlang(2, 2)", Latency::erlang(2, 2.0).unwrap()),
        ("erlang(5, 5)", Latency::erlang(5, 5.0).unwrap()),
        (
            "weibull(1.5)",
            Latency::weibull_with_mean(1.5, 1.0).unwrap(),
        ),
        ("weibull(3)", Latency::weibull_with_mean(3.0, 1.0).unwrap()),
        ("uniform[0,2)", Latency::uniform(0.0, 2.0).unwrap()),
        ("deterministic(1)", Latency::deterministic(1.0).unwrap()),
    ];

    let mut table = Table::new(
        format!(
            "Positive-aging ablation (n = {n}, k = {k}, α₀ = {:.3}, mean latency 1)",
            alpha
        ),
        &[
            "latency family",
            "aging",
            "C1 (steps)",
            "ε-time (steps)",
            "ε-time (units)",
            "success",
        ],
    );
    for (name, latency) in &families {
        assert!((latency.mean() - 1.0).abs() < 1e-9, "{name}: mean != 1");
        let wt = WaitingTime::new(*latency, ChannelPattern::SingleLeader);
        let c1 = wt.time_unit(if full { 200_000 } else { 50_000 }, 0xAB);
        let mut eps_t = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_many(0xB30, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            LeaderConfig::new(assignment)
                .with_seed(rep.seed)
                .with_latency(*latency)
                .with_steps_per_unit(c1)
                .run()
        });
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        table.row(&[
            name.to_string(),
            if latency.is_positive_aging() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            fmt_f64(c1),
            fmt_f64(eps_t.mean()),
            fmt_f64(eps_t.mean() / c1),
            format!("{wins}/{reps}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "claim under test: across positive-aging families at fixed mean latency, the unit-time\n\
         behaviour (ε-time in units, success rate) is stable — the analysis never used\n\
         memorylessness beyond the Γ majorant."
    );

    let path = results_dir().join("aging_ablation.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
