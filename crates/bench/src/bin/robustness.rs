//! **Extension experiment — failure injection**: how much signal loss and
//! clock heterogeneity does the single-leader protocol absorb?
//!
//! The paper's model is failure-free. Two perturbations probe the slack in
//! its thresholds:
//!
//! * **Signal loss**: each 0-/gen-signal towards the leader is dropped
//!   independently with probability `p`. The gen-size threshold `n/2` keeps
//!   firing while `(1 − p) > 1/2`, so the predicted cliff is at `p = 1/2`.
//! * **Stragglers**: a fraction of nodes tick at a slower rate; ε-convergence
//!   should degrade smoothly (the fast majority carries the generations),
//!   while full consensus waits for the slowest clocks.

use plurality_bench::{is_full, results_dir, run_many};
use plurality_core::leader::LeaderConfig;
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 8 } else { 4 };
    let n: u64 = if full { 20_000 } else { 8_000 };
    let k = 2u32;
    let alpha = 3.0;

    // --- Signal-loss sweep: cliff predicted at 50%.
    let losses = [0.0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.55, 0.7];
    let mut t1 = Table::new(
        format!("Signal-loss sweep (n = {n}, k = {k}, α₀ = {alpha})"),
        &["loss", "ε-time", "consensus rate", "generations allowed"],
    );
    for &loss in &losses {
        let mut eps_t = OnlineStats::new();
        let mut gens = OnlineStats::new();
        let mut converged = 0u64;
        let runs = run_many(0xB0B1, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            LeaderConfig::new(assignment)
                .with_seed(rep.seed)
                .with_signal_loss(loss)
                .run()
        });
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            gens.push(r.phases.len() as f64);
            if r.outcome.consensus_time.is_some() && r.outcome.plurality_preserved() {
                converged += 1;
            }
        }
        t1.row(&[
            fmt_f64(loss),
            if eps_t.count() > 0 {
                fmt_f64(eps_t.mean())
            } else {
                "-".into()
            },
            format!("{converged}/{reps}"),
            fmt_f64(gens.mean()),
        ]);
    }
    println!("{}", t1.render());
    println!("predicted cliff at loss = 0.5: the n/2 gen-size threshold stops firing.\n");

    // --- Straggler sweep.
    let mut t2 = Table::new(
        format!("Straggler sweep (n = {n}, k = {k}, α₀ = {alpha}; straggler rate 0.1)"),
        &["straggler fraction", "ε-time", "full time", "success"],
    );
    for &frac in &[0.0, 0.1, 0.2, 0.4] {
        let mut eps_t = OnlineStats::new();
        let mut full_t = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_many(0xB0B2, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            LeaderConfig::new(assignment)
                .with_seed(rep.seed)
                .with_stragglers(frac, 0.1)
                .run()
        });
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            if let Some(f) = r.outcome.consensus_time {
                full_t.push(f);
            }
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        t2.row(&[
            fmt_f64(frac),
            fmt_f64(eps_t.mean()),
            if full_t.count() > 0 {
                fmt_f64(full_t.mean())
            } else {
                "-".into()
            },
            format!("{wins}/{reps}"),
        ]);
    }
    println!("{}", t2.render());

    let dir = results_dir();
    t1.write_csv(dir.join("robustness_signal_loss.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("robustness_stragglers.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("robustness_signal_loss.csv").display());
    println!("wrote {}", dir.join("robustness_stragglers.csv").display());
}
