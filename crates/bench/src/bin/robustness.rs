//! **Experiment E19 — failure injection**: how much signal loss and
//! clock heterogeneity does the single-leader protocol absorb?
//!
//! The paper's model is failure-free. Two engine-level perturbations
//! probe the slack in its thresholds, plus the scenario-subsystem
//! equivalent for calibration — all three sweeps are single
//! [`plurality_api::RunSpec`] strings through the unified facade:
//!
//! * **Signal loss** (`loss=P`, also `--loss` on the CLI): each
//!   0-/gen-signal towards the leader is dropped independently with
//!   probability `p`. The gen-size threshold `n/2` keeps firing while
//!   `(1 − p) > 1/2`, so the predicted cliff is at `p = 1/2`.
//! * **Stragglers** (`stragglers=FRAC:RATE` / `--stragglers`): a
//!   fraction of nodes tick at a slower rate; ε-convergence should
//!   degrade smoothly (the fast majority carries the generations),
//!   while full consensus waits for the slowest clocks.
//! * **Scenario burst loss** (`scenario=burst-loss:P@0..H`): the
//!   scripted environment drops *every* message — peer channels as well
//!   as leader signals — so the same nominal `p` is a strictly stronger
//!   perturbation; the cliff must sit at or below the signal-only one.

use plurality_bench::{is_full, results_dir, run_spec_many};
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 8 } else { 4 };
    // Quick scale is kept small: the sweep deliberately includes
    // stalling regimes (loss past the 50% cliff, 10×-slow stragglers)
    // that run to their time caps, and cap-bound run time grows ~n².
    let n: u64 = if full { 20_000 } else { 4_000 };
    let k = 2u32;
    let alpha = 3.0;

    // --- Signal-loss sweep: cliff predicted at 50%.
    let losses = [0.0, 0.1, 0.2, 0.3, 0.4, 0.45, 0.55, 0.7];
    let mut t1 = Table::new(
        format!("Signal-loss sweep (n = {n}, k = {k}, α₀ = {alpha})"),
        &["loss", "ε-time", "consensus rate", "generations allowed"],
    );
    for &loss in &losses {
        let mut eps_t = OnlineStats::new();
        let mut gens = OnlineStats::new();
        let mut converged = 0u64;
        let runs = run_spec_many(
            &format!("leader?n={n}&k={k}&alpha={alpha}&loss={loss}"),
            0xB0B1,
            reps,
        );
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            gens.push(
                r.phases()
                    .expect("phases: present on every protocol=leader run spec")
                    .len() as f64,
            );
            if r.outcome.plurality_preserved() {
                converged += 1;
            }
        }
        t1.row(&[
            fmt_f64(loss),
            if eps_t.count() > 0 {
                fmt_f64(eps_t.mean())
            } else {
                "-".into()
            },
            format!("{converged}/{reps}"),
            fmt_f64(gens.mean()),
        ]);
    }
    println!("{}", t1.render());
    println!("predicted cliff at loss = 0.5: the n/2 gen-size threshold stops firing.\n");

    // --- Straggler sweep.
    let mut t2 = Table::new(
        format!("Straggler sweep (n = {n}, k = {k}, α₀ = {alpha}; straggler rate 0.1)"),
        &["straggler fraction", "ε-time", "full time", "success"],
    );
    for &frac in &[0.0, 0.1, 0.2, 0.4] {
        let mut eps_t = OnlineStats::new();
        let mut full_t = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_spec_many(
            &format!("leader?n={n}&k={k}&alpha={alpha}&stragglers={frac}:0.1"),
            0xB0B2,
            reps,
        );
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            if let Some(f) = r.outcome.consensus_time {
                full_t.push(f);
            }
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        t2.row(&[
            fmt_f64(frac),
            fmt_f64(eps_t.mean()),
            if full_t.count() > 0 {
                fmt_f64(full_t.mean())
            } else {
                "-".into()
            },
            format!("{wins}/{reps}"),
        ]);
    }
    println!("{}", t2.render());

    // --- Scenario-driven whole-run burst loss: same nominal p, but the
    // environment drops peer channels too, not just leader signals.
    let mut t3 = Table::new(
        format!("Scenario burst-loss sweep, all messages (n = {n}, k = {k}, α₀ = {alpha})"),
        &["loss", "ε-time", "consensus rate", "generations allowed"],
    );
    for &loss in &[0.0, 0.2, 0.4, 0.55] {
        let scenario_param = if loss == 0.0 {
            String::new()
        } else {
            // The window outlives any run: effectively a permanent regime.
            format!("&scenario=burst-loss:{loss}@0..1000000")
        };
        let mut eps_t = OnlineStats::new();
        let mut gens = OnlineStats::new();
        let mut converged = 0u64;
        let runs = run_spec_many(
            &format!("leader?n={n}&k={k}&alpha={alpha}{scenario_param}"),
            0xB0B3,
            reps,
        );
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            gens.push(
                r.phases()
                    .expect("phases: present on every protocol=leader run spec")
                    .len() as f64,
            );
            if r.outcome.plurality_preserved() {
                converged += 1;
            }
        }
        t3.row(&[
            fmt_f64(loss),
            if eps_t.count() > 0 {
                fmt_f64(eps_t.mean())
            } else {
                "-".into()
            },
            format!("{converged}/{reps}"),
            fmt_f64(gens.mean()),
        ]);
    }
    println!("{}", t3.render());

    let dir = results_dir();
    t1.write_csv(dir.join("robustness_signal_loss.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("robustness_stragglers.csv"))
        .expect("write csv");
    t3.write_csv(dir.join("robustness_scenario_loss.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("robustness_signal_loss.csv").display());
    println!("wrote {}", dir.join("robustness_stragglers.csv").display());
    println!(
        "wrote {}",
        dir.join("robustness_scenario_loss.csv").display()
    );
}
