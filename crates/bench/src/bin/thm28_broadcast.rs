//! **Experiment E11 — Theorem 28**: constant-time broadcast among cluster
//! leaders.
//!
//! Theorem 28 claims that a message held by one cluster leader reaches all
//! leaders of large-enough clusters in `O(1)` time. In the consensus phase
//! this broadcast is what carries each generation bump: the first leader to
//! allow generation `g` starts a push-pull epidemic through member relays.
//! We measure, for every generation, the time between the first and the
//! last cluster entering it — across `n` — and check the spread does not
//! grow with `n`.

use plurality_bench::{is_full, results_dir, run_many, theorem_bias};
use plurality_core::cluster::{ClusterConfig, ClusterPhase};
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 5 } else { 3 };
    let k = 4u32;

    let ns: &[u64] = if full {
        &[10_000, 20_000, 50_000, 100_000, 200_000]
    } else {
        &[10_000, 20_000, 50_000]
    };
    let mut table = Table::new(
        "Theorem 28: generation-bump broadcast spread across clusters",
        &[
            "n",
            "generations",
            "mean spread (units)",
            "max spread (units)",
            "switch spread (units)",
        ],
    );
    for &n in ns {
        let alpha = theorem_bias(n, k).max(1.3);
        let mut spreads = OnlineStats::new();
        let mut switch_spread = OnlineStats::new();
        let mut gens = 0u32;
        let runs = run_many(0xB29, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            ClusterConfig::new(assignment).with_seed(rep.seed).run()
        });
        for r in &runs {
            let c1 = r.steps_per_unit;
            for (g, first, last) in r.phase_spread(ClusterPhase::TwoChoices) {
                // Generation 1 starts with the consensus switch itself.
                if g >= 2 {
                    spreads.push((last - first) / c1);
                    gens = gens.max(g);
                }
            }
            if let (Some(a), Some(b)) = (r.first_switch_time, r.last_switch_time) {
                switch_spread.push((b - a) / c1);
            }
        }
        table.row(&[
            n.to_string(),
            gens.to_string(),
            fmt_f64(spreads.mean()),
            fmt_f64(spreads.max()),
            fmt_f64(switch_spread.mean()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: every spread is O(1) time units independent of n (constant-time broadcast, Thm 28)."
    );

    let path = results_dir().join("thm28_broadcast.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
