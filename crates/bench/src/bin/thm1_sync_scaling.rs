//! **Experiment E3 — Theorem 1**: synchronous convergence time scaling.
//!
//! Theorem 1 claims convergence towards the initial plurality opinion in
//! `O(log k · log log_α k + log log n)` rounds whp. for `k ≤ n^ε` and bias
//! `α > 1 + (k log n/√n) log k`. Three sweeps probe the three knobs:
//!
//! * `n` at fixed `k` (bias at the theorem bound): rounds should grow like
//!   `log log n` once the `log k` term saturates — i.e. barely at all;
//! * `k` at fixed `n`: rounds should grow roughly linearly in `log k`;
//! * `α` at fixed `(n, k)`: rounds should *shrink* as `log log_α k` does.

use plurality_bench::{is_full, results_dir, run_many, theorem_bias};
use plurality_core::sync::SyncConfig;
use plurality_core::InitialAssignment;
use plurality_stats::{fit, fmt_f64, Axis, OnlineStats, Table};

fn run_cell(
    n: u64,
    k: u32,
    alpha: f64,
    reps: usize,
    master: u64,
) -> (OnlineStats, OnlineStats, u64) {
    let mut rounds = OnlineStats::new();
    let mut eps_rounds = OnlineStats::new();
    let mut wins = 0u64;
    let runs = run_many(master, reps, |rep| {
        let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
        SyncConfig::new(assignment).with_seed(rep.seed).run()
    });
    for r in &runs {
        rounds.push(r.rounds as f64);
        if let Some(e) = r.outcome.epsilon_time {
            eps_rounds.push(e);
        }
        if r.outcome.plurality_preserved() {
            wins += 1;
        }
    }
    (rounds, eps_rounds, wins)
}

fn main() {
    let full = is_full();
    let reps = if full { 10 } else { 3 };

    // Sweep 1: n at fixed k.
    let ns: &[u64] = if full {
        &[1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000]
    } else {
        &[1_000, 3_000, 10_000, 30_000, 100_000]
    };
    let k = 16u32;
    let mut t1 = Table::new(
        "Theorem 1 (a): rounds vs n (k = 16, α at theorem bound)",
        &["n", "α₀", "rounds (mean)", "sd", "ε-rounds", "success"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let alpha = theorem_bias(n, k);
        let (rounds, eps, wins) = run_cell(n, k, alpha, reps, 0xA1);
        t1.row(&[
            n.to_string(),
            fmt_f64(alpha),
            fmt_f64(rounds.mean()),
            fmt_f64(rounds.sample_sd()),
            fmt_f64(eps.mean()),
            format!("{wins}/{reps}"),
        ]);
        xs.push(n as f64);
        ys.push(rounds.mean());
    }
    println!("{}", t1.render());
    let f = fit(&xs, &ys, Axis::LogLog, Axis::Linear);
    println!(
        "rounds vs ln ln n: slope {:.3}, R² {:.4} (paper: additive O(log log n) term)\n",
        f.slope, f.r_squared
    );

    // Sweep 2: k at fixed n.
    let n = if full { 300_000 } else { 100_000 };
    let ks: &[u32] = &[2, 4, 8, 16, 32, 64, 128];
    let mut t2 = Table::new(
        format!("Theorem 1 (b): rounds vs k (n = {n}, α at theorem bound)"),
        &["k", "α₀", "rounds (mean)", "sd", "success"],
    );
    let mut kxs = Vec::new();
    let mut kys = Vec::new();
    for &k in ks {
        let alpha = theorem_bias(n, k);
        let (rounds, _, wins) = run_cell(n, k, alpha, reps, 0xA2);
        t2.row(&[
            k.to_string(),
            fmt_f64(alpha),
            fmt_f64(rounds.mean()),
            fmt_f64(rounds.sample_sd()),
            format!("{wins}/{reps}"),
        ]);
        kxs.push(k as f64);
        kys.push(rounds.mean());
    }
    println!("{}", t2.render());
    let f = fit(&kxs, &kys, Axis::Log, Axis::Linear);
    println!(
        "rounds vs ln k: slope {:.3}, R² {:.4} (paper: O(log k · log log_α k))\n",
        f.slope, f.r_squared
    );

    // Sweep 3: α at fixed (n, k).
    let (n, k) = (if full { 300_000 } else { 100_000 }, 16u32);
    let base = theorem_bias(n, k);
    let alphas = [base, 1.1, 1.25, 1.5, 2.0, 4.0, 16.0];
    let mut t3 = Table::new(
        format!("Theorem 1 (c): rounds vs α₀ (n = {n}, k = {k})"),
        &["α₀", "rounds (mean)", "sd", "ε-rounds", "success"],
    );
    for &alpha in &alphas {
        let (rounds, eps, wins) = run_cell(n, k, alpha, reps, 0xA3);
        t3.row(&[
            fmt_f64(alpha),
            fmt_f64(rounds.mean()),
            fmt_f64(rounds.sample_sd()),
            fmt_f64(eps.mean()),
            format!("{wins}/{reps}"),
        ]);
    }
    println!("{}", t3.render());

    for (name, table) in [
        ("thm1_sync_vs_n.csv", &t1),
        ("thm1_sync_vs_k.csv", &t2),
        ("thm1_sync_vs_alpha.csv", &t3),
    ] {
        let path = results_dir().join(name);
        table.write_csv(&path).expect("write csv");
        println!("wrote {}", path.display());
    }
}
