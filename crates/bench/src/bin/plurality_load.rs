//! **plurality_load** — load generator and latency gate for the
//! `plurality-serve` daemon.
//!
//! Drives N concurrent keep-alive connections at a configurable
//! hot/cold mix against a running server, measures end-to-end latency
//! percentiles and throughput, and writes
//! `benchmarks/BENCH_serve.json` in the established snapshot format
//! (directory overridable via `PLURALITY_BENCH_JSON`). The CI `serve`
//! job uses the `--assert-*` flags as its load gate.
//!
//! ## Workload model
//!
//! Each connection issues `--requests` requests: a deterministic
//! Bresenham-style interleave classifies request *i* as **hot** iff
//! `ceil((i+1)·f) > ceil(i·f)` for hot fraction `f` — so exactly
//! `ceil(requests·f)` requests cycle through the `--hot-pairs` shared
//! `(spec, seed)` pairs and the rest get a globally unique cold seed.
//! The ceiling (not an RNG draw) matters: the realized hot fraction is
//! *never below* `f`, which is what makes the `--assert-hit-rate` gate
//! sound. Before measurement, a warmup pass requests every hot pair
//! once (uncounted) so each measured hot request finds the cache
//! populated; hits are counted client-side from the server's `X-Cache`
//! header.
//!
//! Closed loop by default (next request starts when the previous
//! response lands); `--rate R` switches to an open loop where request
//! *i* of each connection is scheduled at `i · connections / R`
//! seconds from the start, regardless of response latency.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p plurality-bench --bin plurality_load -- \
//!     --addr 127.0.0.1:8080 --connections 8 --requests 200 \
//!     --hot-fraction 0.5 --assert-no-5xx --assert-hit-rate 0.5 \
//!     --assert-p99-ms 5000
//! ```

use plurality_obs::{validate_exposition, Histogram};
use plurality_serve::{run_target, HttpClient};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const USAGE: &str = "\
plurality_load: load generator and latency gate for plurality-serve

USAGE:
    plurality_load --addr <HOST:PORT> [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>        server to drive (required)
    --connections <N>         concurrent keep-alive connections [default: 8]
    --requests <N>            requests per connection           [default: 200]
    --hot-fraction <F>        fraction of requests drawn from the shared
                              hot set, 0..=1                    [default: 0.5]
    --hot-pairs <N>           size of the shared hot (spec, seed) set
                                                                [default: 8]
    --spec <SPEC>             base RunSpec (seed appended per request)
                              [default: sync?n=400&k=2&alpha=3.0]
    --rate <R>                open-loop target, total specs/sec across all
                              connections (closed loop if absent)
    --assert-no-5xx           exit non-zero on any 5xx response
    --assert-hit-rate <F>     exit non-zero if the measured cache hit rate
                              is below F
    --assert-p99-ms <MS>      exit non-zero if p99 latency is >= MS
    --scrape-metrics          GET /metrics mid-load and exit non-zero unless
                              it parses as Prometheus text exposition with
                              the request-latency histogram present
    --help                    print this help

Writes benchmarks/BENCH_serve.json (dir overridable via PLURALITY_BENCH_JSON).
";

#[derive(Clone)]
struct Config {
    addr: SocketAddr,
    connections: usize,
    requests: usize,
    hot_fraction: f64,
    hot_pairs: u64,
    spec: String,
    rate: Option<f64>,
    assert_no_5xx: bool,
    assert_hit_rate: Option<f64>,
    assert_p99_ms: Option<f64>,
    scrape_metrics: bool,
}

/// Per-connection tallies, merged after the join. Latencies go straight
/// into the shared log-bucket [`Histogram`] — O(1) per sample, no
/// per-request allocation, quantiles within one bucket width
/// (≤ 1/16 relative error) of the exact nearest-rank value.
#[derive(Default)]
struct Tally {
    hits: u64,
    status_200: u64,
    status_429: u64,
    status_5xx: u64,
    status_other: u64,
}

fn parse_args() -> Config {
    let mut addr = None;
    let mut config = Config {
        addr: "127.0.0.1:0".parse().expect("placeholder addr"),
        connections: 8,
        requests: 200,
        hot_fraction: 0.5,
        hot_pairs: 8,
        spec: "sync?n=400&k=2&alpha=3.0".to_string(),
        rate: None,
        assert_no_5xx: false,
        assert_hit_rate: None,
        assert_p99_ms: None,
        scrape_metrics: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = Some(parse(&value("--addr"), "--addr")),
            "--connections" => config.connections = parse(&value("--connections"), "--connections"),
            "--requests" => config.requests = parse(&value("--requests"), "--requests"),
            "--hot-fraction" => {
                config.hot_fraction = parse(&value("--hot-fraction"), "--hot-fraction");
            }
            "--hot-pairs" => config.hot_pairs = parse(&value("--hot-pairs"), "--hot-pairs"),
            "--spec" => config.spec = value("--spec"),
            "--rate" => config.rate = Some(parse(&value("--rate"), "--rate")),
            "--assert-no-5xx" => config.assert_no_5xx = true,
            "--assert-hit-rate" => {
                config.assert_hit_rate =
                    Some(parse(&value("--assert-hit-rate"), "--assert-hit-rate"));
            }
            "--assert-p99-ms" => {
                config.assert_p99_ms = Some(parse(&value("--assert-p99-ms"), "--assert-p99-ms"));
            }
            "--scrape-metrics" => config.scrape_metrics = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    config.addr = addr.unwrap_or_else(|| {
        eprintln!("error: --addr is required\n\n{USAGE}");
        std::process::exit(2);
    });
    assert!(
        (0.0..=1.0).contains(&config.hot_fraction),
        "--hot-fraction must be within 0..=1"
    );
    assert!(config.connections > 0 && config.requests > 0 && config.hot_pairs > 0);
    config
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} got {value:?}\n\n{USAGE}");
        std::process::exit(2);
    })
}

/// Request `i` is hot iff the ceiling interleave steps at `i` — exactly
/// `ceil(requests · f)` hot requests, evenly spread.
fn is_hot(i: usize, f: f64) -> bool {
    let step = |x: usize| (x as f64 * f).ceil() as u64;
    step(i + 1) > step(i)
}

fn drive_connection(
    config: &Config,
    conn: usize,
    start_gun: &Barrier,
    latencies: &Histogram,
) -> Tally {
    let mut client = HttpClient::connect(config.addr).expect("connect to server");
    client
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("socket option");

    // Warmup: touch every hot pair once so measured hot requests find
    // the cache populated. Uncounted, and racing warmups across
    // connections are fine — the first one in wins, the rest are hits.
    for seed in 1..=config.hot_pairs {
        let response = client
            .get(&run_target(&config.spec, Some(seed)))
            .expect("warmup request");
        assert!(
            response.status == 200 || response.status == 429,
            "warmup got {}: {}",
            response.status,
            response.body
        );
    }

    start_gun.wait();
    let started = Instant::now();
    let interval = config
        .rate
        .map(|rate| Duration::from_secs_f64(config.connections as f64 / rate));
    let mut tally = Tally::default();
    let mut hot_cursor = conn as u64; // de-phase connections across the hot set
    for i in 0..config.requests {
        if let Some(interval) = interval {
            // Open loop: request i fires on its schedule slot no matter
            // how long earlier responses took (no coordinated omission).
            let due = started + interval.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let seed = if is_hot(i, config.hot_fraction) {
            hot_cursor += 1;
            1 + (hot_cursor % config.hot_pairs)
        } else {
            // Globally unique cold seed: never shared, never re-used.
            1_000_000 + (conn * config.requests + i) as u64
        };
        let sent = Instant::now();
        let response = client
            .get(&run_target(&config.spec, Some(seed)))
            .expect("request");
        latencies.record(sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        match response.status {
            200 => {
                tally.status_200 += 1;
                if response.cache_disposition() == Some("hit") {
                    tally.hits += 1;
                }
            }
            429 => tally.status_429 += 1,
            500..=599 => tally.status_5xx += 1,
            _ => tally.status_other += 1,
        }
    }
    tally
}

/// Scrapes `/metrics` from its own connection while the load is in
/// flight and checks it parses as Prometheus text exposition with the
/// request-latency histogram present. Returns an error description on
/// failure instead of panicking so it can feed the gate summary.
fn scrape_metrics_midload(addr: SocketAddr) -> Result<(), String> {
    let mut client =
        HttpClient::connect(addr).map_err(|e| format!("metrics scrape connect: {e}"))?;
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("metrics scrape socket option: {e}"))?;
    let response = client
        .get("/metrics")
        .map_err(|e| format!("metrics scrape request: {e}"))?;
    if response.status != 200 {
        return Err(format!("/metrics answered {}", response.status));
    }
    validate_exposition(&response.body)
        .map_err(|e| format!("/metrics is not valid exposition format: {e}"))?;
    for needle in [
        "# TYPE plurality_request_latency_us histogram",
        "plurality_request_latency_us_bucket{le=\"+Inf\"}",
        "# TYPE plurality_requests_total counter",
    ] {
        if !response.body.contains(needle) {
            return Err(format!("/metrics is missing {needle:?}"));
        }
    }
    Ok(())
}

fn snapshot_dir() -> PathBuf {
    std::env::var(criterion::BENCH_JSON_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("benchmarks"))
}

fn main() {
    let config = parse_args();
    println!(
        "driving http://{} — {} connections × {} requests, hot fraction {} over {} pairs, {}",
        config.addr,
        config.connections,
        config.requests,
        config.hot_fraction,
        config.hot_pairs,
        match config.rate {
            Some(rate) => format!("open loop at {rate} specs/sec"),
            None => "closed loop".to_string(),
        },
    );

    let start_gun = Arc::new(Barrier::new(config.connections + 1));
    let latencies = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..config.connections)
        .map(|conn| {
            let config = config.clone();
            let start_gun = Arc::clone(&start_gun);
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || drive_connection(&config, conn, &start_gun, &latencies))
        })
        .collect();
    start_gun.wait();
    let measured_from = Instant::now();
    // Scrape /metrics while the workers are mid-flight, from a
    // dedicated connection — this is the CI exposition-format check.
    let scrape_result = config
        .scrape_metrics
        .then(|| scrape_metrics_midload(config.addr));
    let tallies: Vec<Tally> = workers
        .into_iter()
        .map(|w| w.join().expect("connection thread"))
        .collect();
    let elapsed = measured_from.elapsed();

    let total = latencies.count() as f64;
    let sum = |f: fn(&Tally) -> u64| tallies.iter().map(f).sum::<u64>();
    let (hits, ok) = (sum(|t| t.hits), sum(|t| t.status_200));
    let hit_rate = if ok == 0 {
        0.0
    } else {
        hits as f64 / ok as f64
    };
    let specs_per_sec = total / elapsed.as_secs_f64();
    let (p50, p95, p99) = (
        latencies.quantile(0.50) as f64 / 1_000.0,
        latencies.quantile(0.95) as f64 / 1_000.0,
        latencies.quantile(0.99) as f64 / 1_000.0,
    );

    let metrics: Vec<(String, f64)> = vec![
        ("serve/specs_per_sec".into(), specs_per_sec),
        ("serve/p50_ms".into(), p50),
        ("serve/p95_ms".into(), p95),
        ("serve/p99_ms".into(), p99),
        ("serve/hit_rate".into(), hit_rate),
        ("serve/requests".into(), total),
        ("serve/connections".into(), config.connections as f64),
        ("serve/hot_fraction".into(), config.hot_fraction),
        ("serve/status_200".into(), ok as f64),
        ("serve/status_429".into(), sum(|t| t.status_429) as f64),
        ("serve/status_5xx".into(), sum(|t| t.status_5xx) as f64),
        ("serve/status_other".into(), sum(|t| t.status_other) as f64),
    ];
    let path = snapshot_dir().join("BENCH_serve.json");
    criterion::write_suite_json(
        &path,
        "serve_load",
        "latency ms (…_ms), throughput specs/sec, counts and ratios otherwise",
        &metrics,
    )
    .expect("write snapshot");
    println!(
        "{:.1} specs/sec | p50 {p50:.1} ms, p95 {p95:.1} ms, p99 {p99:.1} ms | \
         hit rate {hit_rate:.3} | wrote {}",
        specs_per_sec,
        path.display()
    );

    let mut failures = Vec::new();
    if config.assert_no_5xx && sum(|t| t.status_5xx) > 0 {
        failures.push(format!("{} responses were 5xx", sum(|t| t.status_5xx)));
    }
    if let Some(floor) = config.assert_hit_rate {
        if hit_rate < floor {
            failures.push(format!("hit rate {hit_rate:.3} is below the {floor} floor"));
        }
    }
    if let Some(bound) = config.assert_p99_ms {
        if p99 >= bound {
            failures.push(format!("p99 {p99:.1} ms is not under the {bound} ms bound"));
        }
    }
    if let Some(Err(reason)) = scrape_result {
        failures.push(format!("mid-load metrics scrape failed: {reason}"));
    } else if config.scrape_metrics {
        println!("mid-load /metrics scrape: valid exposition format");
    }
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("load gate FAILED: {failure}");
        }
        std::process::exit(1);
    }
    println!("load gate passed");
}
