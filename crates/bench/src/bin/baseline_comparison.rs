//! **Experiment E12 — related-work comparison**: the generation protocol vs
//! the classic dynamics.
//!
//! The paper's positioning (Section 1.1): 3-majority needs `Θ(k log n)`
//! rounds, pull voting `Ω(n)`, while the generation protocol needs
//! `O(log k · log log_α k + log log n)`. We race them on identical
//! instances across `k` (where the separation grows) and also run the
//! two-opinion population protocols for the parallel-time comparison.
//!
//! Every race goes through the unified facade: one [`plurality_api::RunSpec`]
//! string per contender, no per-engine dispatch. Repetition seeds come
//! from the same `derive_seed` stream as before the conversion, so the
//! recorded numbers are unchanged.

use plurality_bench::{is_full, results_dir, run_spec_many};
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 6 } else { 3 };
    let n: u64 = if full { 100_000 } else { 30_000 };
    let alpha = 2.0;

    let ks: &[u32] = &[2, 4, 8, 16, 32, 64];
    let mut table = Table::new(
        format!("Rounds to consensus vs k (n = {n}, α₀ = {alpha}); '-' = hit round cap"),
        &[
            "k",
            "generations (ours)",
            "3-majority",
            "two-choices",
            "undecided",
            "pull-voting",
        ],
    );
    // Cap baselines so pull voting does not dominate the wall-clock.
    let cap = 4_000u64;
    const BASELINES: [&str; 4] = ["3-majority", "two-choices", "undecided", "pull"];
    for &k in ks {
        let cell_for = |spec: &str, master: u64| -> String {
            let mut stats = OnlineStats::new();
            let mut timeouts = 0u32;
            for report in run_spec_many(spec, master, reps) {
                match report.outcome.consensus_time {
                    Some(t) => stats.push(t),
                    None => timeouts += 1,
                }
            }
            if timeouts > 0 {
                format!("- ({timeouts}/{reps} capped)")
            } else {
                fmt_f64(stats.mean())
            }
        };
        let mut row = vec![
            k.to_string(),
            cell_for(&format!("sync?n={n}&k={k}&alpha={alpha}"), 0xB12),
        ];
        for baseline in BASELINES {
            row.push(cell_for(
                &format!("{baseline}?n={n}&k={k}&alpha={alpha}&max={cap}"),
                0xB12,
            ));
        }
        table.row(&row);
    }
    println!("{}", table.render());
    println!(
        "expected shape: ours grows ~log k; 3-majority ~k·log n (loses badly at large k);\n\
         two-choices stalls for large k at this bias; pull voting needs Ω(n) rounds.\n"
    );

    // Two-opinion population protocols (parallel time).
    let pop_n: u64 = if full { 20_000 } else { 5_000 };
    let mut t2 = Table::new(
        format!("Population protocols, two opinions (n = {pop_n}): parallel time"),
        &[
            "initial A",
            "protocol",
            "parallel time",
            "interactions",
            "correct",
        ],
    );
    for &(frac, label) in &[(0.6f64, "60/40"), (0.52f64, "52/48")] {
        let a = (pop_n as f64 * frac) as u64;
        for protocol in ["approx-majority", "exact-majority"] {
            let mut time = OnlineStats::new();
            let mut inter = OnlineStats::new();
            let mut correct = 0u64;
            let runs = run_spec_many(&format!("{protocol}?n={pop_n}&a={a}"), 0xB15, reps);
            for r in &runs {
                time.push(r.outcome.duration);
                inter.push(r.interactions().expect(
                    "interactions: present on every approx-majority/exact-majority run spec",
                ) as f64);
                if r.outcome.plurality_preserved() {
                    correct += 1;
                }
            }
            t2.row(&[
                label.to_string(),
                r_name(&runs),
                fmt_f64(time.mean()),
                fmt_f64(inter.mean()),
                format!("{correct}/{reps}"),
            ]);
        }
    }
    println!("{}", t2.render());

    let dir = results_dir();
    table
        .write_csv(dir.join("baseline_comparison.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("baseline_population.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("baseline_comparison.csv").display());
    println!("wrote {}", dir.join("baseline_population.csv").display());
}

/// The descriptive protocol name of a batch of population reports (all
/// repetitions ran the same protocol).
fn r_name(runs: &[plurality_api::Report]) -> String {
    match &runs[0].telemetry {
        plurality_api::Telemetry::Population(t) => t.protocol.name().to_string(),
        other => panic!("expected population telemetry, got {other:?}"),
    }
}
