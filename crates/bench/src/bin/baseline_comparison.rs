//! **Experiment E12 — related-work comparison**: the generation protocol vs
//! the classic dynamics.
//!
//! The paper's positioning (Section 1.1): 3-majority needs `Θ(k log n)`
//! rounds, pull voting `Ω(n)`, while the generation protocol needs
//! `O(log k · log log_α k + log log n)`. We race them on identical
//! instances across `k` (where the separation grows) and also run the
//! two-opinion population protocols for the parallel-time comparison.

use plurality_baselines::{Dynamics, DynamicsConfig, PopulationConfig, PopulationProtocol};
use plurality_bench::{is_full, results_dir, run_many};
use plurality_core::sync::SyncConfig;
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 6 } else { 3 };
    let n: u64 = if full { 100_000 } else { 30_000 };
    let alpha = 2.0;

    let ks: &[u32] = &[2, 4, 8, 16, 32, 64];
    let mut table = Table::new(
        format!("Rounds to consensus vs k (n = {n}, α₀ = {alpha}); '-' = hit round cap"),
        &[
            "k",
            "generations (ours)",
            "3-majority",
            "two-choices",
            "undecided",
            "pull-voting",
        ],
    );
    // Cap baselines so pull voting does not dominate the wall-clock.
    let cap = 4_000u64;
    const KINDS: [Dynamics; 4] = [
        Dynamics::ThreeMajority,
        Dynamics::TwoChoices,
        Dynamics::Undecided,
        Dynamics::PullVoting,
    ];
    for &k in ks {
        let mut ours = OnlineStats::new();
        let mut per_dyn = KINDS.map(|dynamics| (dynamics, OnlineStats::new(), 0u32));
        let runs = run_many(0xB12, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            let ours_time = SyncConfig::new(assignment.clone())
                .with_seed(rep.seed)
                .run()
                .outcome
                .consensus_time;
            let dyn_times = KINDS.map(|dynamics| {
                DynamicsConfig::new(dynamics, assignment.clone())
                    .with_seed(rep.seed)
                    .with_max_rounds(cap)
                    .run()
                    .outcome
                    .consensus_time
            });
            (ours_time, dyn_times)
        });
        for (ours_time, dyn_times) in &runs {
            if let Some(t) = ours_time {
                ours.push(*t);
            }
            for (time, (_, stats, timeouts)) in dyn_times.iter().zip(per_dyn.iter_mut()) {
                match time {
                    Some(t) => stats.push(*t),
                    None => *timeouts += 1,
                }
            }
        }
        let cell = |stats: &OnlineStats, timeouts: u32| -> String {
            if timeouts > 0 {
                format!("- ({timeouts}/{reps} capped)")
            } else {
                fmt_f64(stats.mean())
            }
        };
        table.row(&[
            k.to_string(),
            fmt_f64(ours.mean()),
            cell(&per_dyn[0].1, per_dyn[0].2),
            cell(&per_dyn[1].1, per_dyn[1].2),
            cell(&per_dyn[2].1, per_dyn[2].2),
            cell(&per_dyn[3].1, per_dyn[3].2),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: ours grows ~log k; 3-majority ~k·log n (loses badly at large k);\n\
         two-choices stalls for large k at this bias; pull voting needs Ω(n) rounds.\n"
    );

    // Two-opinion population protocols (parallel time).
    let pop_n: u64 = if full { 20_000 } else { 5_000 };
    let mut t2 = Table::new(
        format!("Population protocols, two opinions (n = {pop_n}): parallel time"),
        &[
            "initial A",
            "protocol",
            "parallel time",
            "interactions",
            "correct",
        ],
    );
    for &(frac, label) in &[(0.6f64, "60/40"), (0.52f64, "52/48")] {
        let a = (pop_n as f64 * frac) as u64;
        for protocol in [
            PopulationProtocol::ApproximateMajority,
            PopulationProtocol::ExactMajority,
        ] {
            let mut time = OnlineStats::new();
            let mut inter = OnlineStats::new();
            let mut correct = 0u64;
            let runs = run_many(0xB15, reps, |rep| {
                PopulationConfig::new(protocol, pop_n, a)
                    .with_seed(rep.seed)
                    .run()
            });
            for r in &runs {
                time.push(r.outcome.duration);
                inter.push(r.interactions as f64);
                if r.converged && r.outcome.plurality_preserved() {
                    correct += 1;
                }
            }
            t2.row(&[
                label.to_string(),
                protocol.name().to_string(),
                fmt_f64(time.mean()),
                fmt_f64(inter.mean()),
                format!("{correct}/{reps}"),
            ]);
        }
    }
    println!("{}", t2.render());

    let dir = results_dir();
    table
        .write_csv(dir.join("baseline_comparison.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("baseline_population.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("baseline_comparison.csv").display());
    println!("wrote {}", dir.join("baseline_population.csv").display());
}
