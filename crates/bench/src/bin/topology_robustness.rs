//! **Experiment E17 — communication topology**: consensus time and
//! correctness rate of the paper's protocols on arbitrary graphs.
//!
//! The paper assumes the complete graph. Related work (*Rapid
//! Asynchronous Plurality Consensus*, Elsässer et al.; *Asynchronous
//! 3-Majority Dynamics with Many Opinions*, Cooper et al.) studies the
//! same dynamics on restricted interaction structures; this sweep runs
//! the synchronous protocol (rounds) and the asynchronous single-leader
//! protocol (time steps) across graph families and densities — each
//! cell one [`plurality_api::RunSpec`] string through the unified
//! facade:
//!
//! * complete (baseline), random `d`-regular (expanders), `G(n, p)` at
//!   two densities, preferential attachment (heavy-tailed), 2-D torus
//!   and ring (high-diameter lattices);
//! * per family: ε-convergence rate, full-consensus rate, mean times
//!   among converged runs, and the plurality-preservation rate.
//!
//! Expected shape: expanders track the complete graph closely, sparse
//! `G(n, p)` pays a modest slowdown, and the lattices break — the ring's
//! diameter makes generation spreading linear in `n`, and on any sparse
//! graph minority pockets promoted to the top generation can survive
//! forever (the whp full-consensus claim is complete-graph-specific), so
//! ε-convergence is the honest success metric off the complete graph.

use plurality_bench::{is_full, results_dir, run_spec_many};
use plurality_stats::{fmt_f64, OnlineStats, Table};
use plurality_topology::Topology;

struct FamilyRow {
    label: String,
    eps_rate: f64,
    full_rate: f64,
    preserved_rate: f64,
    eps_time: OnlineStats,
    full_time: OnlineStats,
}

/// Runs one spec template (`{}` marks the topology slot) across the
/// graph families; rates and times come from the shared outcome, so no
/// per-engine result handling is needed.
fn sweep(
    topologies: &[Topology],
    reps: usize,
    master: u64,
    spec_for: impl Fn(&Topology) -> String,
) -> Vec<FamilyRow> {
    topologies
        .iter()
        .map(|topology| {
            let runs = run_spec_many(&spec_for(topology), master, reps);
            let mut row = FamilyRow {
                label: topology.label(),
                eps_rate: 0.0,
                full_rate: 0.0,
                preserved_rate: 0.0,
                eps_time: OnlineStats::new(),
                full_time: OnlineStats::new(),
            };
            for report in &runs {
                if let Some(e) = report.outcome.epsilon_time {
                    row.eps_rate += 1.0;
                    row.eps_time.push(e);
                }
                if let Some(f) = report.outcome.consensus_time {
                    row.full_rate += 1.0;
                    row.full_time.push(f);
                }
                if report.outcome.plurality_preserved() {
                    row.preserved_rate += 1.0;
                }
            }
            let r = reps as f64;
            row.eps_rate /= r;
            row.full_rate /= r;
            row.preserved_rate /= r;
            row
        })
        .collect()
}

fn render(title: String, time_unit: &str, rows: &[FamilyRow]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "topology",
            "ε-rate",
            &format!("ε-time ({time_unit})"),
            "full rate",
            &format!("full time ({time_unit})"),
            "plurality kept",
        ],
    );
    for row in rows {
        table.row(&[
            row.label.clone(),
            fmt_f64(row.eps_rate),
            if row.eps_time.count() > 0 {
                fmt_f64(row.eps_time.mean())
            } else {
                "-".into()
            },
            fmt_f64(row.full_rate),
            if row.full_time.count() > 0 {
                fmt_f64(row.full_time.mean())
            } else {
                "-".into()
            },
            fmt_f64(row.preserved_rate),
        ]);
    }
    table
}

fn main() {
    let full = is_full();
    let reps = if full { 8 } else { 4 };
    // n = r² keeps the torus square; ln(2500) / 2500 ≈ 0.0031, so the
    // sparse G(n, p) sits just above the connectivity threshold and the
    // denser one well above it.
    let n: u64 = if full { 10_000 } else { 2_500 };
    let k = 2u32;
    let alpha = 3.0;
    let nf = n as f64;
    let families = [
        Topology::Complete,
        Topology::Regular { d: 8 },
        Topology::Regular { d: 4 },
        Topology::ErdosRenyi {
            p: 8.0 * nf.ln() / nf,
        },
        Topology::ErdosRenyi {
            p: 1.5 * nf.ln() / nf,
        },
        Topology::PreferentialAttachment { m: 4 },
        Topology::Torus2D,
        Topology::Ring,
    ];

    // --- Synchronous protocol: times are rounds.
    let sync_cap = if full { 3_000 } else { 1_500 };
    let sync_rows = sweep(&families, reps, 0xE17A, |topology| {
        format!(
            "sync?n={n}&k={k}&alpha={alpha}&max={sync_cap}&topology={}",
            topology.spec()
        )
    });
    let t1 = render(
        format!("E17a: synchronous protocol vs topology (n = {n}, k = {k}, α₀ = {alpha}, cap {sync_cap} rounds)"),
        "rounds",
        &sync_rows,
    );
    println!("{}", t1.render());

    // --- Asynchronous single-leader protocol: times are steps.
    let leader_cap = if full { 1_200.0 } else { 600.0 };
    let leader_rows = sweep(&families, reps, 0xE17B, |topology| {
        format!(
            "leader?n={n}&k={k}&alpha={alpha}&c1=9.3&max={leader_cap}&topology={}",
            topology.spec()
        )
    });
    let t2 = render(
        format!("E17b: async single-leader vs topology (n = {n}, k = {k}, α₀ = {alpha}, cap {leader_cap} steps)"),
        "steps",
        &leader_rows,
    );
    println!("{}", t2.render());
    println!(
        "reading: expanders ≈ complete; sparse G(n,p) slower; lattices break (diameter);\n\
         off the complete graph, full consensus can stall on top-generation minority\n\
         pockets even after ε-convergence — ε-rate is the honest success metric there."
    );

    let dir = results_dir();
    t1.write_csv(dir.join("topology_robustness_sync.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("topology_robustness_leader.csv"))
        .expect("write csv");
    println!(
        "wrote {} and {}",
        dir.join("topology_robustness_sync.csv").display(),
        dir.join("topology_robustness_leader.csv").display()
    );
}
