//! **Experiment E10 — Theorem 27**: the clustering phase.
//!
//! Theorem 27 claims that after `O(log log n)` time, all but an
//! `n/log^{C′} n` fraction of nodes sit in clusters of at least the
//! participation size, all those leaders are in consensus mode, and the
//! switch times satisfy `t_l − t_f = O(1)`. We sweep `n` and report
//! coverage, participation, and switch spreads.

use plurality_bench::{is_full, results_dir, run_many, theorem_bias};
use plurality_core::cluster::ClusterConfig;
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 6 } else { 3 };
    let k = 2u32;

    let ns: &[u64] = if full {
        &[5_000, 10_000, 20_000, 50_000, 100_000, 200_000]
    } else {
        &[5_000, 10_000, 20_000, 50_000]
    };
    let mut table = Table::new(
        "Theorem 27: clustering coverage and switch synchronization",
        &[
            "n",
            "clusters",
            "participating",
            "coverage",
            "particip. frac",
            "t_f (units)",
            "t_l − t_f (units)",
        ],
    );
    for &n in ns {
        let alpha = theorem_bias(n, k).max(1.5);
        let mut clusters = OnlineStats::new();
        let mut participating = OnlineStats::new();
        let mut coverage = OnlineStats::new();
        let mut part_frac = OnlineStats::new();
        let mut tf_units = OnlineStats::new();
        let mut spread_units = OnlineStats::new();
        let runs = run_many(0xB28, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            ClusterConfig::new(assignment).with_seed(rep.seed).run()
        });
        for r in &runs {
            clusters.push(r.cluster_count as f64);
            participating.push(r.participating_clusters as f64);
            coverage.push(r.clustered_fraction);
            part_frac.push(r.participating_fraction);
            if let Some(tf) = r.first_switch_time {
                tf_units.push(tf / r.steps_per_unit);
            }
            if let (Some(a), Some(b)) = (r.first_switch_time, r.last_switch_time) {
                spread_units.push((b - a) / r.steps_per_unit);
            }
        }
        table.row(&[
            n.to_string(),
            fmt_f64(clusters.mean()),
            fmt_f64(participating.mean()),
            fmt_f64(coverage.mean()),
            fmt_f64(part_frac.mean()),
            fmt_f64(tf_units.mean()),
            fmt_f64(spread_units.mean()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "paper: coverage → 1 (all but n/polylog n nodes), t_f grows at most like log log n\n\
         (here it is dominated by the fixed pause/accept windows), and t_l − t_f = O(1)."
    );

    let path = results_dir().join("thm27_clustering.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
