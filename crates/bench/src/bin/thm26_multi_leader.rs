//! **Experiment E9 — Theorem 26**: the decentralized multi-leader protocol
//! matches the single-leader bounds.
//!
//! Theorem 26 claims the clustered protocol achieves the same
//! `O(log log_α k · log k + log log n)` ε-convergence (plus `O(log n)` to
//! full consensus) without any designated leader. We sweep `n`, compare
//! against the single-leader engine on identical instances, and ablate the
//! participation size.

use plurality_bench::{is_full, results_dir, run_many, theorem_bias};
use plurality_core::cluster::ClusterConfig;
use plurality_core::leader::LeaderConfig;
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 6 } else { 3 };
    let k = 4u32;

    let ns: &[u64] = if full {
        &[5_000, 10_000, 20_000, 50_000, 100_000]
    } else {
        &[5_000, 10_000, 20_000]
    };
    let mut t1 = Table::new(
        "Theorem 26: multi-leader vs single-leader ε-convergence (k = 4, α at bound)",
        &[
            "n",
            "multi ε-time",
            "single ε-time",
            "multi/single",
            "clusters",
            "coverage",
            "success",
        ],
    );
    for &n in ns {
        let alpha = theorem_bias(n, k).max(1.2);
        let mut multi_eps = OnlineStats::new();
        let mut single_eps = OnlineStats::new();
        let mut clusters = OnlineStats::new();
        let mut coverage = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_many(0xB26, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            let multi = ClusterConfig::new(assignment.clone())
                .with_seed(rep.seed)
                .run();
            let single = LeaderConfig::new(assignment).with_seed(rep.seed).run();
            (multi, single)
        });
        for (multi, single) in &runs {
            if let Some(e) = multi.outcome.epsilon_time {
                multi_eps.push(e);
            }
            if let Some(e) = single.outcome.epsilon_time {
                single_eps.push(e);
            }
            clusters.push(multi.participating_clusters as f64);
            coverage.push(multi.participating_fraction);
            if multi.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        let ratio = if single_eps.mean() > 0.0 {
            multi_eps.mean() / single_eps.mean()
        } else {
            f64::NAN
        };
        t1.row(&[
            n.to_string(),
            fmt_f64(multi_eps.mean()),
            fmt_f64(single_eps.mean()),
            fmt_f64(ratio),
            fmt_f64(clusters.mean()),
            fmt_f64(coverage.mean()),
            format!("{wins}/{reps}"),
        ]);
    }
    println!("{}", t1.render());
    println!(
        "paper: the multi-leader algorithm mimics the single-leader case — the ratio should be a\n\
         modest constant (clustering + broadcast overhead), not growing with n\n"
    );

    // Participation-size ablation at fixed n.
    let n: u64 = if full { 50_000 } else { 20_000 };
    let alpha = theorem_bias(n, k).max(1.2);
    let sizes: &[u64] = &[16, 32, 64, 128, 256];
    let mut t2 = Table::new(
        format!("Participation-size ablation (n = {n}, k = {k})"),
        &[
            "size",
            "ε-time",
            "clusters",
            "coverage",
            "switch spread (units)",
            "success",
        ],
    );
    for &size in sizes {
        let mut eps_t = OnlineStats::new();
        let mut clusters = OnlineStats::new();
        let mut coverage = OnlineStats::new();
        let mut spread = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_many(0xB27, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            ClusterConfig::new(assignment)
                .with_seed(rep.seed)
                .with_participation_size(size)
                .run()
        });
        for r in &runs {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            clusters.push(r.participating_clusters as f64);
            coverage.push(r.participating_fraction);
            if let (Some(a), Some(b)) = (r.first_switch_time, r.last_switch_time) {
                spread.push((b - a) / r.steps_per_unit);
            }
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        t2.row(&[
            size.to_string(),
            fmt_f64(eps_t.mean()),
            fmt_f64(clusters.mean()),
            fmt_f64(coverage.mean()),
            fmt_f64(spread.mean()),
            format!("{wins}/{reps}"),
        ]);
    }
    println!("{}", t2.render());

    let dir = results_dir();
    t1.write_csv(dir.join("thm26_multi_vs_single.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("thm26_size_ablation.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("thm26_multi_vs_single.csv").display());
    println!("wrote {}", dir.join("thm26_size_ablation.csv").display());
}
