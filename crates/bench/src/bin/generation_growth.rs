//! **Experiments E6 + E7 — Prop 9 / Prop 16 / Prop 17**: generation growth
//! rates and the length of the two-choices phase.
//!
//! * Proposition 9 (synchronous): while the newest generation holds between
//!   `γ²/k` and `γ` of the nodes, it grows by a factor ≥ `(2 − γ)` per
//!   round (up to `o(1)`).
//! * Proposition 16 (asynchronous): the two-choices window of each
//!   generation lasts `t′ ∈ (2, 2(1 + log n/√n))` time units, and by its
//!   end the generation holds ≥ `p_{i−1}/9` of the nodes.
//! * Proposition 17 (asynchronous): during propagation the generation grows
//!   by ≥ 1.4 per time unit until it exceeds `n/2`.

use plurality_bench::{is_full, results_dir, run_many};
use plurality_core::leader::LeaderConfig;
use plurality_core::sync::SyncConfig;
use plurality_core::{InitialAssignment, RecordLevel};
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn main() {
    let full = is_full();
    let n: u64 = if full { 300_000 } else { 100_000 };
    // Large k keeps p_{i-1} ≈ 1/k small so the two-choices phase cannot
    // saturate the generation on its own (Prop 16's regime).
    let k = 64u32;
    let gamma = 0.5;
    let alpha = 1.5;

    // --- Synchronous growth factors (Prop 9).
    let sync = run_many(0xE6, 1, |rep| {
        let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
        SyncConfig::new(assignment)
            .with_seed(rep.seed)
            .with_gamma(gamma)
            .with_record(RecordLevel::Full)
            .run()
    })
    .pop()
    .expect("one repetition");
    let series = sync
        .newest_generation_fraction
        .expect("full record produces the series");
    let mut growth = OnlineStats::new();
    let lo = gamma * gamma / k as f64;
    for w in series.values().windows(2) {
        let (prev, next) = (w[0], w[1]);
        // Only measure strictly inside the growth window and while the
        // newest generation did not change (fraction resets on a birth).
        if prev > lo && prev < gamma && next > prev {
            growth.push(next / prev);
        }
    }
    let mut t1 = Table::new(
        format!(
            "Prop 9: per-round growth of the newest generation (n = {n}, k = {k}, γ = {gamma})"
        ),
        &["quantity", "value"],
    );
    t1.row(&["rounds measured".into(), growth.count().to_string()]);
    t1.row(&["mean growth factor".into(), fmt_f64(growth.mean())]);
    t1.row(&["min growth factor".into(), fmt_f64(growth.min())]);
    t1.row(&["paper bound (2 − γ)".into(), fmt_f64(2.0 - gamma)]);
    println!("{}", t1.render());

    // --- Asynchronous two-choices window length (Prop 16) and generation
    // cycle lengths (Cor 18).
    let n_async = if full { 100_000 } else { 30_000 };
    let leader = run_many(0xE6, 1, |rep| {
        let assignment = InitialAssignment::with_bias(n_async, k, alpha).expect("valid assignment");
        LeaderConfig::new(assignment).with_seed(rep.seed).run()
    })
    .pop()
    .expect("one repetition");
    let c1 = leader.steps_per_unit;
    let mut t2 = Table::new(
        format!(
            "Prop 16/17: leader phase telemetry (n = {n_async}, k = {k}, C1 = {:.2} steps/unit)",
            c1
        ),
        &[
            "gen",
            "allowed at",
            "two-choices window t′ (units)",
            "cycle to next gen (units)",
        ],
    );
    let mut windows = OnlineStats::new();
    for (i, p) in leader.phases.iter().enumerate() {
        let window = p.propagation_at.map(|prop| (prop - p.allowed_at) / c1);
        if let Some(w) = window {
            windows.push(w);
        }
        let cycle = leader
            .phases
            .get(i + 1)
            .map(|next| (next.allowed_at - p.allowed_at) / c1);
        t2.row(&[
            p.generation.to_string(),
            fmt_f64(p.allowed_at),
            window.map(fmt_f64).unwrap_or_else(|| "-".into()),
            cycle.map(fmt_f64).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t2.render());
    if windows.count() > 0 {
        let upper = 2.0 * (1.0 + (n_async as f64).log2() / (n_async as f64).sqrt());
        println!(
            "two-choices windows: mean {:.3} units over {} generations (Prop 16 predicts (2, {:.3}))",
            windows.mean(),
            windows.count(),
            upper
        );
    }

    let dir = results_dir();
    t1.write_csv(dir.join("generation_growth_sync.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("generation_growth_async.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("generation_growth_sync.csv").display());
    println!(
        "wrote {}",
        dir.join("generation_growth_async.csv").display()
    );
}
