//! **Perf snapshot** — machine-readable performance trajectory.
//!
//! Measures median throughput of the hot samplers, wall-clock of one
//! smoke-scale run per engine, and the serial-vs-parallel wall-clock of a
//! smoke-scale `thm13_async_scaling` cell (with a bitwise equality check
//! of the aggregate results, exercising the parallel determinism
//! contract end to end). Writes everything as a flat JSON map to
//! `benchmarks/BENCH_perf_snapshot.json` (directory overridable via
//! `PLURALITY_BENCH_JSON`) so future PRs can diff performance.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p plurality-bench --bin perf_snapshot            # write snapshot
//! cargo run --release -p plurality-bench --bin perf_snapshot -- --check # CI: compare keys
//! ```
//!
//! With `--check`, the freshly measured snapshot is *not* written;
//! instead its keys are compared against the committed baseline, and the
//! process exits non-zero if the baseline contains a metric the fresh
//! snapshot no longer produces (a silently dropped benchmark).

use plurality_agg::{LeaderMfConfig, SyncMfConfig};
use plurality_core::cluster::ClusterConfig;
use plurality_core::leader::LeaderConfig;
use plurality_core::sync::{SyncConfig, UrnConfig};
use plurality_core::InitialAssignment;
use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::{sample_binomial, ChannelPattern, Exponential, Gamma, Latency, WaitingTime};
use plurality_sim::{CalendarQueue, EventQueue};
use plurality_topology::Topology;
use rand::RngCore;
use std::path::PathBuf;
use std::time::Instant;

/// Measurement effort. [`Effort::full`] produces the committed
/// snapshot; [`Effort::quick`] backs `--check`, which only needs the
/// metric-*name* list — every batch and repetition shrinks to near-zero
/// cost while the names keep a single source of truth (the measurement
/// code itself).
#[derive(Clone, Copy)]
struct Effort {
    timing_samples: usize,
    batch_divisor: u32,
    engine_runs: usize,
    thm13_n: u64,
    thm13_reps: usize,
}

impl Effort {
    fn full() -> Self {
        Self {
            timing_samples: 9,
            batch_divisor: 1,
            engine_runs: 3,
            thm13_n: 5_000,
            thm13_reps: 6,
        }
    }

    fn quick() -> Self {
        Self {
            timing_samples: 1,
            batch_divisor: 1_000,
            engine_runs: 1,
            thm13_n: 500,
            thm13_reps: 2,
        }
    }

    fn batch(&self, full: u32) -> u32 {
        (full / self.batch_divisor).max(1)
    }
}

/// Median of `samples` timed batches of `batch` calls, in ns per call.
fn median_ns<F: FnMut()>(batch: u32, samples: usize, mut f: F) -> f64 {
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..batch {
            f();
        }
        timings.push(start.elapsed().as_nanos() as f64 / f64::from(batch));
    }
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    timings[timings.len() / 2]
}

/// Median wall-clock of `samples` runs of `f`, in milliseconds.
fn median_ms<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut timings = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        f();
        timings.push(start.elapsed().as_nanos() as f64 / 1e6);
    }
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    timings[timings.len() / 2]
}

fn sampler_metrics(metrics: &mut Vec<(String, f64)>, eff: Effort) {
    let mut rng = Xoshiro256PlusPlus::from_u64(1);
    metrics.push((
        "sampler/xoshiro_u64_ns".into(),
        median_ns(eff.batch(100_000), eff.timing_samples, || {
            std::hint::black_box(rng.next_u64());
        }),
    ));
    let exp = Exponential::new(1.0).expect("valid rate");
    metrics.push((
        "sampler/exponential_ns".into(),
        median_ns(eff.batch(100_000), eff.timing_samples, || {
            std::hint::black_box(exp.sample(&mut rng));
        }),
    ));
    let gamma = Gamma::new(7.0, 1.0).expect("valid params");
    metrics.push((
        "sampler/gamma_shape7_ns".into(),
        median_ns(eff.batch(50_000), eff.timing_samples, || {
            std::hint::black_box(gamma.sample(&mut rng));
        }),
    ));
    metrics.push((
        "sampler/binomial_n1e6_ns".into(),
        median_ns(eff.batch(20_000), eff.timing_samples, || {
            std::hint::black_box(sample_binomial(1_000_000, 0.3, &mut rng));
        }),
    ));
    let wt = WaitingTime::new(
        Latency::exponential(1.0).expect("valid rate"),
        ChannelPattern::SingleLeader,
    );
    metrics.push((
        "sampler/waiting_time_t3_ns".into(),
        median_ns(eff.batch(50_000), eff.timing_samples, || {
            std::hint::black_box(wt.sample_t3(&mut rng));
        }),
    ));
    // `EventQueue` is the calendar queue by default and the binary heap
    // under `--features legacy-heap`; the explicit `CalendarQueue` key
    // keeps the calendar implementation on the trajectory even when the
    // alias is rebound.
    metrics.push((
        "sim/event_queue_push_pop_1k_ns".into(),
        median_ns(eff.batch(50), eff.timing_samples, || {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1000u32 {
                q.schedule(f64::from(i.wrapping_mul(2654435761) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc += u64::from(v);
            }
            std::hint::black_box(acc);
        }),
    ));
    metrics.push((
        "sim/calendar_queue_push_pop_1k_ns".into(),
        median_ns(eff.batch(50), eff.timing_samples, || {
            let mut q = CalendarQueue::with_capacity(1024);
            for i in 0..1000u32 {
                q.schedule(f64::from(i.wrapping_mul(2654435761) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc += u64::from(v);
            }
            std::hint::black_box(acc);
        }),
    ));
}

fn engine_metrics(metrics: &mut Vec<(String, f64)>, eff: Effort) {
    metrics.push((
        "engine/sync_n10k_k4_ms".into(),
        median_ms(eff.engine_runs, || {
            let assignment = InitialAssignment::with_bias(10_000, 4, 2.0).expect("valid");
            std::hint::black_box(SyncConfig::new(assignment).with_seed(1).run().rounds);
        }),
    ));
    metrics.push((
        "engine/leader_n2k_k2_ms".into(),
        median_ms(eff.engine_runs, || {
            let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).expect("valid");
            let r = LeaderConfig::new(assignment)
                .with_seed(1)
                .with_steps_per_unit(9.3)
                .run();
            std::hint::black_box(r.ticks);
        }),
    ));
    metrics.push((
        "engine/cluster_n2k_k2_ms".into(),
        median_ms(eff.engine_runs, || {
            let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).expect("valid");
            let r = ClusterConfig::new(assignment)
                .with_seed(1)
                .with_steps_per_unit(12.0)
                .run();
            std::hint::black_box(r.ticks);
        }),
    ));
    // Sparse-topology keys: the ring is the slowest-mixing connected
    // graph, so consensus does not arrive inside the horizon — the runs
    // are fixed-horizon sweeps (`max_time = 500`) that measure the
    // adjacency-sampling hot path rather than the complete-graph fast
    // path above.
    metrics.push((
        "engine/leader_ring_n2k_k2_ms".into(),
        median_ms(eff.engine_runs, || {
            let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).expect("valid");
            let r = LeaderConfig::new(assignment)
                .with_seed(1)
                .with_steps_per_unit(9.3)
                .with_topology(Topology::Ring)
                .with_max_time(500.0)
                .run();
            std::hint::black_box(r.ticks);
        }),
    ));
    metrics.push((
        "engine/cluster_ring_n2k_k2_ms".into(),
        median_ms(eff.engine_runs, || {
            let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).expect("valid");
            let r = ClusterConfig::new(assignment)
                .with_seed(1)
                .with_steps_per_unit(12.0)
                .with_topology(Topology::Ring)
                .with_max_time(500.0)
                .run();
            std::hint::black_box(r.ticks);
        }),
    ));
    metrics.push((
        "engine/urn_n1e8_k8_ms".into(),
        median_ms(eff.engine_runs, || {
            let r = UrnConfig::new(100_000_000, 8, 1.5)
                .expect("valid")
                .with_seed(2)
                .run();
            std::hint::black_box(r.rounds);
        }),
    ));
    // Mean-field aggregate keys: cost is rounds × k pools, independent
    // of n, so these hold the 10⁸-node wall-clock on the trajectory.
    metrics.push((
        "engine/sync_mf_n1e8_k8_ms".into(),
        median_ms(eff.engine_runs, || {
            let r = SyncMfConfig::new(100_000_000, 8, 1.5)
                .expect("valid")
                .with_seed(2)
                .run();
            std::hint::black_box(r.rounds);
        }),
    ));
    metrics.push((
        "engine/leader_mf_n1e8_ms".into(),
        median_ms(eff.engine_runs, || {
            let r = LeaderMfConfig::new(100_000_000, 4, 3.0)
                .expect("valid")
                .with_seed(2)
                .run();
            std::hint::black_box(r.sub_steps);
        }),
    ));
}

/// One smoke-scale `thm13_async_scaling` cell under an explicit thread
/// count, for the serial-vs-parallel comparison.
fn thm13_smoke(threads: usize, eff: Effort) -> Vec<plurality_core::leader::LeaderResult> {
    let (n, k, reps) = (eff.thm13_n, 4u32, eff.thm13_reps);
    let alpha = plurality_bench::theorem_bias(n, k).max(1.2);
    plurality_par::par_map_seeded_with(threads, 0xB13, reps, |_, seed| {
        let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
        LeaderConfig::new(assignment).with_seed(seed).run()
    })
}

fn experiment_metrics(metrics: &mut Vec<(String, f64)>, eff: Effort) {
    let threads = plurality_par::configured_threads();
    // Warm the memoized time-unit cache so both timings pay it equally.
    let warm = thm13_smoke(1, eff);
    std::hint::black_box(warm.len());

    let start = Instant::now();
    let serial = thm13_smoke(1, eff);
    let serial_ms = start.elapsed().as_nanos() as f64 / 1e6;

    let start = Instant::now();
    let parallel = thm13_smoke(threads, eff);
    let parallel_ms = start.elapsed().as_nanos() as f64 / 1e6;

    let identical = serial == parallel;
    assert!(
        identical,
        "parallel determinism violated: thm13 smoke results differ between 1 and {threads} threads"
    );
    metrics.push(("thm13_smoke/serial_ms".into(), serial_ms));
    metrics.push(("thm13_smoke/parallel_ms".into(), parallel_ms));
    metrics.push(("thm13_smoke/parallel_threads".into(), threads as f64));
    metrics.push((
        "thm13_smoke/speedup".into(),
        if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            0.0
        },
    ));
    metrics.push((
        "thm13_smoke/results_identical".into(),
        f64::from(u8::from(identical)),
    ));
}

/// Deterministic profiling counters: the engines' always-on
/// [`plurality_obs::EngineProfile`] numbers from fixed-seed smoke runs
/// (pure functions of the seed — they move only when the hot path
/// itself changes shape, making regressions in event traffic visible
/// on the trajectory), plus a fixed report-cache exercise counting
/// shard hits and misses.
fn profile_metrics(metrics: &mut Vec<(String, f64)>) {
    let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).expect("valid");
    let leader = LeaderConfig::new(assignment.clone())
        .with_seed(1)
        .with_steps_per_unit(9.3)
        .run();
    metrics.push((
        "profile/leader_events_popped".into(),
        leader.profile.events_popped as f64,
    ));
    metrics.push((
        "profile/leader_signals_thinned".into(),
        leader.profile.signals_thinned as f64,
    ));
    metrics.push((
        "profile/leader_window_crossings".into(),
        leader.profile.window_crossings as f64,
    ));
    let cluster = ClusterConfig::new(assignment)
        .with_seed(1)
        .with_steps_per_unit(12.0)
        .run();
    metrics.push((
        "profile/cluster_events_popped".into(),
        cluster.profile.events_popped as f64,
    ));
    metrics.push((
        "profile/cluster_queue_resizes".into(),
        cluster.profile.queue_resizes as f64,
    ));

    // Fixed cache exercise: 8 inserts, 12 probes → 8 shard hits and
    // 4 misses, spread across shards by the key hash.
    let cache = plurality_serve::ReportCache::new(1 << 20);
    let mut hits = 0u64;
    let mut misses = 0u64;
    for i in 0..8 {
        cache.insert(format!("spec-{i}"), std::sync::Arc::from("body"));
    }
    for i in 0..12 {
        match cache.get(&format!("spec-{i}")) {
            Some(_) => hits += 1,
            None => misses += 1,
        }
    }
    metrics.push(("profile/cache_shard_hits".into(), hits as f64));
    metrics.push(("profile/cache_shard_misses".into(), misses as f64));
}

/// Extracts the metric keys of the `"results"` object of a snapshot file
/// (one `"name": value` pair per line, as written by
/// [`criterion::write_suite_json`]).
fn baseline_keys(text: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut in_results = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"results\"") {
            in_results = true;
            continue;
        }
        if !in_results {
            continue;
        }
        if trimmed.starts_with('}') {
            break;
        }
        if let Some(rest) = trimmed.strip_prefix('"') {
            if let Some(end) = rest.find("\": ") {
                keys.push(rest[..end].to_string());
            }
        }
    }
    keys
}

fn snapshot_dir() -> PathBuf {
    std::env::var(criterion::BENCH_JSON_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("benchmarks"))
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let path = snapshot_dir().join("BENCH_perf_snapshot.json");
    // --check only compares metric names, so measure at token effort.
    let eff = if check {
        Effort::quick()
    } else {
        Effort::full()
    };

    let mut metrics: Vec<(String, f64)> = Vec::new();
    metrics.push((
        "host/available_parallelism".into(),
        std::thread::available_parallelism().map_or(1.0, |p| p.get() as f64),
    ));
    metrics.push((
        "host/configured_threads".into(),
        plurality_par::configured_threads() as f64,
    ));
    sampler_metrics(&mut metrics, eff);
    engine_metrics(&mut metrics, eff);
    profile_metrics(&mut metrics);
    experiment_metrics(&mut metrics, eff);

    for (name, value) in &metrics {
        println!("{name}: {value:.2}");
    }

    if check {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read committed baseline {}: {e}", path.display());
            std::process::exit(1);
        });
        let fresh: Vec<&str> = metrics.iter().map(|(name, _)| name.as_str()).collect();
        let missing: Vec<String> = baseline_keys(&baseline)
            .into_iter()
            .filter(|key| !fresh.contains(&key.as_str()))
            .collect();
        if missing.is_empty() {
            println!(
                "check ok: all {} baseline metrics present",
                baseline_keys(&baseline).len()
            );
        } else {
            eprintln!("baseline metrics missing from fresh snapshot: {missing:?}");
            std::process::exit(1);
        }
    } else {
        criterion::write_suite_json(
            &path,
            "perf_snapshot",
            "ns per op (…_ns), wall-clock ms (…_ms), ratios otherwise",
            &metrics,
        )
        .expect("write snapshot");
        println!("wrote {}", path.display());
    }
}
