//! **Experiments E5 + E16 — Lemma 4 / Prop 8 / Cor 24 / Lemma 11**: the
//! bias squares from one generation to the next.
//!
//! The central mechanism of the paper: if generation `i−1` has bias
//! `α_{i−1}`, the two-choices birth of generation `i` realizes
//! `α_i ≈ α²_{i−1}` (Lemma 4 synchronous, Lemma 22/23 asynchronous). We run
//! both engines, print the per-generation chain `α_i` vs `α²_{i−1}`, and
//! check Lemma 11's endgame: once `α_i > k`, a monochromatic generation
//! appears within `O(log log_k n)` further generations.

use plurality_bench::{is_full, results_dir, run_many};
use plurality_core::leader::LeaderConfig;
use plurality_core::sync::SyncConfig;
use plurality_core::{GenerationBirth, InitialAssignment};
use plurality_stats::{fmt_f64, Table};

fn chain_table(title: String, births: &[GenerationBirth], k: u32) -> Table {
    let mut table = Table::new(
        title,
        &["gen i", "α_i", "α²_{i-1}", "ratio", "parent p_{i-1}"],
    );
    for w in births.windows(2) {
        let prev = &w[0];
        let cur = &w[1];
        let predicted = prev.bias * prev.bias;
        let ratio = if predicted.is_finite() && predicted > 0.0 {
            cur.bias / predicted
        } else {
            f64::NAN
        };
        table.row(&[
            cur.generation.to_string(),
            fmt_f64(cur.bias),
            fmt_f64(predicted),
            fmt_f64(ratio),
            fmt_f64(cur.parent_collision),
        ]);
    }
    // Lemma 11 check: index of first generation with bias > k and the first
    // monochromatic (infinite-bias) generation.
    let first_above_k = births.iter().find(|b| b.bias > k as f64);
    let first_mono = births.iter().find(|b| !b.bias.is_finite());
    if let (Some(a), Some(m)) = (first_above_k, first_mono) {
        println!(
            "first generation with α > k: {}; first monochromatic generation: {} (Lemma 11: gap is O(log log_k n))",
            a.generation, m.generation
        );
    }
    table
}

fn main() {
    let full = is_full();
    let n: u64 = if full { 500_000 } else { 100_000 };
    let k = 8u32;
    let alpha = 1.1;

    // Synchronous chain.
    let sync = run_many(0xE5, 1, |rep| {
        let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
        SyncConfig::new(assignment).with_seed(rep.seed).run()
    })
    .pop()
    .expect("one repetition");
    let t1 = chain_table(
        format!(
            "Bias squaring, synchronous (n = {n}, k = {k}, α₀ = {:.3})",
            sync.outcome.initial_bias
        ),
        &sync.outcome.generations,
        k,
    );
    println!("{}", t1.render());

    // Asynchronous single-leader chain (bias measured when each
    // generation's active window closes, cf. Lemma 22).
    let n_async = if full { 100_000 } else { 30_000 };
    let leader = run_many(0xE5, 1, |rep| {
        let assignment = InitialAssignment::with_bias(n_async, k, alpha).expect("valid assignment");
        LeaderConfig::new(assignment).with_seed(rep.seed).run()
    })
    .pop()
    .expect("one repetition");
    let t2 = chain_table(
        format!(
            "Bias squaring, async single-leader (n = {n_async}, k = {k}, α₀ = {:.3})",
            leader.outcome.initial_bias
        ),
        &leader.outcome.generations,
        k,
    );
    println!("{}", t2.render());

    let dir = results_dir();
    t1.write_csv(dir.join("bias_squaring_sync.csv"))
        .expect("write csv");
    t2.write_csv(dir.join("bias_squaring_async.csv"))
        .expect("write csv");
    println!("wrote {}", dir.join("bias_squaring_sync.csv").display());
    println!("wrote {}", dir.join("bias_squaring_async.csv").display());
}
