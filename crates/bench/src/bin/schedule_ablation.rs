//! **Experiment E15 — design ablation**: predefined `{t_i}` vs adaptive
//! two-choices scheduling in the synchronous protocol.
//!
//! The paper's Algorithm 1 fixes the two-choices rounds in advance from
//! `(n, k, α, γ)`; its asynchronous leader instead *reacts* to the measured
//! generation sizes. This ablation runs the synchronous engine both ways:
//! the adaptive rule needs no knowledge of `α` and should track the
//! predefined schedule closely when the predefined `α` hint is accurate —
//! and beat it when the hint is wrong.

use plurality_bench::{is_full, results_dir, run_many};
use plurality_core::sync::{ScheduleMode, SyncConfig};
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, OnlineStats, Table};

fn run(
    n: u64,
    k: u32,
    alpha: f64,
    mode: ScheduleMode,
    alpha_hint: Option<f64>,
    reps: usize,
) -> (OnlineStats, u64, OnlineStats) {
    let mut rounds = OnlineStats::new();
    let mut tc_rounds = OnlineStats::new();
    let mut wins = 0u64;
    let runs = run_many(0xB31, reps, |rep| {
        let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
        let mut cfg = SyncConfig::new(assignment)
            .with_seed(rep.seed)
            .with_mode(mode);
        if let Some(hint) = alpha_hint {
            cfg = cfg.with_alpha_hint(hint);
        }
        cfg.run()
    });
    for r in &runs {
        rounds.push(r.rounds as f64);
        tc_rounds.push(r.two_choices_rounds.len() as f64);
        if r.outcome.plurality_preserved() {
            wins += 1;
        }
    }
    (rounds, wins, tc_rounds)
}

fn main() {
    let full = is_full();
    let reps = if full { 10 } else { 4 };
    let n: u64 = if full { 200_000 } else { 50_000 };
    let k = 8u32;

    let alphas = [1.05, 1.2, 2.0];
    let mut table = Table::new(
        format!("Schedule ablation (n = {n}, k = {k})"),
        &[
            "α₀",
            "variant",
            "rounds (mean)",
            "sd",
            "2-choices rounds",
            "success",
        ],
    );
    for &alpha in &alphas {
        let (pre, pre_w, pre_tc) = run(n, k, alpha, ScheduleMode::Predefined, None, reps);
        let (ada, ada_w, ada_tc) = run(n, k, alpha, ScheduleMode::Adaptive, None, reps);
        // Predefined with a *wrong* α hint (pretends the bias is huge, so
        // the schedule packs two-choices rounds far too densely).
        let (bad, bad_w, bad_tc) = run(n, k, alpha, ScheduleMode::Predefined, Some(8.0), reps);
        for (name, stats, wins, tc) in [
            ("predefined", &pre, pre_w, &pre_tc),
            ("adaptive", &ada, ada_w, &ada_tc),
            ("predefined (wrong α=8 hint)", &bad, bad_w, &bad_tc),
        ] {
            table.row(&[
                fmt_f64(alpha),
                name.to_string(),
                fmt_f64(stats.mean()),
                fmt_f64(stats.sample_sd()),
                fmt_f64(tc.mean()),
                format!("{wins}/{reps}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected: adaptive ≈ predefined with a correct hint; a wrong (too large) α hint\n\
         spaces generations too aggressively and costs time or stability."
    );

    let path = results_dir().join("schedule_ablation.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
