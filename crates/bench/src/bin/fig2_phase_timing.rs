//! **Experiment E2 — Figure 2**: the phase-timing diagram of the
//! multi-leader protocol.
//!
//! Figure 2 sketches, for one generation, how fast and slow cluster leaders
//! pass through the two-choices → sleeping → propagation phases, with the
//! `t̂₀ … t̂₅` marks bounding the spread. Proposition 31 proves the spreads
//! are `O(1)` time units and that (a) every cluster runs two-choices for at
//! least one unit before the fastest sleeps, and (c) the first leader does
//! not wake before the last one sleeps. We run the multi-leader engine and
//! print the measured `t̂` marks per generation.

use plurality_bench::{is_full, results_dir, run_many};
use plurality_core::cluster::{ClusterConfig, ClusterPhase};
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, Table};

fn main() {
    let full = is_full();
    let n: u64 = if full { 100_000 } else { 30_000 };
    let k = 8u32;
    let alpha = 1.5;

    let result = run_many(0xF2, 1, |rep| {
        let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
        ClusterConfig::new(assignment).with_seed(rep.seed).run()
    })
    .pop()
    .expect("one repetition");
    let c1 = result.steps_per_unit;

    println!(
        "n = {n}, k = {k}, α₀ = {:.3}; clusters = {} ({} participating, {:.1}% of nodes); C1 = {:.2} steps/unit",
        result.outcome.initial_bias,
        result.cluster_count,
        result.participating_clusters,
        100.0 * result.participating_fraction,
        c1
    );
    if let (Some(tf), Some(tl)) = (result.first_switch_time, result.last_switch_time) {
        println!(
            "consensus switch: t_f = {:.2}, t_l = {:.2}, spread = {:.3} units (Theorem 27: O(1))\n",
            tf,
            tl,
            (tl - tf) / c1
        );
    }

    let two = result.phase_spread(ClusterPhase::TwoChoices);
    let sleep = result.phase_spread(ClusterPhase::Sleeping);
    let prop = result.phase_spread(ClusterPhase::Propagation);

    let mut table = Table::new(
        "Figure 2: per-generation phase-change marks across clusters (t̂₀…t̂₅, time units)",
        &[
            "gen",
            "t̂₀ 2-choices first",
            "t̂₁ 2-choices last",
            "t̂₂ sleep first",
            "t̂₃ sleep last",
            "t̂₄ prop first",
            "t̂₅ prop last",
            "max spread",
        ],
    );
    let find = |list: &[(u32, f64, f64)], g: u32| -> Option<(f64, f64)> {
        list.iter()
            .find(|&&(gen, _, _)| gen == g)
            .map(|&(_, a, b)| (a, b))
    };
    let mut violations = 0u32;
    for &(g, t0_raw, t1_raw) in &two {
        let (t0, t1) = (t0_raw / c1, t1_raw / c1);
        let s = find(&sleep, g).map(|(a, b)| (a / c1, b / c1));
        let p = find(&prop, g).map(|(a, b)| (a / c1, b / c1));
        let spread = [
            t1 - t0,
            s.map(|(a, b)| b - a).unwrap_or(0.0),
            p.map(|(a, b)| b - a).unwrap_or(0.0),
        ]
        .into_iter()
        .fold(0.0f64, f64::max);
        // Prop 31(c): the first propagation must not precede the last sleep.
        if let (Some((_, s_last)), Some((p_first, _))) = (s, p) {
            if p_first < s_last - 1e-9 {
                violations += 1;
            }
        }
        table.row(&[
            g.to_string(),
            fmt_f64(t0),
            fmt_f64(t1),
            s.map(|(a, _)| fmt_f64(a)).unwrap_or_else(|| "-".into()),
            s.map(|(_, b)| fmt_f64(b)).unwrap_or_else(|| "-".into()),
            p.map(|(a, _)| fmt_f64(a)).unwrap_or_else(|| "-".into()),
            p.map(|(_, b)| fmt_f64(b)).unwrap_or_else(|| "-".into()),
            fmt_f64(spread),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Prop 31(c) violations (first propagation before last sleep): {violations} (paper: 0 whp.)"
    );
    println!(
        "note: a sleeping/propagation column shows '-' when every cluster advanced to the next\n\
         generation before that window opened (possible when promotions saturate early)."
    );

    let path = results_dir().join("fig2_phase_timing.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
