//! **Experiment E4 — §2.2 remark**: the generation-density threshold `γ`.
//!
//! The paper states: "Empirical data show that the value ½ works well for
//! reasonable input sizes, while too high values increase the time, and too
//! small values decrease the stability." This sweep reproduces exactly that
//! trade-off: mean rounds to consensus and the plurality-success rate as a
//! function of `γ`.

use plurality_bench::{is_full, results_dir, run_many};
use plurality_core::sync::SyncConfig;
use plurality_core::InitialAssignment;
use plurality_stats::{fmt_f64, success_rate, OnlineStats, Table};

fn main() {
    let full = is_full();
    let reps = if full { 40 } else { 10 };
    let n: u64 = if full { 100_000 } else { 30_000 };
    let k = 8u32;
    let alpha = 1.15;

    let gammas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let mut table = Table::new(
        format!("γ sweep (n = {n}, k = {k}, α₀ = {alpha}): time vs stability"),
        &["γ", "rounds (mean)", "sd", "success", "95% CI"],
    );
    for &gamma in &gammas {
        let mut rounds = OnlineStats::new();
        let mut wins = 0u64;
        let runs = run_many(0xE4, reps, |rep| {
            let assignment = InitialAssignment::with_bias(n, k, alpha).expect("valid assignment");
            SyncConfig::new(assignment)
                .with_seed(rep.seed)
                .with_gamma(gamma)
                .run()
        });
        for r in &runs {
            rounds.push(r.rounds as f64);
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        let (p, lo, hi) = success_rate(wins, reps as u64, 0.95);
        table.row(&[
            fmt_f64(gamma),
            fmt_f64(rounds.mean()),
            fmt_f64(rounds.sample_sd()),
            fmt_f64(p),
            format!("[{}, {}]", fmt_f64(lo), fmt_f64(hi)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper §2.2): γ = 0.5 works well; larger γ slower, smaller γ less stable"
    );
    let path = results_dir().join("gamma_sweep.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
