//! **Experiment E1 — Figure 1**: steps per time unit `C1 = F⁻¹(0.9)` as a
//! function of the expected latency `1/λ`.
//!
//! The paper plots `F⁻¹(0.9)` of the composite waiting time `T3` for
//! exponential latencies with `1/λ ∈ [10⁰, 10³]` and observes linear growth
//! in `1/λ`. We regenerate the curve by Monte-Carlo quantile estimation,
//! print the exact `Γ(7, β)` majorant quantile next to it, and also report
//! the paper's *claimed* Remark 14 constant `10/(3β)` — which the measured
//! values exceed for `λ ≤ 1` (the Remark's proof drops an `e^{−βx}` factor;
//! see EXPERIMENTS.md).

use plurality_bench::{is_full, log_spaced, results_dir, run_sweep};
use plurality_dist::{ChannelPattern, Latency, WaitingTime};
use plurality_stats::{fit, fmt_f64, Axis, Table};

fn main() {
    let full = is_full();
    let samples = if full { 400_000 } else { 60_000 };
    let points = if full { 25 } else { 13 };

    let inv_lambdas = log_spaced(1.0, 1000.0, points);
    let mut table = Table::new(
        "Figure 1: steps per time unit vs expected latency 1/λ",
        &["1/λ", "C1 (MC)", "Γ(7,β) 0.9-q", "claimed 10/(3β)", "C1·λ"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    // Each sweep cell is an independent fixed-seed Monte-Carlo quantile
    // estimate — the heavy part of the binary — so fan the cells out.
    let cells = run_sweep(&inv_lambdas, |&inv| {
        let rate = 1.0 / inv;
        let wt = WaitingTime::new(
            Latency::exponential(rate).expect("valid rate"),
            ChannelPattern::SingleLeader,
        );
        let c1 = wt.time_unit(samples, 42);
        let majorant = wt.majorant_time_unit().expect("exponential latency");
        let claimed = wt.remark14_bound().expect("single-leader pattern");
        (c1, majorant, claimed)
    });
    for (&inv, &(c1, majorant, claimed)) in inv_lambdas.iter().zip(&cells) {
        let rate = 1.0 / inv;
        table.row(&[
            fmt_f64(inv),
            fmt_f64(c1),
            fmt_f64(majorant),
            fmt_f64(claimed),
            fmt_f64(c1 * rate),
        ]);
        xs.push(inv);
        ys.push(c1);
    }
    println!("{}", table.render());

    // The paper's qualitative claim: C1 grows linearly with 1/λ. A log-log
    // fit over the slow-channel half of the range should have slope ≈ 1.
    let half = xs.len() / 2;
    let f = fit(&xs[half..], &ys[half..], Axis::Log, Axis::Log);
    println!(
        "log-log slope of C1 vs 1/λ over 1/λ ≥ {:.0}: {:.4} (paper: linear growth, slope 1); R² = {:.5}",
        xs[half], f.slope, f.r_squared
    );

    let path = results_dir().join("fig1_steps_per_unit.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
