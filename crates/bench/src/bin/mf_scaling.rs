//! **Experiment E22 — mean-field scaling**: rounds-to-consensus vs `n`
//! over `n = 10⁴ … 10⁹` on the aggregate backends.
//!
//! The per-node engines stop near 10⁶–10⁷ agents; the count-pool
//! backends have cost independent of `n`, so this sweep runs the same
//! protocol across six orders of magnitude and fits the growth law
//! directly:
//!
//! * `sync-mf` — the paper's synchronous protocol reduces all `log`
//!   terms to `log log n` at fixed `k`, so rounds should be *almost
//!   flat* in `ln n` (slope well below 1 round per e-fold);
//! * `leader-mf` — Theorem 13's `O(log n)` time-unit bound should show
//!   as a clean *linear* fit of consensus time against `ln n`;
//! * `majority3-mf` / `undecided-mf` — the classical `Θ(log n)`
//!   gossip bounds, again linear in `ln n`.
//!
//! Each cell averages fixed-seed repetitions via the shared
//! `run_many` seed stream, so the sweep is reproducible bit for bit.

use plurality_agg::{LeaderMfConfig, Majority3MfConfig, SyncMfConfig, UndecidedMfConfig};
use plurality_bench::{is_full, results_dir, run_many, run_sweep};
use plurality_stats::{fit, fmt_f64, Axis, OnlineStats, Table};

const NS: [u64; 6] = [
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

struct Cell {
    n: u64,
    stats: OnlineStats,
    preserved: u64,
}

fn sweep(reps: usize, f: impl Fn(u64, u64) -> (f64, bool) + Sync) -> Vec<Cell> {
    run_sweep(&NS, |&n| {
        let mut stats = OnlineStats::new();
        let mut preserved = 0u64;
        for (value, ok) in run_many(0xE22 ^ n, reps, |rep| f(n, rep.seed)) {
            stats.push(value);
            preserved += u64::from(ok);
        }
        Cell {
            n,
            stats,
            preserved,
        }
    })
}

/// Renders one protocol's sweep and returns the `(ln n, mean)` fit.
fn report(title: &str, unit: &str, cells: &[Cell], reps: usize) -> (Table, f64, f64) {
    let mut table = Table::new(title, &["n", unit, "sd", "plurality kept"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for cell in cells {
        table.row(&[
            format!("{:e}", cell.n as f64),
            fmt_f64(cell.stats.mean()),
            fmt_f64(cell.stats.sample_sd()),
            format!("{}/{reps}", cell.preserved),
        ]);
        xs.push(cell.n as f64);
        ys.push(cell.stats.mean());
    }
    let f = fit(&xs, &ys, Axis::Log, Axis::Linear);
    (table, f.slope, f.r_squared)
}

fn main() {
    let reps = if is_full() { 50 } else { 10 };
    let (k, alpha) = (8u32, 1.5f64);

    let sync = sweep(reps, |n, seed| {
        let r = SyncMfConfig::new(n, k, alpha)
            .expect("valid")
            .with_seed(seed)
            .run();
        (r.rounds as f64, r.outcome.plurality_preserved())
    });
    let (t, slope, r2) = report(
        format!("E22 (a): sync-mf rounds vs n (k = {k}, α₀ = {alpha})").as_str(),
        "rounds",
        &sync,
        reps,
    );
    println!("{}", t.render());
    println!(
        "rounds vs ln n: slope {slope:.3}, R² {r2:.4} \
         (paper: additive log log n — near-flat)\n"
    );
    assert!(
        slope.abs() < 1.0,
        "sync-mf rounds grew {slope:.3} per e-fold of n — faster than log log n allows"
    );
    let csv_sync = t;

    let leader = sweep(reps, |n, seed| {
        let r = LeaderMfConfig::new(n, 4, 3.0)
            .expect("valid")
            .with_seed(seed)
            .run();
        (
            r.outcome.consensus_time.expect("leader-mf converges"),
            r.outcome.plurality_preserved(),
        )
    });
    let (t, slope, r2) = report(
        "E22 (b): leader-mf consensus time vs n (k = 4, α₀ = 3)",
        "time units",
        &leader,
        reps,
    );
    println!("{}", t.render());
    println!(
        "time vs ln n: slope {slope:.3}, R² {r2:.4} \
         (Theorem 13: O(log n) time units — linear in ln n)\n"
    );
    assert!(
        slope > 0.0 && r2 > 0.9,
        "leader-mf time is not linear in ln n (slope {slope:.3}, R² {r2:.4})"
    );
    let csv_leader = t;

    let m3 = sweep(reps, |n, seed| {
        let r = Majority3MfConfig::new(n, k, alpha)
            .expect("valid")
            .with_seed(seed)
            .run();
        (r.rounds as f64, r.outcome.plurality_preserved())
    });
    let (t, slope, r2) = report(
        format!("E22 (c): 3-majority-mf rounds vs n (k = {k}, α₀ = {alpha})").as_str(),
        "rounds",
        &m3,
        reps,
    );
    println!("{}", t.render());
    println!("rounds vs ln n: slope {slope:.3}, R² {r2:.4} (classical Θ(log n))\n");
    let csv_m3 = t;

    let ud = sweep(reps, |n, seed| {
        let r = UndecidedMfConfig::new(n, k, alpha)
            .expect("valid")
            .with_seed(seed)
            .run();
        (r.rounds as f64, r.outcome.plurality_preserved())
    });
    let (t, slope, r2) = report(
        format!("E22 (d): undecided-mf rounds vs n (k = {k}, α₀ = {alpha})").as_str(),
        "rounds",
        &ud,
        reps,
    );
    println!("{}", t.render());
    println!("rounds vs ln n: slope {slope:.3}, R² {r2:.4} (classical Θ(log n))\n");
    let csv_ud = t;

    for (name, table) in [
        ("e22_mf_sync_vs_n.csv", &csv_sync),
        ("e22_mf_leader_vs_n.csv", &csv_leader),
        ("e22_mf_majority3_vs_n.csv", &csv_m3),
        ("e22_mf_undecided_vs_n.csv", &csv_ud),
    ] {
        let path = results_dir().join(name);
        table.write_csv(&path).expect("write csv");
        println!("wrote {}", path.display());
    }
}
