//! **Experiment E18 — adversarial robustness**: the aging protocols vs
//! the classic dynamics under matched churn and corruption budgets.
//!
//! The paper's model is failure-free; the related work probes exactly
//! this axis (adversarial corruptions in *Fast Consensus via the
//! Unconstrained Undecided State Dynamics*, weak-scheduler stress in
//! *Asynchronous 3-Majority Dynamics with Many Opinions*). Every engine
//! runs behind the unified facade, so the *same* scenario script — same
//! budgets, same clock — races against the generation protocol and each
//! baseline as one [`plurality_api::RunSpec`] string per contender:
//!
//! 1. **Corruption sweep** (round-based engines): a state-adaptive
//!    adversary spends budget `B·n` either early (three waves during
//!    the squaring phase) or late (one wave mid-endgame).
//! 2. **Churn** (round-based engines): crash + recover/join-churn
//!    combinations, with and without a corruption wave on top.
//! 3. **Async single-leader**: loss bursts, latency regime shifts,
//!    crash/recover and corruption on the event clock.

use plurality_api::RunSpec;
use plurality_bench::{is_full, results_dir, run_spec_many};
use plurality_scenario::Scenario;
use plurality_stats::{fmt_f64, OnlineStats, Table};

/// The round-based contenders, ours first (pull voting is excluded: it
/// hits the round cap with or without an adversary).
const RACERS: [&str; 4] = ["sync", "3-majority", "two-choices", "undecided"];

/// Per-protocol cell: mean ε-time, mean full-consensus rounds, and how
/// many repetitions fully converged on the initial plurality —
/// `"ε21.0 f28.0 [4/4]"`. ε and full are reported separately because
/// corruption splits them: residual corrupted pockets routinely block
/// full consensus while ε-convergence stays intact.
fn cell(eps: &OnlineStats, full: &OnlineStats, wins: u64, reps: usize) -> String {
    let fmt = |s: &OnlineStats| {
        if s.count() > 0 {
            fmt_f64(s.mean())
        } else {
            "-".into()
        }
    };
    format!("ε{} f{} [{wins}/{reps}]", fmt(eps), fmt(full))
}

/// Races the sync generation protocol and the three baselines over the
/// same scenario script and seeds; returns one table row of
/// [`cell`]-formatted entries (ours first).
fn race_round_based(
    master: u64,
    reps: usize,
    n: u64,
    k: u32,
    alpha: f64,
    scenario: &Scenario,
) -> Vec<String> {
    let cap = 2_000u64;
    let mut row = Vec::with_capacity(RACERS.len());
    for racer in RACERS {
        let mut spec = RunSpec::new(racer)
            .with("n", n)
            .with("k", k)
            .with("alpha", alpha);
        if racer != "sync" {
            spec = spec.with("max", cap);
        }
        if !scenario.is_empty() {
            spec = spec.with("scenario", scenario);
        }
        let mut eps = OnlineStats::new();
        let mut full = OnlineStats::new();
        let mut wins = 0u64;
        for report in run_spec_many(&spec.to_string(), master, reps) {
            if let Some(t) = report.outcome.epsilon_time {
                eps.push(t);
            }
            if let Some(t) = report.outcome.consensus_time {
                full.push(t);
            }
            if report.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        row.push(cell(&eps, &full, wins, reps));
    }
    row
}

fn main() {
    let full = is_full();
    let reps = if full { 8 } else { 4 };
    let n: u64 = if full { 50_000 } else { 20_000 };
    let k = 4u32;
    let alpha = 2.0;
    let dir = results_dir();

    // --- Table 1: matched adaptive-corruption budgets, early vs late.
    let mut t1 = Table::new(
        format!(
            "E18a · adaptive corruption, matched budgets (n = {n}, k = {k}, α₀ = {alpha}); \
             cells: ε-time · full-consensus rounds [plurality kept]"
        ),
        &[
            "budget",
            "timing",
            "generations (ours)",
            "3-majority",
            "two-choices",
            "undecided",
        ],
    );
    let budgets = [0.0, 0.05, 0.1, 0.2];
    for &budget in &budgets {
        let schedules: &[(&str, Scenario)] = if budget == 0.0 {
            &[("—", Scenario::new())]
        } else {
            &[
                (
                    "early ×3",
                    Scenario::parse(&format!(
                        "corrupt:{budget}:adaptive@2;corrupt:{budget}:adaptive@5;\
                         corrupt:{budget}:adaptive@8"
                    ))
                    .expect("valid scenario"),
                ),
                (
                    "late ×1",
                    Scenario::parse(&format!("corrupt:{budget}:adaptive@15"))
                        .expect("valid scenario"),
                ),
            ]
        };
        for (label, scenario) in schedules {
            let mut row = vec![fmt_f64(budget), label.to_string()];
            row.extend(race_round_based(0xE18A, reps, n, k, alpha, scenario));
            t1.row(&row);
        }
    }
    println!("{}", t1.render());
    println!(
        "matched budgets: the same scenario script (round clock) replays against every engine.\n"
    );
    t1.write_csv(dir.join("adversarial_robustness_corruption.csv"))
        .expect("write csv");

    // --- Table 2: churn (crash / recover / join) with and without
    // corruption on top.
    let mut t2 = Table::new(
        format!(
            "E18b · churn, matched scripts (n = {n}, k = {k}, α₀ = {alpha}); \
             cells: ε-time · full-consensus rounds [plurality kept]"
        ),
        &[
            "script",
            "generations (ours)",
            "3-majority",
            "two-choices",
            "undecided",
        ],
    );
    let churn_scripts = [
        "crash:0.25@2;recover:1@10",
        "crash:0.25@2;join:1@10",
        "crash:0.25@2;corrupt:0.1:adaptive@6;join:1@10",
        "crash:0.5@2;join:1@12",
    ];
    for script in churn_scripts {
        let scenario = Scenario::parse(script).expect("valid scenario");
        let mut row = vec![script.to_string()];
        row.extend(race_round_based(0xE18B, reps, n, k, alpha, &scenario));
        t2.row(&row);
    }
    println!("{}", t2.render());
    t2.write_csv(dir.join("adversarial_robustness_churn.csv"))
        .expect("write csv");

    // --- Table 3: the async single-leader engine on the event clock.
    let leader_n: u64 = if full { 8_000 } else { 4_000 };
    let mut t3 = Table::new(
        format!("E18c · async single-leader under scripted environments (n = {leader_n}, k = 2, α₀ = 3)"),
        &["script", "ε-time", "full time", "success", "generations"],
    );
    let leader_scripts = [
        "",
        "burst-loss:0.4@10..30",
        "latency:3@10..30",
        "crash:0.3@10;recover:1@40",
        "corrupt:0.1:adaptive@30",
        "crash:0.2@8;burst-loss:0.3@10..25;corrupt:0.1:adaptive@30;join:1@40",
    ];
    for script in leader_scripts {
        let mut spec = RunSpec::new("leader")
            .with("n", leader_n)
            .with("k", 2)
            .with("alpha", 3.0);
        if !script.is_empty() {
            spec = spec.with("scenario", script);
        }
        let mut eps_t = OnlineStats::new();
        let mut full_t = OnlineStats::new();
        let mut gens = OnlineStats::new();
        let mut wins = 0u64;
        for r in run_spec_many(&spec.to_string(), 0xE18C, reps) {
            if let Some(e) = r.outcome.epsilon_time {
                eps_t.push(e);
            }
            if let Some(f) = r.outcome.consensus_time {
                full_t.push(f);
            }
            gens.push(
                r.phases()
                    .expect("phases: present on every protocol=leader run spec")
                    .len() as f64,
            );
            if r.outcome.plurality_preserved() {
                wins += 1;
            }
        }
        t3.row(&[
            if script.is_empty() { "(clean)" } else { script }.to_string(),
            if eps_t.count() > 0 {
                fmt_f64(eps_t.mean())
            } else {
                "-".into()
            },
            if full_t.count() > 0 {
                fmt_f64(full_t.mean())
            } else {
                "-".into()
            },
            format!("{wins}/{reps}"),
            fmt_f64(gens.mean()),
        ]);
    }
    println!("{}", t3.render());
    t3.write_csv(dir.join("adversarial_robustness_leader.csv"))
        .expect("write csv");

    println!(
        "wrote {}",
        dir.join("adversarial_robustness_{corruption,churn,leader}.csv")
            .display()
    );
}
