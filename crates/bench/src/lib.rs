//! # plurality-bench
//!
//! Experiment harness for the `plurality` workspace. Each binary in
//! `src/bin/` regenerates one figure or quantitative claim of the paper
//! (see DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
//! results); the Criterion benches in `benches/` cover engine and sampler
//! throughput plus smoke-size versions of the main experiments.
//!
//! All binaries accept an optional `full` argument (or the environment
//! variable `PLURALITY_EFFORT=full`) to run at publication scale; the
//! default "quick" scale finishes in seconds to a few minutes per binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use plurality_dist::rng::derive_seed;
use std::path::PathBuf;

/// Whether the current invocation asked for the full-scale experiment
/// (argument `full` or `PLURALITY_EFFORT=full`).
pub fn is_full() -> bool {
    std::env::args().any(|a| a == "full")
        || std::env::var("PLURALITY_EFFORT")
            .map(|v| v == "full")
            .unwrap_or(false)
}

/// Directory where experiment CSVs are written (`results/` under the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PLURALITY_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Derives `reps` per-repetition seeds from a master seed — stable across
/// runs so experiments are reproducible.
pub fn seeds(master: u64, reps: usize) -> Vec<u64> {
    (0..reps as u64).map(|i| derive_seed(master, i)).collect()
}

/// Logarithmically spaced values from `lo` to `hi` (inclusive).
///
/// # Panics
///
/// Panics if `lo ≤ 0`, `hi ≤ lo`, or `points < 2`.
pub fn log_spaced(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(
        lo > 0.0 && hi > lo && points >= 2,
        "bad log_spaced arguments"
    );
    let step = (hi / lo).ln() / (points - 1) as f64;
    (0..points).map(|i| lo * (step * i as f64).exp()).collect()
}

/// The paper's bias lower bound `1 + (k·log n/√n)·log k` (Theorems 1, 13,
/// 26), clamped to at least `1 + 10/√n` so tiny instances stay feasible.
pub fn theorem_bias(n: u64, k: u32) -> f64 {
    let nf = n as f64;
    let kf = k as f64;
    let bound = kf * nf.log2() / nf.sqrt() * kf.log2().max(1.0);
    1.0 + bound.max(10.0 / nf.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spaced_endpoints_and_monotone() {
        let v = log_spaced(1.0, 1000.0, 4);
        assert_eq!(v.len(), 4);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[3] - 1000.0).abs() < 1e-9);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = seeds(1, 5);
        let b = seeds(1, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn theorem_bias_exceeds_one() {
        assert!(theorem_bias(10_000, 8) > 1.0);
        assert!(theorem_bias(100, 2) > 1.0);
        // Larger k needs more bias at fixed n.
        assert!(theorem_bias(100_000, 64) > theorem_bias(100_000, 4));
    }
}
