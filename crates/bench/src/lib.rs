//! # plurality-bench
//!
//! Experiment harness for the `plurality` workspace. Each binary in
//! `src/bin/` regenerates one figure or quantitative claim of the paper
//! (see DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
//! results); the Criterion benches in `benches/` cover engine and sampler
//! throughput plus smoke-size versions of the main experiments.
//!
//! All binaries accept an optional `full` argument (or the environment
//! variable `PLURALITY_EFFORT=full`) to run at publication scale; the
//! default "quick" scale finishes in seconds to a few minutes per binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use plurality_dist::rng::derive_seed;
use std::path::PathBuf;

/// Whether the current invocation asked for the full-scale experiment
/// (argument `full` or `PLURALITY_EFFORT=full`).
pub fn is_full() -> bool {
    std::env::args().any(|a| a == "full")
        || std::env::var("PLURALITY_EFFORT")
            .map(|v| v == "full")
            .unwrap_or(false)
}

/// Directory where experiment CSVs are written (`results/` under the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PLURALITY_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Derives `reps` per-repetition seeds from a master seed — stable across
/// runs so experiments are reproducible. [`run_many`] walks the same
/// stream, so converting a serial `for seed in seeds(m, reps)` loop into
/// `run_many(m, reps, ...)` preserves every per-repetition seed.
pub fn seeds(master: u64, reps: usize) -> Vec<u64> {
    (0..reps as u64).map(|i| derive_seed(master, i)).collect()
}

/// One repetition of a seeded experiment: its index in the repetition
/// stream and the private seed `derive_seed(master, index)` it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repetition {
    /// Position in the repetition stream (`0..reps`).
    pub index: usize,
    /// The repetition's private RNG seed.
    pub seed: u64,
}

/// Runs `reps` independent repetitions of a seeded experiment in
/// parallel (worker count from `PLURALITY_THREADS`, see
/// [`plurality_par::configured_threads`]), returning results in
/// repetition order.
///
/// This is the one rep loop all experiment binaries share. The results
/// are **identical to serial execution** for any thread count: each
/// repetition owns the seed `derive_seed(master, index)` (the same
/// stream [`seeds`] produces), no RNG state is shared, and the output
/// order is fixed by repetition index — so folding the returned vector
/// into `OnlineStats`/tables in order reproduces exactly what the old
/// hand-rolled `for seed in seeds(...)` loops computed.
///
/// # Examples
///
/// ```
/// use plurality_bench::{run_many, seeds};
///
/// let results = run_many(7, 4, |rep| rep.seed);
/// assert_eq!(results, seeds(7, 4));
/// ```
pub fn run_many<R, F>(master: u64, reps: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Repetition) -> R + Sync,
{
    plurality_par::par_map_seeded(master, reps, |index, seed| f(Repetition { index, seed }))
}

/// Maps `f` over the cells of a parameter sweep in parallel, preserving
/// cell order. For sweeps whose cells are deterministic given their own
/// parameters (fixed or derived seeds) — e.g. the Figure 1 Monte-Carlo
/// quantile curve.
pub fn run_sweep<T, R, F>(cells: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    plurality_par::par_map(cells, f)
}

/// Resolves a [`plurality_api::RunSpec`] string once and runs `reps`
/// seeded repetitions in parallel — [`run_many`] for the unified
/// facade. Repetition `i` runs with seed `derive_seed(master, i)`, the
/// same stream [`seeds`] produces, so a converted experiment reproduces
/// its direct-builder numbers exactly (the facade's bitwise contract).
///
/// # Panics
///
/// Panics if the spec does not parse or resolve — experiment binaries
/// hard-code their specs, so a bad spec is a bug, not an input error.
///
/// # Examples
///
/// ```
/// use plurality_bench::run_spec_many;
///
/// let reports = run_spec_many("two-choices?n=400&k=2&alpha=3.0", 7, 2);
/// assert_eq!(reports.len(), 2);
/// assert!(reports.iter().all(|r| r.outcome.plurality_preserved()));
/// ```
pub fn run_spec_many(spec: &str, master: u64, reps: usize) -> Vec<plurality_api::Report> {
    let parsed = plurality_api::RunSpec::parse(spec).expect("valid run spec");
    let resolved = plurality_api::Registry::standard()
        .resolve(&parsed)
        .unwrap_or_else(|e| panic!("unresolvable run spec `{spec}`: {e}"));
    run_many(master, reps, |rep| resolved.run_seeded(rep.seed))
}

/// Logarithmically spaced values from `lo` to `hi` (inclusive).
///
/// # Panics
///
/// Panics if `lo ≤ 0`, `hi ≤ lo`, or `points < 2`.
pub fn log_spaced(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(
        lo > 0.0 && hi > lo && points >= 2,
        "bad log_spaced arguments"
    );
    let step = (hi / lo).ln() / (points - 1) as f64;
    (0..points).map(|i| lo * (step * i as f64).exp()).collect()
}

/// The paper's bias lower bound `1 + (k·log n/√n)·log k` (Theorems 1, 13,
/// 26), clamped to at least `1 + 10/√n` so tiny instances stay feasible.
pub fn theorem_bias(n: u64, k: u32) -> f64 {
    let nf = n as f64;
    let kf = k as f64;
    let bound = kf * nf.log2() / nf.sqrt() * kf.log2().max(1.0);
    1.0 + bound.max(10.0 / nf.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_spaced_endpoints_and_monotone() {
        let v = log_spaced(1.0, 1000.0, 4);
        assert_eq!(v.len(), 4);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[3] - 1000.0).abs() < 1e-9);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = seeds(1, 5);
        let b = seeds(1, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn run_many_matches_serial_seed_stream() {
        let serial: Vec<u64> = seeds(0xAB, 9).iter().map(|s| s.wrapping_mul(3)).collect();
        let parallel = run_many(0xAB, 9, |rep| rep.seed.wrapping_mul(3));
        assert_eq!(parallel, serial);
        let indices: Vec<usize> = run_many(0xAB, 9, |rep| rep.index);
        assert_eq!(indices, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn run_sweep_preserves_cell_order() {
        let cells = [3.0f64, 1.0, 2.0];
        let out = run_sweep(&cells, |x| x * 10.0);
        assert_eq!(out, vec![30.0, 10.0, 20.0]);
    }

    #[test]
    fn theorem_bias_exceeds_one() {
        assert!(theorem_bias(10_000, 8) > 1.0);
        assert!(theorem_bias(100, 2) > 1.0);
        // Larger k needs more bias at fixed n.
        assert!(theorem_bias(100_000, 64) > theorem_bias(100_000, 4));
    }
}
