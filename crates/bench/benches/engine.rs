//! B1: engine throughput — event queue operations and end-to-end protocol
//! runs at fixed small sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use plurality_core::cluster::ClusterConfig;
use plurality_core::leader::LeaderConfig;
use plurality_core::sync::SyncConfig;
use plurality_core::InitialAssignment;
use plurality_sim::EventQueue;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    group.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1000u32 {
                // Deterministic pseudo-random times.
                let t = ((i.wrapping_mul(2654435761)) % 10_000) as f64;
                q.schedule(t, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc += v as u64;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_runs");
    group.sample_size(10);

    group.bench_function("sync_n10k_k4", |b| {
        let assignment = InitialAssignment::with_bias(10_000, 4, 2.0).unwrap();
        b.iter(|| {
            let r = SyncConfig::new(assignment.clone()).with_seed(1).run();
            black_box(r.rounds)
        });
    });

    group.bench_function("leader_n2k_k2", |b| {
        let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).unwrap();
        b.iter(|| {
            let r = LeaderConfig::new(assignment.clone())
                .with_seed(1)
                .with_steps_per_unit(9.3)
                .run();
            black_box(r.ticks)
        });
    });

    group.bench_function("cluster_n2k_k2", |b| {
        let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).unwrap();
        b.iter(|| {
            let r = ClusterConfig::new(assignment.clone())
                .with_seed(1)
                .with_steps_per_unit(12.0)
                .run();
            black_box(r.ticks)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_queue, bench_protocols);
criterion_main!(benches);
