//! B2: throughput of the probability substrate's samplers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::{
    sample_binomial, sample_poisson, AliasTable, ChannelPattern, Exponential, Gamma, Latency,
    WaitingTime, Weibull,
};
use rand::RngCore;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.sample_size(20);

    group.bench_function("xoshiro_u64", |b| {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        b.iter(|| black_box(rng.next_u64()));
    });

    group.bench_function("exponential", |b| {
        let d = Exponential::new(1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        b.iter(|| black_box(d.sample(&mut rng)));
    });

    group.bench_function("gamma_shape7", |b| {
        let d = Gamma::new(7.0, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        b.iter(|| black_box(d.sample(&mut rng)));
    });

    group.bench_function("weibull", |b| {
        let d = Weibull::new(1.5, 1.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        b.iter(|| black_box(d.sample(&mut rng)));
    });

    group.bench_function("binomial_n1e6", |b| {
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        b.iter(|| black_box(sample_binomial(1_000_000, 0.3, &mut rng)));
    });

    group.bench_function("poisson_1000", |b| {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        b.iter(|| black_box(sample_poisson(1000.0, &mut rng)));
    });

    group.bench_function("alias_table_k64", |b| {
        let weights: Vec<f64> = (1..=64).map(|i| 1.0 / i as f64).collect();
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        b.iter(|| black_box(table.sample(&mut rng)));
    });

    group.bench_function("waiting_time_t3", |b| {
        let wt = WaitingTime::new(
            Latency::exponential(1.0).unwrap(),
            ChannelPattern::SingleLeader,
        );
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        b.iter(|| black_box(wt.sample_t3(&mut rng)));
    });

    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
