//! B3–B6: smoke-size versions of the main experiments, wired into
//! Criterion so `cargo bench` regenerates every figure-shaped series.
//!
//! Each bench reproduces the *computation* of one experiment at reduced
//! scale; the experiment binaries in `src/bin/` print the full tables.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use plurality_baselines::{Dynamics, DynamicsConfig};
use plurality_core::leader::LeaderConfig;
use plurality_core::sync::SyncConfig;
use plurality_core::InitialAssignment;
use plurality_dist::{ChannelPattern, Latency, WaitingTime};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_time_unit");
    group.sample_size(10);
    for inv_lambda in [1.0, 10.0, 100.0] {
        group.bench_function(format!("c1_invlambda_{inv_lambda}"), |b| {
            let wt = WaitingTime::new(
                Latency::exponential(1.0 / inv_lambda).unwrap(),
                ChannelPattern::SingleLeader,
            );
            b.iter(|| black_box(wt.time_unit(10_000, 42)));
        });
    }
    group.finish();
}

fn bench_thm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm1_sync");
    group.sample_size(10);
    for k in [2u32, 16] {
        group.bench_function(format!("sync_n20k_k{k}"), |b| {
            let assignment = InitialAssignment::with_bias(20_000, k, 2.0).unwrap();
            b.iter(|| {
                let r = SyncConfig::new(assignment.clone()).with_seed(7).run();
                black_box(r.rounds)
            });
        });
    }
    group.finish();
}

fn bench_thm13(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm13_async");
    group.sample_size(10);
    group.bench_function("leader_n5k_k4", |b| {
        let assignment = InitialAssignment::with_bias(5_000, 4, 2.0).unwrap();
        b.iter(|| {
            let r = LeaderConfig::new(assignment.clone())
                .with_seed(7)
                .with_steps_per_unit(9.3)
                .run();
            black_box(r.outcome.epsilon_time)
        });
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_race");
    group.sample_size(10);
    for dynamics in [Dynamics::ThreeMajority, Dynamics::TwoChoices] {
        group.bench_function(dynamics.name(), |b| {
            let assignment = InitialAssignment::with_bias(20_000, 8, 2.0).unwrap();
            b.iter(|| {
                let r = DynamicsConfig::new(dynamics, assignment.clone())
                    .with_seed(7)
                    .with_max_rounds(500)
                    .run();
                black_box(r.rounds)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_thm1,
    bench_thm13,
    bench_baselines
);
criterion_main!(benches);
