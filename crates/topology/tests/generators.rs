//! Property tests for the graph generators: structural invariants every
//! family must satisfy for arbitrary sizes, parameters, and seeds.

use plurality_topology::{Graph, Topology};
use proptest::prelude::*;

/// All invariants [`Graph::from_edges`] promises, re-checked from the
/// public accessors: handshake lemma, simplicity (no self-loops, no
/// multi-edges), and adjacency symmetry.
fn assert_simple_undirected(g: &Graph) {
    let degree_sum: usize = (0..g.n() as u32).map(|v| g.degree(v)).sum();
    assert_eq!(degree_sum, 2 * g.edge_count(), "handshake lemma violated");
    assert_eq!(degree_sum % 2, 0, "degree sum must be even");
    for v in 0..g.n() as u32 {
        let row = g.neighbors(v);
        for &w in row {
            assert_ne!(w, v, "self-loop at {v}");
            assert!(g.has_edge(w, v), "edge ({v}, {w}) missing its reverse");
        }
        for pair in row.windows(2) {
            assert!(
                pair[0] < pair[1],
                "row of {v} not strictly sorted: multi-edge or disorder"
            );
        }
    }
}

fn build(topology: Topology, n: usize, seed: u64) -> Graph {
    topology
        .build(n, seed)
        .unwrap_or_else(|e| panic!("{} on n = {n}: {e}", topology.label()))
        .into_graph()
        .expect("non-complete topology carries a graph")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ring_invariants(n in 3usize..400, seed in 0u64..1u64 << 40) {
        let g = build(Topology::Ring, n, seed);
        assert_simple_undirected(&g);
        prop_assert_eq!(g.edge_count(), n);
        prop_assert_eq!((g.min_degree(), g.max_degree()), (2, 2));
        prop_assert!(g.is_connected());
    }

    #[test]
    fn torus_invariants(r in 3usize..16, c in 3usize..16, seed in 0u64..1u64 << 40) {
        let n = r * c;
        let g = build(Topology::Torus2D, n, seed);
        assert_simple_undirected(&g);
        prop_assert_eq!((g.min_degree(), g.max_degree()), (4, 4));
        prop_assert_eq!(g.edge_count(), 2 * n);
        prop_assert!(g.is_connected(), "torus on {}x{} disconnected", r, c);
    }

    #[test]
    fn erdos_renyi_invariants(n in 2usize..300, p in 0.0f64..1.0, seed in 0u64..1u64 << 40) {
        let g = build(Topology::ErdosRenyi { p }, n, seed);
        assert_simple_undirected(&g);
        prop_assert!(g.edge_count() <= n * (n - 1) / 2);
    }

    #[test]
    fn regular_invariants(half_nd in 2usize..300, d in 1usize..9, seed in 0u64..1u64 << 40) {
        // Force n·d even by construction and n > d.
        let n = (2 * half_nd / d.max(1)).max(d + 1);
        let n = if n * d % 2 == 1 { n + 1 } else { n };
        let g = build(Topology::Regular { d }, n, seed);
        assert_simple_undirected(&g);
        prop_assert_eq!((g.min_degree(), g.max_degree()), (d, d));
        prop_assert_eq!(g.edge_count(), n * d / 2);
        // Connectivity holds whp. for d ≥ 3 at these sizes; the bounded
        // seed range keeps this a fixed, reproducible family of cases.
        if d >= 3 {
            prop_assert!(g.is_connected(), "d = {} on n = {} disconnected", d, n);
        }
    }

    #[test]
    fn preferential_attachment_invariants(n in 4usize..300, m in 1usize..6, seed in 0u64..1u64 << 40) {
        prop_assume!(n >= m + 2);
        let g = build(Topology::PreferentialAttachment { m }, n, seed);
        assert_simple_undirected(&g);
        prop_assert_eq!(g.edge_count(), (m + 1) * m / 2 + (n - m - 1) * m);
        prop_assert!(g.min_degree() >= m);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn random_families_are_seed_reproducible(n in 20usize..200, seed in 0u64..1u64 << 40) {
        for topology in [
            Topology::ErdosRenyi { p: 0.1 },
            Topology::Regular { d: 4 },
            Topology::PreferentialAttachment { m: 2 },
        ] {
            let n = if n % 2 == 1 { n + 1 } else { n };
            let a = build(topology, n, seed);
            let b = build(topology, n, seed);
            prop_assert_eq!(&a, &b, "{} not reproducible", topology.label());
            // A different seed must change the graph (the families above
            // have astronomically many outcomes at these sizes).
            let c = build(topology, n, seed ^ 0x5EED_5EED);
            prop_assert!(a != c, "{} ignores its seed", topology.label());
        }
    }
}

#[test]
fn deterministic_families_ignore_the_seed() {
    for topology in [Topology::Ring, Topology::Torus2D] {
        let a = build(topology, 36, 0);
        let b = build(topology, 36, 0xFFFF_FFFF);
        assert_eq!(a, b, "{} should not depend on the seed", topology.label());
    }
}

#[test]
fn complete_topology_builds_the_fast_path() {
    let sampler = Topology::Complete.build(1_000, 0).unwrap();
    assert!(sampler.is_complete());
    assert!(sampler.graph().is_none());
    assert_eq!(sampler.n(), 1_000);
}
