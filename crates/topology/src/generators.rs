//! Seeded graph-family generators behind the declarative [`Topology`]
//! spec.
//!
//! Every generator is a pure function of `(n, seed)`: the same pair
//! always yields the identical [`Graph`], on any platform and thread
//! count, because all randomness flows through a private
//! `Xoshiro256PlusPlus` instance seeded by the caller.

use crate::graph::Graph;
use crate::sampler::PeerSampler;
use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::InvalidParameterError;
use rand::Rng;
use std::collections::HashSet;

/// A declarative communication-topology spec, attached to engine configs
/// via their `with_topology` setters and materialized by [`Topology::build`].
///
/// Cheap to copy and comparable, so configs stay `Clone + PartialEq`.
///
/// # Examples
///
/// ```
/// use plurality_topology::Topology;
///
/// let sampler = Topology::Torus2D.build(36, 0).unwrap();
/// let g = sampler.graph().unwrap();
/// assert_eq!((g.min_degree(), g.max_degree()), (4, 4));
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Topology {
    /// The complete graph — the paper's model. Peer draws are uniform
    /// over all nodes (self-draws allowed, matching the historical
    /// engines); no adjacency is materialized.
    #[default]
    Complete,
    /// The cycle on `n ≥ 3` nodes (degree 2, diameter `⌊n/2⌋`) — the
    /// slowest-mixing connected benchmark.
    Ring,
    /// The 2-D torus on `r × c = n` nodes with `r, c ≥ 3` (degree 4).
    /// `r` is the largest divisor of `n` with `r ≤ √n`; build fails if no
    /// factorization with both sides ≥ 3 exists (e.g. prime `n`).
    Torus2D,
    /// Erdős–Rényi `G(n, p)`: each of the `n(n−1)/2` pairs is an edge
    /// independently with probability `p`. May be disconnected (isolated
    /// nodes sample themselves); connected whp. for `p > ln n / n`.
    ErdosRenyi {
        /// The independent edge probability, in `[0, 1]`.
        p: f64,
    },
    /// A uniformly random simple `d`-regular graph via the configuration
    /// model with simple-graph rejection (Steger–Wormald pairing: stub
    /// pairs that would create a self-loop or multi-edge are rejected and
    /// redrawn; a stuck pairing restarts). Requires `n·d` even and
    /// `d < n`. Connected whp. for `d ≥ 3` — an expander.
    Regular {
        /// The common degree `d ≥ 1`.
        d: usize,
    },
    /// Barabási–Albert preferential attachment: a complete seed graph on
    /// `m + 1` nodes, then each arriving node attaches `m` edges to
    /// distinct existing nodes with probability proportional to degree.
    /// Heavy-tailed degrees; always connected.
    PreferentialAttachment {
        /// Edges per arriving node, `m ≥ 1`; requires `n ≥ m + 2`.
        m: usize,
    },
}

impl Topology {
    /// A short stable label (with parameters) for tables and CSV rows.
    pub fn label(&self) -> String {
        match self {
            Self::Complete => "complete".into(),
            Self::Ring => "ring".into(),
            Self::Torus2D => "torus2d".into(),
            Self::ErdosRenyi { p } => {
                // 4 decimals, trailing zeros trimmed: p near the
                // connectivity threshold ln n / n stays readable.
                let rounded = format!("{p:.4}");
                let trimmed = rounded.trim_end_matches('0').trim_end_matches('.');
                format!("er(p={trimmed})")
            }
            Self::Regular { d } => format!("regular(d={d})"),
            Self::PreferentialAttachment { m } => format!("pa(m={m})"),
        }
    }

    /// Whether this spec is the complete graph (the zero-allocation
    /// engine fast path).
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Complete)
    }

    /// Renders the spec in the compact grammar shared by the CLI's
    /// `--topology` flag and the scenario DSL's `rewire:` action:
    /// `complete | ring | torus | er:P | regular:D | pa:M`. Numeric
    /// parameters use Rust's shortest round-trip formatting, so
    /// `Topology::parse_spec(&t.spec()) == Ok(t)` for every spec.
    pub fn spec(&self) -> String {
        match self {
            Self::Complete => "complete".into(),
            Self::Ring => "ring".into(),
            Self::Torus2D => "torus".into(),
            Self::ErdosRenyi { p } => format!("er:{p}"),
            Self::Regular { d } => format!("regular:{d}"),
            Self::PreferentialAttachment { m } => format!("pa:{m}"),
        }
    }

    /// Parses the compact spec grammar (the inverse of
    /// [`Topology::spec`]). Only the grammar is checked here; population
    /// constraints are [`Topology::validate`]'s job.
    ///
    /// # Examples
    ///
    /// ```
    /// use plurality_topology::Topology;
    /// assert_eq!(Topology::parse_spec("er:0.01"), Ok(Topology::ErdosRenyi { p: 0.01 }));
    /// assert_eq!(Topology::parse_spec("regular:8"), Ok(Topology::Regular { d: 8 }));
    /// assert!(Topology::parse_spec("hypercube").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] for unknown families or
    /// malformed parameters.
    pub fn parse_spec(spec: &str) -> Result<Self, InvalidParameterError> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["complete"] => Ok(Self::Complete),
            ["ring"] => Ok(Self::Ring),
            ["torus"] => Ok(Self::Torus2D),
            ["er", p] => {
                let p: f64 = p
                    .parse()
                    .map_err(|_| InvalidParameterError::new(format!("`{p}` is not a number")))?;
                Ok(Self::ErdosRenyi { p })
            }
            ["regular", d] => {
                let d: usize = d
                    .parse()
                    .map_err(|_| InvalidParameterError::new(format!("`{d}` is not an integer")))?;
                Ok(Self::Regular { d })
            }
            ["pa", m] => {
                let m: usize = m
                    .parse()
                    .map_err(|_| InvalidParameterError::new(format!("`{m}` is not an integer")))?;
                Ok(Self::PreferentialAttachment { m })
            }
            _ => Err(InvalidParameterError::new(format!(
                "unknown topology spec `{spec}` (expected complete, ring, torus, er:P, \
                 regular:D, or pa:M)"
            ))),
        }
    }

    /// Checks the family's parameter constraints against a population
    /// size without materializing anything — O(√n) worst case (the
    /// torus factorization), no allocation. [`Topology::build`] runs the
    /// same checks first, so `validate` is the cheap front door for
    /// callers (e.g. the CLI) that want early errors without paying for
    /// a throwaway graph construction.
    ///
    /// A passing `validate` does not guarantee `build` succeeds in one
    /// corner case: [`Topology::Regular`] can still exhaust its pairing
    /// restart budget (practically unreachable for `d ≤ √n`).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if the constraints are
    /// violated (see the variant docs).
    pub fn validate(&self, n: usize) -> Result<(), InvalidParameterError> {
        if n == 0 {
            return Err(InvalidParameterError::new(
                "topology needs at least one node",
            ));
        }
        if u32::try_from(n).is_err() {
            // Peer draws travel as u32 node ids throughout the
            // workspace; a larger population would silently truncate.
            return Err(InvalidParameterError::new(format!(
                "population {n} exceeds the u32 node-id space"
            )));
        }
        match *self {
            Self::Complete => Ok(()),
            Self::Ring => {
                if n < 3 {
                    return Err(InvalidParameterError::new(format!(
                        "ring needs n ≥ 3, got {n}"
                    )));
                }
                Ok(())
            }
            Self::Torus2D => {
                let r = near_square_factor(n);
                if r < 3 {
                    return Err(InvalidParameterError::new(format!(
                        "2-D torus needs n = r·c with r, c ≥ 3; n = {n} only factors as {r}×{}",
                        n / r
                    )));
                }
                Ok(())
            }
            Self::ErdosRenyi { p } => {
                if !(0.0..=1.0).contains(&p) {
                    return Err(InvalidParameterError::new(format!(
                        "G(n, p) needs p ∈ [0, 1], got {p}"
                    )));
                }
                if n < 2 {
                    return Err(InvalidParameterError::new(format!(
                        "G(n, p) needs n ≥ 2, got {n}"
                    )));
                }
                Ok(())
            }
            Self::Regular { d } => {
                if d == 0 || d >= n {
                    return Err(InvalidParameterError::new(format!(
                        "d-regular graph needs 1 ≤ d < n, got d = {d}, n = {n}"
                    )));
                }
                if n * d % 2 != 0 {
                    return Err(InvalidParameterError::new(format!(
                        "d-regular graph needs n·d even, got n = {n}, d = {d}"
                    )));
                }
                Ok(())
            }
            Self::PreferentialAttachment { m } => {
                if m == 0 {
                    return Err(InvalidParameterError::new(
                        "preferential attachment needs m ≥ 1",
                    ));
                }
                if n < m + 2 {
                    return Err(InvalidParameterError::new(format!(
                        "preferential attachment needs n ≥ m + 2, got n = {n}, m = {m}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Materializes the spec for a population of `n` nodes into a
    /// [`PeerSampler`]. Random families draw all randomness from a
    /// generator seeded with `seed`; [`Topology::Complete`], [`Topology::Ring`]
    /// and [`Topology::Torus2D`] are deterministic and ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if [`Topology::validate`]
    /// rejects `(n, parameters)`, or — for [`Topology::Regular`] — if no
    /// simple pairing was found after the internal restart budget
    /// (practically unreachable for `d ≤ √n`).
    pub fn build(&self, n: usize, seed: u64) -> Result<PeerSampler, InvalidParameterError> {
        self.validate(n)?;
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let graph = match *self {
            Self::Complete => return Ok(PeerSampler::complete(n)),
            Self::Ring => ring(n)?,
            Self::Torus2D => torus2d(n)?,
            Self::ErdosRenyi { p } => erdos_renyi(n, p, &mut rng)?,
            Self::Regular { d } => random_regular(n, d, &mut rng)?,
            Self::PreferentialAttachment { m } => preferential_attachment(n, m, &mut rng)?,
        };
        Ok(PeerSampler::sparse(graph))
    }
}

// The generator functions below assume [`Topology::validate`] already
// accepted `(n, parameters)` — `build` always runs it first, so the
// constraints live in exactly one place; the `debug_assert!`s restate
// the preconditions for readers and debug builds.

/// The cycle on `n ≥ 3` nodes.
fn ring(n: usize) -> Result<Graph, InvalidParameterError> {
    debug_assert!(n >= 3, "validate enforces n ≥ 3");
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .map(|i| (i, if i as usize + 1 == n { 0 } else { i + 1 }))
        .collect();
    Graph::from_edges(n, &edges)
}

/// The largest divisor of `n` that is at most `⌊√n⌋`.
fn near_square_factor(n: usize) -> usize {
    let mut r = 1;
    let mut i = 1;
    while i * i <= n {
        if n % i == 0 {
            r = i;
        }
        i += 1;
    }
    r
}

/// The `r × c` torus with 4-neighborhoods, `r` the near-square factor.
fn torus2d(n: usize) -> Result<Graph, InvalidParameterError> {
    let r = near_square_factor(n);
    let c = n / r;
    debug_assert!(r >= 3, "validate enforces r, c ≥ 3");
    let mut edges = Vec::with_capacity(2 * n);
    for row in 0..r {
        for col in 0..c {
            let v = (row * c + col) as u32;
            let right = (row * c + (col + 1) % c) as u32;
            let down = (((row + 1) % r) * c + col) as u32;
            edges.push((v, right));
            edges.push((v, down));
        }
    }
    Graph::from_edges(n, &edges)
}

/// `G(n, p)` via geometric gap-skipping over the linearized pair space:
/// expected cost `O(n²p + n)` instead of `O(n²)`.
fn erdos_renyi(
    n: usize,
    p: f64,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<Graph, InvalidParameterError> {
    debug_assert!((0.0..=1.0).contains(&p) && n >= 2, "validate enforces this");
    let total = n as u64 * (n as u64 - 1) / 2;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                edges.push((u, v));
            }
        }
        return Graph::from_edges(n, &edges);
    }
    if p > 0.0 {
        // ln(1 − p) via ln_1p: exact for tiny p, where `(1.0 - p).ln()`
        // rounds to +0.0 below p ≈ 1.1e-16 and the gap quotient would
        // degenerate (−∞ → every pair emitted — the complete graph).
        let ln_q = (-p).ln_1p(); // < 0 for every p > 0
        let mut idx: u64 = 0;
        loop {
            // Geometric gap: #pairs skipped before the next edge.
            let u: f64 = rng.gen();
            let gap = ((1.0 - u).ln() / ln_q).floor();
            if gap >= (total - idx) as f64 {
                break;
            }
            idx += gap as u64;
            if idx >= total {
                break;
            }
            edges.push(unrank_pair(idx, n as u64));
            idx += 1;
            if idx >= total {
                break;
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Inverse of the row-major upper-triangular pair ranking: maps
/// `t ∈ [0, n(n−1)/2)` to the pair `(i, j)`, `i < j`, with rank
/// `t = i·n − i(i+1)/2 + (j − i − 1)`.
fn unrank_pair(t: u64, n: u64) -> (u32, u32) {
    // Initial guess from the quadratic formula, then adjust (f64 rounding
    // stays within ±1 for any n that fits the u32 id space).
    let tf = t as f64;
    let nf = n as f64;
    let disc = (2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * tf;
    let mut i = ((2.0 * nf - 1.0 - disc.max(0.0).sqrt()) / 2.0).floor() as u64;
    i = i.min(n - 2);
    let row_start = |i: u64| i * n - i * (i + 1) / 2;
    while i > 0 && row_start(i) > t {
        i -= 1;
    }
    while row_start(i + 1) <= t {
        i += 1;
    }
    let j = i + 1 + (t - row_start(i));
    (i as u32, j as u32)
}

/// Uniform-ish random simple `d`-regular graph: configuration-model stub
/// pairing with pair-level rejection of self-loops and multi-edges
/// (Steger–Wormald), restarting a stuck pairing from scratch.
fn random_regular(
    n: usize,
    d: usize,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<Graph, InvalidParameterError> {
    debug_assert!(
        d >= 1 && d < n && n * d % 2 == 0,
        "validate enforces 1 ≤ d < n and n·d even"
    );
    const MAX_ATTEMPTS: usize = 200;
    for _ in 0..MAX_ATTEMPTS {
        if let Some(edges) = try_stub_pairing(n, d, rng) {
            return Graph::from_edges(n, &edges);
        }
    }
    Err(InvalidParameterError::new(format!(
        "no simple {d}-regular pairing on {n} nodes found after {MAX_ATTEMPTS} restarts"
    )))
}

/// One Steger–Wormald pairing attempt: repeatedly draw two random free
/// stubs and accept the pair unless it would create a self-loop or
/// multi-edge; give up (→ restart) after too many consecutive
/// rejections, which happens only when the few remaining stubs admit no
/// simple completion.
fn try_stub_pairing(n: usize, d: usize, rng: &mut Xoshiro256PlusPlus) -> Option<Vec<(u32, u32)>> {
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for v in 0..n as u32 {
        stubs.extend(std::iter::repeat(v).take(d));
    }
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
    let mut present: HashSet<(u32, u32)> = HashSet::with_capacity(n * d / 2);
    let mut consecutive_rejections = 0usize;
    while stubs.len() > 1 {
        let i = rng.gen_range(0..stubs.len());
        let j = {
            let r = rng.gen_range(0..stubs.len() - 1);
            if r >= i {
                r + 1
            } else {
                r
            }
        };
        let (u, v) = (stubs[i], stubs[j]);
        let key = (u.min(v), u.max(v));
        if u == v || present.contains(&key) {
            consecutive_rejections += 1;
            // The tail of the pairing can get stuck (e.g. all remaining
            // stubs on one node); 64 + |stubs|² failed draws make a
            // simple completion overwhelmingly unlikely.
            if consecutive_rejections > 64 + stubs.len() * stubs.len() {
                return None;
            }
            continue;
        }
        consecutive_rejections = 0;
        present.insert(key);
        edges.push(key);
        // Remove the larger index first so the smaller stays valid.
        let (hi, lo) = (i.max(j), i.min(j));
        stubs.swap_remove(hi);
        stubs.swap_remove(lo);
    }
    Some(edges)
}

/// Barabási–Albert preferential attachment via the repeated-endpoints
/// list (each node appears once per incident edge, so a uniform draw
/// from the list is exactly a degree-proportional node draw).
fn preferential_attachment(
    n: usize,
    m: usize,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<Graph, InvalidParameterError> {
    debug_assert!(m >= 1 && n >= m + 2, "validate enforces m ≥ 1, n ≥ m + 2");
    let seed_nodes = m + 1;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(seed_nodes * m / 2 + (n - seed_nodes) * m);
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * edges.capacity());
    for u in 0..seed_nodes as u32 {
        for v in u + 1..seed_nodes as u32 {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets: Vec<u32> = Vec::with_capacity(m);
    for v in seed_nodes as u32..n as u32 {
        targets.clear();
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Topology::Complete.label(), "complete");
        assert_eq!(Topology::ErdosRenyi { p: 0.25 }.label(), "er(p=0.25)");
        assert_eq!(Topology::Regular { d: 4 }.label(), "regular(d=4)");
        assert_eq!(Topology::PreferentialAttachment { m: 2 }.label(), "pa(m=2)");
        assert!(Topology::Complete.is_complete());
        assert!(!Topology::Ring.is_complete());
        assert_eq!(Topology::default(), Topology::Complete);
    }

    #[test]
    fn validate_agrees_with_build() {
        let cases: &[(Topology, usize, bool)] = &[
            (Topology::Complete, 10, true),
            (Topology::Ring, 2, false),
            (Topology::Torus2D, 13, false),
            (Topology::Torus2D, 36, true),
            (Topology::ErdosRenyi { p: 1.5 }, 10, false),
            (Topology::Regular { d: 3 }, 7, false),
            (Topology::Regular { d: 4 }, 20, true),
            (Topology::PreferentialAttachment { m: 4 }, 5, false),
        ];
        for &(topology, n, ok) in cases {
            assert_eq!(
                topology.validate(n).is_ok(),
                ok,
                "validate({}, {n})",
                topology.label()
            );
            assert_eq!(
                topology.build(n, 1).is_ok(),
                ok,
                "build({}, {n})",
                topology.label()
            );
        }
    }

    #[test]
    fn validate_rejects_populations_beyond_u32() {
        if usize::BITS >= 64 {
            let n = u32::MAX as usize + 2;
            assert!(Topology::Complete.validate(n).is_err());
            assert!(Topology::Ring.validate(n).is_err());
        }
    }

    #[test]
    fn ring_is_a_cycle() {
        let g = Topology::Ring.build(7, 0).unwrap().into_graph().unwrap();
        assert_eq!(g.edge_count(), 7);
        assert_eq!((g.min_degree(), g.max_degree()), (2, 2));
        assert!(g.is_connected());
        assert!(g.has_edge(6, 0), "wrap-around edge missing");
        assert!(Topology::Ring.build(2, 0).is_err());
    }

    #[test]
    fn torus_factors_near_square() {
        assert_eq!(near_square_factor(36), 6);
        assert_eq!(near_square_factor(48), 6);
        assert_eq!(near_square_factor(13), 1);
        let g = Topology::Torus2D
            .build(48, 0)
            .unwrap()
            .into_graph()
            .unwrap();
        assert_eq!((g.min_degree(), g.max_degree()), (4, 4));
        assert_eq!(g.edge_count(), 2 * 48);
        assert!(g.is_connected());
        // Prime n has no valid factorization; 8 = 2×4 has a side < 3.
        assert!(Topology::Torus2D.build(13, 0).is_err());
        assert!(Topology::Torus2D.build(8, 0).is_err());
    }

    #[test]
    fn erdos_renyi_edge_count_concentrates() {
        let n = 400usize;
        let p = 0.05;
        let g = Topology::ErdosRenyi { p }
            .build(n, 9)
            .unwrap()
            .into_graph()
            .unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.edge_count() as f64 - expected).abs() < 6.0 * sd,
            "edge count {} vs expected {expected}",
            g.edge_count()
        );
        assert!(Topology::ErdosRenyi { p: -0.1 }.build(10, 0).is_err());
        assert!(Topology::ErdosRenyi { p: 1.5 }.build(10, 0).is_err());
    }

    #[test]
    fn erdos_renyi_subnormal_p_is_almost_surely_empty() {
        // Regression: `(1.0 - p).ln()` rounds to +0.0 for p ≲ 1.1e-16,
        // which used to degenerate the geometric gap into "emit every
        // pair" — the complete graph instead of an empty one.
        let g = Topology::ErdosRenyi { p: 1e-17 }
            .build(100, 0)
            .unwrap()
            .into_graph()
            .unwrap();
        assert_eq!(g.edge_count(), 0, "expected ~5e-15 edges, not a clique");
    }

    #[test]
    fn erdos_renyi_extreme_probabilities() {
        let empty = Topology::ErdosRenyi { p: 0.0 }
            .build(20, 1)
            .unwrap()
            .into_graph()
            .unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = Topology::ErdosRenyi { p: 1.0 }
            .build(20, 1)
            .unwrap()
            .into_graph()
            .unwrap();
        assert_eq!(full.edge_count(), 20 * 19 / 2);
    }

    #[test]
    fn unrank_pair_inverts_the_ranking() {
        for n in [2u64, 3, 5, 17, 100] {
            let mut t = 0u64;
            for i in 0..n as u32 - 1 {
                for j in i + 1..n as u32 {
                    assert_eq!(unrank_pair(t, n), (i, j), "t = {t}, n = {n}");
                    t += 1;
                }
            }
        }
    }

    #[test]
    fn regular_graph_is_regular_and_simple() {
        for d in [1usize, 2, 4, 8] {
            let g = Topology::Regular { d }
                .build(200, 5)
                .unwrap()
                .into_graph()
                .unwrap();
            assert_eq!((g.min_degree(), g.max_degree()), (d, d), "d = {d}");
            assert_eq!(g.edge_count(), 200 * d / 2);
        }
        // n·d odd, d ≥ n, d = 0 all rejected.
        assert!(Topology::Regular { d: 3 }.build(7, 0).is_err());
        assert!(Topology::Regular { d: 10 }.build(10, 0).is_err());
        assert!(Topology::Regular { d: 0 }.build(10, 0).is_err());
    }

    #[test]
    fn preferential_attachment_shape() {
        let (n, m) = (500usize, 3usize);
        let g = Topology::PreferentialAttachment { m }
            .build(n, 11)
            .unwrap()
            .into_graph()
            .unwrap();
        let seed_edges = (m + 1) * m / 2;
        assert_eq!(g.edge_count(), seed_edges + (n - m - 1) * m);
        assert!(g.min_degree() >= m);
        assert!(g.is_connected());
        // Heavy tail: some early node ends far above the mean degree.
        assert!(
            g.max_degree() >= 4 * m,
            "max degree {} suspiciously flat",
            g.max_degree()
        );
        assert!(Topology::PreferentialAttachment { m: 0 }
            .build(10, 0)
            .is_err());
        assert!(Topology::PreferentialAttachment { m: 4 }
            .build(5, 0)
            .is_err());
    }

    #[test]
    fn spec_round_trips_every_family() {
        for t in [
            Topology::Complete,
            Topology::Ring,
            Topology::Torus2D,
            Topology::ErdosRenyi { p: 0.0047 },
            Topology::Regular { d: 8 },
            Topology::PreferentialAttachment { m: 3 },
        ] {
            assert_eq!(Topology::parse_spec(&t.spec()), Ok(t), "{}", t.spec());
        }
        assert!(Topology::parse_spec("hypercube").is_err());
        assert!(Topology::parse_spec("er:x").is_err());
        assert!(Topology::parse_spec("regular").is_err());
        assert!(Topology::parse_spec("pa:1:2").is_err());
    }
}
