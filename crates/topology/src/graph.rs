//! Compressed-sparse-row (CSR) adjacency storage for simple undirected
//! graphs, with O(1) uniform-neighbor sampling and degree-proportional
//! node sampling via the Vose alias tables of `plurality-dist`.

use plurality_dist::{AliasTable, InvalidParameterError};
use rand::Rng;

/// A simple undirected graph in CSR form.
///
/// Invariants, enforced by [`Graph::from_edges`]:
///
/// * no self-loops, no multi-edges;
/// * every undirected edge `{u, v}` is stored in both adjacency rows;
/// * each row is sorted ascending (canonical form, binary-searchable).
///
/// Neighbor sampling is O(1): one offset lookup plus one bounded uniform
/// draw. Degree-proportional node sampling (equivalently: drawing the
/// initiator of a uniformly random *directed edge*) is O(1) through a
/// precomputed [`AliasTable`] over the degree sequence.
///
/// # Examples
///
/// ```
/// use plurality_topology::Graph;
///
/// // A triangle plus a pendant vertex.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
/// assert_eq!(g.degree(2), 3);
/// assert_eq!(g.neighbors(2), &[0, 1, 3]);
/// assert_eq!(g.edge_count(), 4);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Row offsets into `neighbors`; length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency rows; length `2 · edge_count`.
    neighbors: Vec<u32>,
    /// Degree-proportional node sampler (`None` iff the graph has no
    /// edges).
    degree_alias: Option<AliasTable>,
}

impl Graph {
    /// Builds a graph on vertices `0..n` from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `n == 0` or `n > u32::MAX as
    /// usize`, an endpoint is out of range, an edge is a self-loop, or an
    /// edge appears twice (in either orientation).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, InvalidParameterError> {
        if n == 0 {
            return Err(InvalidParameterError::new("graph needs at least one node"));
        }
        if u32::try_from(n).is_err() {
            return Err(InvalidParameterError::new(format!(
                "graph size {n} exceeds the u32 node-id space"
            )));
        }
        let nu = n as u32;
        for &(u, v) in edges {
            if u >= nu || v >= nu {
                return Err(InvalidParameterError::new(format!(
                    "edge ({u}, {v}) has an endpoint outside 0..{n}"
                )));
            }
            if u == v {
                return Err(InvalidParameterError::new(format!(
                    "self-loop at node {u} is not allowed"
                )));
            }
        }
        // Offsets are u32: 2·m directed slots must fit, or the prefix
        // sums below would wrap silently in release builds.
        if edges.len() > (u32::MAX / 2) as usize {
            return Err(InvalidParameterError::new(format!(
                "{} edges exceed the u32 CSR offset space",
                edges.len()
            )));
        }
        let mut canonical: Vec<(u32, u32)> =
            edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        canonical.sort_unstable();
        if let Some(w) = canonical.windows(2).find(|w| w[0] == w[1]) {
            return Err(InvalidParameterError::new(format!(
                "duplicate edge ({}, {})",
                w[0].0, w[0].1
            )));
        }

        // Counting sort into CSR.
        let mut degree = vec![0u32; n];
        for &(u, v) in &canonical {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0u32; 2 * canonical.len()];
        for &(u, v) in &canonical {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Canonical edges are sorted by (min, max), so each row receives
        // its larger neighbors in order but smaller ones interleaved;
        // sort rows for the canonical form.
        for i in 0..n {
            neighbors[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }

        let degree_alias = if canonical.is_empty() {
            None
        } else {
            let weights: Vec<f64> = degree.iter().map(|&d| f64::from(d)).collect();
            Some(AliasTable::new(&weights).expect("non-empty degree sequence"))
        };
        Ok(Self {
            offsets,
            neighbors,
            degree_alias,
        })
    }

    /// The number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The sorted adjacency row of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Whether `{u, v}` is an edge (binary search over the sorted row).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The smallest vertex degree.
    pub fn min_degree(&self) -> usize {
        (0..self.n() as u32)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// The largest vertex degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether the graph is connected (BFS from vertex 0; the one-vertex
    /// graph is connected, a graph with isolated vertices is not).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    reached += 1;
                    stack.push(w);
                }
            }
        }
        reached == n
    }

    /// Draws a uniform neighbor of `v` in O(1). Isolated vertices return
    /// themselves (the interaction degenerates to reading the node's own
    /// state, a no-op for every protocol in the workspace); this draw
    /// consumes no randomness.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline(always)]
    pub fn sample_neighbor<R: Rng + ?Sized>(&self, v: u32, rng: &mut R) -> u32 {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        if lo == hi {
            return v;
        }
        self.neighbors[lo + rng.gen_range(0..hi - lo)]
    }

    /// Draws a node with probability proportional to its degree, in O(1)
    /// via the precomputed Vose alias table. Returns `None` iff the graph
    /// has no edges.
    #[inline]
    pub fn sample_by_degree<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        self.degree_alias
            .as_ref()
            .map(|table| table.sample(rng) as u32)
    }

    /// Draws a uniformly random *directed* edge `(initiator, responder)`:
    /// the initiator degree-proportionally (alias table), the responder
    /// uniformly among the initiator's neighbors. Returns `None` iff the
    /// graph has no edges.
    #[inline]
    pub fn sample_directed_edge<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(u32, u32)> {
        let v = self.sample_by_degree(rng)?;
        Some((v, self.sample_neighbor(v, rng)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_dist::rng::Xoshiro256PlusPlus;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(Graph::from_edges(0, &[]).is_err());
        assert!(Graph::from_edges(3, &[(0, 3)]).is_err(), "out of range");
        assert!(Graph::from_edges(3, &[(1, 1)]).is_err(), "self-loop");
        assert!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]).is_err(),
            "duplicate edge in reverse orientation"
        );
        assert!(Graph::from_edges(3, &[(0, 1), (0, 1)]).is_err());
    }

    #[test]
    fn csr_rows_are_sorted_and_symmetric() {
        let g = Graph::from_edges(5, &[(3, 1), (0, 4), (1, 0), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(0), &[1, 4]);
        for v in 0..5u32 {
            for &w in g.neighbors(v) {
                assert!(g.has_edge(w, v), "asymmetric edge ({v}, {w})");
            }
        }
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn connectivity_detection() {
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(path.is_connected());
        let split = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!split.is_connected());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(!isolated.is_connected());
        assert!(Graph::from_edges(1, &[]).unwrap().is_connected());
    }

    #[test]
    fn neighbor_sampling_is_uniform_over_the_row() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let mut counts = [0u32; 5];
        const N: u32 = 40_000;
        for _ in 0..N {
            counts[g.sample_neighbor(0, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0, "vertex 0 is not its own neighbor");
        for &c in &counts[1..] {
            let expected = f64::from(N) / 4.0;
            assert!(
                (f64::from(c) - expected).abs() < 5.0 * expected.sqrt(),
                "count {c}"
            );
        }
    }

    #[test]
    fn isolated_vertex_samples_itself_without_consuming_randomness() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut a = Xoshiro256PlusPlus::from_u64(2);
        let mut b = Xoshiro256PlusPlus::from_u64(2);
        assert_eq!(g.sample_neighbor(2, &mut a), 2);
        // The stream is untouched: the next draws agree.
        assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
    }

    #[test]
    fn degree_proportional_sampling_matches_degrees() {
        // Star plus an extra edge: degrees [4, 2, 1, 1, 2].
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 4)]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut counts = [0u64; 5];
        const N: u64 = 100_000;
        for _ in 0..N {
            counts[g.sample_by_degree(&mut rng).unwrap() as usize] += 1;
        }
        let total_deg = 10.0;
        for (v, &c) in counts.iter().enumerate() {
            let expected = N as f64 * g.degree(v as u32) as f64 / total_deg;
            assert!(
                (c as f64 - expected).abs() < 6.0 * expected.sqrt(),
                "vertex {v}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn directed_edge_sampling_yields_real_edges() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        for _ in 0..1_000 {
            let (u, v) = g.sample_directed_edge(&mut rng).unwrap();
            assert!(g.has_edge(u, v), "({u}, {v}) is not an edge");
        }
        let empty = Graph::from_edges(4, &[]).unwrap();
        assert_eq!(empty.sample_directed_edge(&mut rng), None);
    }
}
