//! # plurality-topology
//!
//! Communication topologies for the `plurality` workspace.
//!
//! The paper — and every engine this workspace reproduced before this
//! crate existed — assumes the **complete graph**: each peer draw is a
//! uniform sample over the whole population. Related work (*Rapid
//! Asynchronous Plurality Consensus*, Elsässer et al.; *Asynchronous
//! 3-Majority Dynamics with Many Opinions*, Cooper et al.) studies the
//! same dynamics on restricted interaction structures, and topology is
//! the single biggest scenario axis the protocols can be probed on. This
//! crate provides:
//!
//! * [`Graph`] — a compressed-sparse-row (CSR) adjacency representation
//!   with O(1) uniform-neighbor sampling and degree-proportional node
//!   sampling backed by the Vose alias tables of `plurality-dist`;
//! * [`Topology`] — declarative graph-family specs (complete, ring, 2-D
//!   torus, Erdős–Rényi `G(n, p)`, random `d`-regular, preferential
//!   attachment) with seeded, reproducible builders;
//! * [`PeerSampler`] — the sampling interface every engine draws its
//!   interaction partners through. The complete graph is a dedicated
//!   zero-allocation variant whose draws consume the **identical RNG
//!   stream** as the historical `gen_range(0..n)` calls, so threading
//!   the sampler through the engines changed no complete-graph result
//!   bitwise.
//!
//! ## Quick start
//!
//! ```
//! use plurality_dist::rng::Xoshiro256PlusPlus;
//! use plurality_topology::{PeerSampler, Topology};
//!
//! // A random 4-regular graph on 1000 nodes, reproducible from its seed.
//! let sampler = Topology::Regular { d: 4 }.build(1000, 7).unwrap();
//! let mut rng = Xoshiro256PlusPlus::from_u64(1);
//! let peer = sampler.sample(0, &mut rng);
//! assert!(sampler.graph().unwrap().neighbors(0).contains(&peer));
//!
//! // The complete graph needs no adjacency storage at all.
//! let complete = PeerSampler::complete(1000);
//! assert!(complete.is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generators;
mod graph;
mod sampler;

pub use generators::Topology;
pub use graph::Graph;
pub use sampler::PeerSampler;

/// Seed-stream tag the engines use to derive a topology-construction seed
/// from a run seed (`derive_seed(run_seed, TOPOLOGY_STREAM)`), so the
/// graph RNG never touches the process RNG stream.
pub const TOPOLOGY_STREAM: u64 = 0x544F_504F;
