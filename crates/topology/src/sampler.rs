//! The peer-sampling interface the engines draw interaction partners
//! through.

use crate::graph::Graph;
use rand::Rng;

/// How a node draws interaction partners — the one abstraction threaded
/// through every engine in the workspace.
///
/// Two variants:
///
/// * [`PeerSampler::Complete`] — the paper's model. A peer draw is
///   `gen_range(0..n)` (self-draws allowed), **the byte-identical RNG
///   consumption of the engines before topology support existed**, so
///   complete-graph runs reproduce historical results bitwise and pay no
///   allocation and no indirection beyond one predictable branch.
/// * [`PeerSampler::Sparse`] — a CSR [`Graph`]; a peer draw is a uniform
///   neighbor (isolated nodes draw themselves and consume no
///   randomness).
///
/// # Examples
///
/// ```
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// use plurality_topology::{PeerSampler, Topology};
/// use rand::Rng;
///
/// // Complete-graph draws are exactly `gen_range(0..n)`.
/// let sampler = PeerSampler::complete(10);
/// let mut a = Xoshiro256PlusPlus::from_u64(3);
/// let mut b = Xoshiro256PlusPlus::from_u64(3);
/// assert_eq!(sampler.sample(0, &mut a), b.gen_range(0..10usize) as u32);
///
/// // Sparse draws stay on the graph.
/// let ring = Topology::Ring.build(10, 0).unwrap();
/// let peer = ring.sample(4, &mut a);
/// assert!(peer == 3 || peer == 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PeerSampler {
    /// Uniform draws over the whole population (the complete graph).
    Complete {
        /// The population size.
        n: usize,
    },
    /// Uniform-neighbor draws on an explicit graph.
    Sparse(Graph),
}

impl PeerSampler {
    /// The complete-graph sampler for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the `u32` node-id space: draws are
    /// returned as `u32`, so a larger population would silently
    /// truncate peer indices. ([`crate::Topology::build`] surfaces the
    /// same constraint as an error instead.)
    pub fn complete(n: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "population {n} exceeds the u32 node-id space"
        );
        Self::Complete { n }
    }

    /// A sampler backed by an explicit graph.
    pub fn sparse(graph: Graph) -> Self {
        Self::Sparse(graph)
    }

    /// The population size.
    pub fn n(&self) -> usize {
        match self {
            Self::Complete { n } => *n,
            Self::Sparse(g) => g.n(),
        }
    }

    /// Whether this is the complete-graph fast path.
    pub fn is_complete(&self) -> bool {
        matches!(self, Self::Complete { .. })
    }

    /// The underlying graph, if any.
    pub fn graph(&self) -> Option<&Graph> {
        match self {
            Self::Complete { .. } => None,
            Self::Sparse(g) => Some(g),
        }
    }

    /// Consumes the sampler, returning the underlying graph if any.
    pub fn into_graph(self) -> Option<Graph> {
        match self {
            Self::Complete { .. } => None,
            Self::Sparse(g) => Some(g),
        }
    }

    /// Draws one interaction partner for node `v`.
    ///
    /// Complete graph: a uniform node (possibly `v` itself — the
    /// historical engine semantics). Sparse graph: a uniform neighbor of
    /// `v`; isolated nodes return `v` without consuming randomness.
    #[inline(always)]
    pub fn sample<R: Rng + ?Sized>(&self, v: u32, rng: &mut R) -> u32 {
        match self {
            Self::Complete { n } => rng.gen_range(0..*n) as u32,
            Self::Sparse(g) => g.sample_neighbor(v, rng),
        }
    }

    /// Draws an ordered pair of *distinct* interacting agents, as the
    /// sequential population-protocol scheduler needs.
    ///
    /// Complete graph: initiator uniform, responder uniform among the
    /// remaining `n − 1` agents — the byte-identical RNG consumption of
    /// the historical scheduler. Sparse graph: a uniformly random
    /// directed edge (initiator degree-proportional via the Vose alias
    /// table, responder a uniform neighbor); `None` iff the graph has no
    /// edges, in which case no interaction can ever fire.
    #[inline]
    pub fn sample_interaction_pair<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(u32, u32)> {
        match self {
            Self::Complete { n } => {
                let i = rng.gen_range(0..*n);
                let j = {
                    let r = rng.gen_range(0..*n - 1);
                    if r >= i {
                        r + 1
                    } else {
                        r
                    }
                };
                Some((i as u32, j as u32))
            }
            Self::Sparse(g) => g.sample_directed_edge(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use plurality_dist::rng::Xoshiro256PlusPlus;

    #[test]
    fn complete_draw_matches_raw_gen_range_stream() {
        let sampler = PeerSampler::complete(1234);
        let mut a = Xoshiro256PlusPlus::from_u64(99);
        let mut b = Xoshiro256PlusPlus::from_u64(99);
        for v in 0..64u32 {
            assert_eq!(sampler.sample(v, &mut a), b.gen_range(0..1234usize) as u32);
        }
    }

    #[test]
    fn complete_pair_matches_population_scheduler_stream() {
        let sampler = PeerSampler::complete(300);
        let mut a = Xoshiro256PlusPlus::from_u64(5);
        let mut b = Xoshiro256PlusPlus::from_u64(5);
        for _ in 0..64 {
            let (i, j) = sampler.sample_interaction_pair(&mut a).unwrap();
            // The historical scheduler, verbatim.
            let ei = b.gen_range(0..300usize);
            let ej = {
                let r = b.gen_range(0..299usize);
                if r >= ei {
                    r + 1
                } else {
                    r
                }
            };
            assert_eq!((i as usize, j as usize), (ei, ej));
            assert_ne!(i, j);
        }
    }

    #[test]
    fn sparse_draws_stay_on_edges() {
        let sampler = Topology::Regular { d: 4 }.build(100, 3).unwrap();
        let g = sampler.graph().unwrap().clone();
        let mut rng = Xoshiro256PlusPlus::from_u64(8);
        for v in 0..100u32 {
            let peer = sampler.sample(v, &mut rng);
            assert!(g.has_edge(v, peer));
        }
        for _ in 0..200 {
            let (u, v) = sampler.sample_interaction_pair(&mut rng).unwrap();
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn edgeless_graph_admits_no_interaction_pair() {
        let sampler = Topology::ErdosRenyi { p: 0.0 }.build(10, 0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        assert_eq!(sampler.sample_interaction_pair(&mut rng), None);
        // Peer draws degenerate to self-draws.
        assert_eq!(sampler.sample(7, &mut rng), 7);
    }

    #[test]
    fn accessors() {
        let complete = PeerSampler::complete(42);
        assert_eq!(complete.n(), 42);
        assert!(complete.is_complete());
        assert!(complete.graph().is_none());
        let ring = Topology::Ring.build(12, 0).unwrap();
        assert_eq!(ring.n(), 12);
        assert!(!ring.is_complete());
        assert_eq!(ring.graph().unwrap().edge_count(), 12);
    }
}
