//! End-to-end behavior of the daemon over real loopback sockets:
//! routing, teaching 400s, backpressure (429 + `Retry-After`),
//! deadlines (503), the drain protocol, and the monitoring endpoints.

use plurality_serve::{run_target, ClientResponse, HttpClient, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn start(config: ServeConfig) -> (Server, HttpClient) {
    let server = Server::start(config).expect("bind loopback");
    let client = HttpClient::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("socket option");
    (server, client)
}

fn get(client: &mut HttpClient, target: &str) -> ClientResponse {
    client.get(target).expect("request")
}

#[test]
fn routing_covers_health_metrics_stats_and_the_error_paths() {
    let (server, mut client) = start(ServeConfig::default());

    let health = get(&mut client, "/healthz");
    assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

    // Warm one entry so the counters are non-trivial.
    let run = get(
        &mut client,
        &run_target("sync?n=400&k=2&alpha=3.0&seed=5", None),
    );
    assert_eq!(run.status, 200);
    assert!(run.body.starts_with("plurality-report/1\n"));

    let metrics = get(&mut client, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .body
        .contains("# TYPE plurality_requests_total counter"));
    assert!(metrics.body.contains("plurality_cache_misses_total 1\n"));

    let stats = get(&mut client, "/stats");
    assert_eq!(stats.status, 200);
    assert_eq!(
        stats.headers.get("content-type").map(String::as_str),
        Some("application/json")
    );
    assert!(stats.body.contains("\"cache_misses\": 1"));

    let missing = get(&mut client, "/no/such/endpoint");
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("/run"), "404 should list endpoints");

    server.drain();
    server.join();
}

#[test]
fn bad_specs_get_the_registry_teaching_errors_as_400s() {
    let (server, mut client) = start(ServeConfig::default());

    let no_spec = get(&mut client, "/run");
    assert_eq!(no_spec.status, 400);
    assert!(no_spec.body.contains("missing `spec`"));

    let unknown = get(&mut client, &run_target("paxos?n=100", None));
    assert_eq!(unknown.status, 400);
    assert!(
        unknown.body.contains("unknown protocol") && unknown.body.contains("sync"),
        "the 400 must carry the teaching error: {}",
        unknown.body
    );

    let bad_key = get(
        &mut client,
        &run_target("sync?n=100&k=2&alpha=3.0&bogus=1", None),
    );
    assert_eq!(bad_key.status, 400);

    let bad_seed = get(&mut client, "/run?spec=sync&seed=not-a-number");
    assert_eq!(bad_seed.status, 400);
    assert!(bad_seed.body.contains("seed"));

    let stats = get(&mut client, "/stats");
    assert!(
        stats.body.contains("\"rejected_bad_spec\": 4"),
        "every rejection must be counted: {}",
        stats.body
    );
    server.drain();
    server.join();
}

#[test]
fn method_and_framing_violations_are_rejected() {
    let (server, mut client) = start(ServeConfig::default());

    // Wrong method on a known endpoint. `Connection: close` makes the
    // server hang up after the 405 so read_to_string sees EOF (a bare
    // HTTP/1.1 request defaults to keep-alive); the read timeout is the
    // backstop that turns any regression into a failure, not a hang.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    raw.write_all(b"DELETE /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 405 "), "{response}");

    // Not HTTP at all: the server answers 400 and closes on its own.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    raw.write_all(b"definitely not http\r\n\r\n").unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");

    // Announcing a body (which the server never reads) closes the
    // connection rather than desynchronizing keep-alive framing.
    let mut raw = TcpStream::connect(server.addr()).expect("connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    raw.write_all(b"GET /healthz HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc")
        .unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400 "), "{response}");
    assert!(response.contains("Connection: close"), "{response}");

    let alive = get(&mut client, "/healthz");
    assert_eq!(alive.status, 200, "bad peers must not hurt good ones");
    server.drain();
    server.join();
}

#[test]
fn full_queue_answers_429_with_retry_after_instead_of_buffering() {
    // One worker, a one-slot queue, and a spec slow enough (~hundreds
    // of ms) that a burst of distinct-seed requests must overflow.
    let (server, mut client) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let barrier = Arc::new(std::sync::Barrier::new(12));
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("socket option");
                barrier.wait();
                let spec = format!("leader?n=2000&k=2&alpha=3.0&c1=9.3&seed={i}");
                client.get(&run_target(&spec, None)).expect("request")
            })
        })
        .collect();
    let responses: Vec<ClientResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let ok = responses.iter().filter(|r| r.status == 200).count();
    let busy: Vec<_> = responses.iter().filter(|r| r.status == 429).collect();
    assert_eq!(
        ok + busy.len(),
        responses.len(),
        "overload must degrade into 200s and 429s only: {:?}",
        responses.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    assert!(ok >= 1, "the worker must have served someone");
    assert!(
        !busy.is_empty(),
        "a one-slot queue must overflow under a 12-burst"
    );
    for rejected in &busy {
        let retry_after: u64 = rejected
            .headers
            .get("retry-after")
            .expect("429 must carry Retry-After")
            .parse()
            .expect("Retry-After is whole seconds");
        assert!((1..=30).contains(&retry_after));
    }

    let stats = get(&mut client, "/stats");
    assert!(stats.body.contains("\"rejected_busy\""), "{}", stats.body);
    server.drain();
    server.join();
}

#[test]
fn expired_deadlines_answer_503_not_a_hung_connection() {
    let (server, mut client) = start(ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(1),
        ..ServeConfig::default()
    });
    let response = get(
        &mut client,
        &run_target("leader?n=2000&k=2&alpha=3.0&c1=9.3&seed=77", None),
    );
    assert_eq!(response.status, 503, "{}", response.body);
    assert!(response.body.contains("deadline"));
    assert!(response.headers.contains_key("retry-after"));
    server.drain();
    server.join();
}

#[test]
fn drain_refuses_new_work_finishes_the_queue_and_lets_join_return() {
    let (server, mut client) = start(ServeConfig::default());
    let warm = get(
        &mut client,
        &run_target("sync?n=400&k=2&alpha=3.0&seed=1", None),
    );
    assert_eq!(warm.status, 200);

    let drain = get(&mut client, "/admin/drain");
    assert_eq!((drain.status, drain.body.as_str()), (200, "draining\n"));

    let refused = get(
        &mut client,
        &run_target("sync?n=400&k=2&alpha=3.0&seed=2", None),
    );
    assert_eq!(refused.status, 503);
    assert!(refused.body.contains("draining"));

    let health = get(&mut client, "/healthz");
    assert_eq!(health.status, 503, "liveness must flip during a drain");

    // join() returning is the whole point: accept loop and workers all
    // exit. (The test harness timeout catches a hang.)
    server.join();
}
