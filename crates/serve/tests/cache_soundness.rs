//! Cache soundness: a cached `/run` response is **byte-identical** to a
//! fresh run of the same canonical spec — across every protocol family,
//! across the parallel harness's thread counts, and across an eviction
//! and re-miss. This is what makes the report cache a pure optimization
//! rather than an approximation.

use plurality_api::run_spec;
use plurality_serve::{run_target, ClientResponse, HttpClient, ServeConfig, Server};
use std::time::Duration;

/// One representative spec per protocol family: the three paper engines
/// (sync, leader, cluster), the mean-field urn mode, one gossip
/// dynamic, and one population protocol. Sized to run in well under a
/// second each.
const FAMILY_SPECS: [&str; 6] = [
    "sync?n=400&k=2&alpha=3.0&seed=11",
    "urn?n=50000&k=4&alpha=2.0&seed=11",
    "leader?n=250&k=2&alpha=3.0&seed=11&c1=9.3",
    "cluster?n=250&k=2&alpha=3.0&seed=11&c1=12.0",
    "pull?n=400&k=2&alpha=3.0&seed=11",
    "approx-majority?n=400&alpha=3.0&seed=11",
];

fn start(config: ServeConfig) -> (Server, HttpClient) {
    let server = Server::start(config).expect("bind loopback");
    let client = HttpClient::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("socket option");
    (server, client)
}

fn get_ok(client: &mut HttpClient, target: &str) -> ClientResponse {
    let response = client.get(target).expect("request");
    assert_eq!(response.status, 200, "body: {}", response.body);
    response
}

#[test]
fn cache_hit_is_byte_identical_to_a_fresh_run_for_every_family() {
    let (server, mut client) = start(ServeConfig::default());
    for spec in FAMILY_SPECS {
        let fresh = run_spec(spec).expect("direct run").wire_text();
        let target = run_target(spec, None);

        let cold = get_ok(&mut client, &target);
        assert_eq!(cold.cache_disposition(), Some("miss"), "{spec}");
        assert_eq!(
            cold.body, fresh,
            "cold body must equal a direct run: {spec}"
        );

        let hot = get_ok(&mut client, &target);
        assert_eq!(hot.cache_disposition(), Some("hit"), "{spec}");
        assert_eq!(
            hot.body.as_bytes(),
            fresh.as_bytes(),
            "cache hit must be bitwise identical to a fresh run: {spec}"
        );
    }
    server.drain();
    server.join();
}

/// The `seed` query parameter folds into the canonical spec string, so
/// `/run?spec=S&seed=N` and `/run?spec=S%26seed%3DN` share one cache
/// entry (and one engine run).
#[test]
fn seed_override_and_inline_seed_share_one_cache_entry() {
    let (server, mut client) = start(ServeConfig::default());
    let via_param = get_ok(
        &mut client,
        &run_target("sync?n=400&k=2&alpha=3.0", Some(97)),
    );
    assert_eq!(via_param.cache_disposition(), Some("miss"));
    let inline = get_ok(
        &mut client,
        &run_target("sync?n=400&k=2&alpha=3.0&seed=97", None),
    );
    assert_eq!(
        inline.cache_disposition(),
        Some("hit"),
        "canonicalization must fold the seed override into the cache key"
    );
    assert_eq!(via_param.body, inline.body);
    server.drain();
    server.join();
}

/// The env-var dance lives in ONE test function (integration tests in
/// a binary share the process environment), and the parallel harness's
/// determinism contract is exactly why racing readers are harmless:
/// every thread count produces the same bytes.
#[test]
fn byte_identity_holds_across_parallel_harness_thread_counts() {
    let under = |threads: &str| -> Vec<String> {
        std::env::set_var("PLURALITY_THREADS", threads);
        FAMILY_SPECS
            .iter()
            .map(|spec| run_spec(spec).expect("direct run").wire_text())
            .collect()
    };
    let serial = under("1");
    let parallel = under("4");
    assert_eq!(
        serial, parallel,
        "wire text must not depend on PLURALITY_THREADS"
    );

    // And the served bytes (produced under whatever thread count the
    // worker observes) match both.
    let (server, mut client) = start(ServeConfig::default());
    for (spec, expected) in FAMILY_SPECS.iter().zip(&serial) {
        let served = get_ok(&mut client, &run_target(spec, None));
        assert_eq!(&served.body, expected, "{spec}");
    }
    std::env::remove_var("PLURALITY_THREADS");
    server.drain();
    server.join();
}

/// Evicting an entry and re-running its spec reproduces the original
/// bytes — the cache has no semantic footprint even under pressure.
#[test]
fn eviction_and_re_miss_reproduce_the_original_bytes() {
    let spec = "sync?n=400&k=2&alpha=3.0";
    // Size the budget around one representative body so each of the 8
    // shards holds roughly one entry; 18 distinct seeds then guarantee
    // same-shard collisions and real LRU evictions (pigeonhole).
    let one_body = run_spec(&format!("{spec}&seed=1"))
        .expect("direct run")
        .wire_text();
    let (server, mut client) = start(ServeConfig {
        cache_bytes: 8 * (one_body.len() + spec.len() + 256),
        ..ServeConfig::default()
    });

    let seeds: Vec<u64> = (1..=18).collect();
    let first_pass: Vec<String> = seeds
        .iter()
        .map(|&seed| get_ok(&mut client, &run_target(spec, Some(seed))).body)
        .collect();

    let stats = get_ok(&mut client, "/stats").body;
    let evictions: u64 = stats
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"cache_evictions\": "))
        .and_then(|v| v.trim_end_matches(',').parse().ok())
        .expect("cache_evictions in /stats");
    assert!(
        evictions > 0,
        "the tiny cache must have evicted; /stats:\n{stats}"
    );

    let mut re_misses = 0;
    for (&seed, original) in seeds.iter().zip(&first_pass) {
        let again = get_ok(&mut client, &run_target(spec, Some(seed)));
        if again.cache_disposition() == Some("miss") {
            re_misses += 1;
        }
        assert_eq!(
            again.body.as_bytes(),
            original.as_bytes(),
            "seed {seed}: post-eviction re-run must reproduce the original bytes"
        );
    }
    assert!(re_misses > 0, "at least one evicted entry must re-miss");
    server.drain();
    server.join();
}
