//! `/metrics` must be well-formed Prometheus text exposition: one
//! `# HELP` / `# TYPE` per family, honest types (`*_total` families are
//! counters, samples are gauges), and full `_bucket` / `_sum` /
//! `_count` triples with cumulative `le` buckets ending in `+Inf` for
//! every histogram. The shape is checked by the same
//! [`plurality_obs::validate_exposition`] the CI mid-load scrape uses.

use plurality_obs::validate_exposition;
use plurality_serve::{run_target, HttpClient, ServeConfig, Server};
use std::time::Duration;

fn start() -> (Server, HttpClient) {
    let server = Server::start(ServeConfig::default()).expect("bind loopback");
    let client = HttpClient::connect(server.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("socket option");
    (server, client)
}

#[test]
fn metrics_parse_as_prometheus_exposition_after_traffic() {
    let (server, mut client) = start();

    // Generate a mix of traffic: a fresh run, a cache hit, and a 400.
    let spec = "sync?n=400&k=2&alpha=3.0&seed=5";
    assert_eq!(client.get(&run_target(spec, None)).unwrap().status, 200);
    assert_eq!(client.get(&run_target(spec, None)).unwrap().status, 200);
    assert_eq!(client.get("/run?spec=nonsense").unwrap().status, 400);

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.body;
    validate_exposition(&text).expect("well-formed exposition");

    // Monotonic `_total` families are counters…
    for family in [
        "plurality_requests_total",
        "plurality_cache_hits_total",
        "plurality_cache_misses_total",
        "plurality_rejected_bad_spec_total",
        "plurality_cache_evictions_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} counter")),
            "{family} must be TYPE counter:\n{text}"
        );
    }
    // …point-in-time samples are gauges…
    for family in [
        "plurality_queue_depth",
        "plurality_draining",
        "plurality_cache_entries",
        "plurality_request_latency_us_p50",
        "plurality_request_latency_us_p99",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} gauge")),
            "{family} must be TYPE gauge:\n{text}"
        );
    }
    // …and the latency distributions expose full histogram triples.
    for family in [
        "plurality_request_latency_us",
        "plurality_queue_wait_us",
        "plurality_service_time_us",
    ] {
        assert!(text.contains(&format!("# TYPE {family} histogram")));
        assert!(text.contains(&format!("{family}_bucket{{le=\"+Inf\"}}")));
        assert!(text.contains(&format!("{family}_sum ")));
        assert!(text.contains(&format!("{family}_count ")));
    }

    // Three requests handled before this scrape, all through the
    // latency histogram.
    let count_line = text
        .lines()
        .find(|l| l.starts_with("plurality_request_latency_us_count "))
        .expect("latency count sample");
    let count: u64 = count_line.split(' ').nth(1).unwrap().parse().unwrap();
    assert!(count >= 3, "expected >= 3 recorded requests, got {count}");

    // The fresh run went through a worker, so queue-wait and
    // service-time each saw at least one sample.
    for family in ["plurality_queue_wait_us", "plurality_service_time_us"] {
        let line = text
            .lines()
            .find(|l| l.starts_with(&format!("{family}_count ")))
            .expect("histogram count sample");
        let count: u64 = line.split(' ').nth(1).unwrap().parse().unwrap();
        assert!(count >= 1, "{family} never recorded:\n{text}");
    }

    server.drain();
    server.join();
}

#[test]
fn stats_json_quantiles_follow_the_latency_histogram() {
    let (server, mut client) = start();
    let spec = "sync?n=400&k=2&alpha=3.0&seed=6";
    assert_eq!(client.get(&run_target(spec, None)).unwrap().status, 200);
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    for key in [
        "\"request_latency_us_p50\":",
        "\"request_latency_us_p95\":",
        "\"request_latency_us_p99\":",
    ] {
        assert!(
            stats.body.contains(key),
            "missing {key} in:\n{}",
            stats.body
        );
    }
    server.drain();
    server.join();
}
