//! A minimal blocking HTTP/1.1 client — just enough to talk to
//! [`Server`](crate::server::Server) from the integration tests and the
//! `plurality-load` generator, with keep-alive reuse of one connection.

use crate::http::percent_encode;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, keys lowercased.
    pub headers: BTreeMap<String, String>,
    /// The body, sized by `Content-Length`.
    pub body: String,
}

impl ClientResponse {
    /// The `X-Cache` header, if the server sent one.
    pub fn cache_disposition(&self) -> Option<&str> {
        self.headers.get("x-cache").map(String::as_str)
    }
}

/// One keep-alive connection to a server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            addr,
        })
    }

    /// Sets (or clears) the read timeout on the underlying socket.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends `GET target` and reads the response. On a transport error
    /// the connection is re-established once and the request retried —
    /// the server may have closed an idle keep-alive connection.
    ///
    /// # Errors
    ///
    /// Propagates transport errors after the one reconnect attempt.
    pub fn get(&mut self, target: &str) -> io::Result<ClientResponse> {
        match self.try_get(target) {
            Ok(response) => Ok(response),
            Err(_) => {
                *self = Self::connect(self.addr)?;
                self.try_get(target)
            }
        }
    }

    fn try_get(&mut self, target: &str) -> io::Result<ClientResponse> {
        write!(
            self.writer,
            "GET {target} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = BTreeMap::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
        }
        let length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing Content-Length"))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body =
            String::from_utf8(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut buf = Vec::new();
        let n = self.reader.read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        while matches!(buf.last(), Some(b'\n' | b'\r')) {
            buf.pop();
        }
        String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Builds the `/run` request target for a spec string and optional seed
/// override, percent-encoding the spec's own grammar characters.
pub fn run_target(spec: &str, seed: Option<u64>) -> String {
    match seed {
        Some(seed) => format!("/run?spec={}&seed={seed}", percent_encode(spec)),
        None => format!("/run?spec={}", percent_encode(spec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_target_escapes_the_spec_grammar() {
        let target = run_target("sync?n=100&k=2", Some(7));
        assert_eq!(target, "/run?spec=sync%3Fn%3D100%26k%3D2&seed=7");
        assert_eq!(run_target("sync", None), "/run?spec=sync");
    }
}
