//! Standalone daemon binary: `plurality-serve --addr 127.0.0.1:8080
//! --workers 2 --cache-mb 32`. The `plurality serve` CLI subcommand
//! wraps the same [`Server`].

use plurality_serve::{ServeConfig, Server};
use std::time::Duration;

const USAGE: &str = "\
plurality-serve: long-running RunSpec daemon

USAGE:
    plurality-serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>     bind address            [default: 127.0.0.1:8080]
    --workers <N>          engine worker threads   [default: 2]
    --queue <N>            bounded queue capacity  [default: 64]
    --cache-mb <N>         report cache budget     [default: 32]
    --deadline-secs <N>    per-request deadline    [default: 30]
    --help                 print this help

ENDPOINTS:
    GET  /run?spec=<percent-encoded RunSpec>[&seed=<u64>]
    GET  /healthz | /metrics | /stats
    POST /admin/drain      graceful shutdown
";

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--queue" => config.queue_capacity = parse(&value("--queue"), "--queue"),
            "--cache-mb" => {
                config.cache_bytes = parse::<usize>(&value("--cache-mb"), "--cache-mb") << 20;
            }
            "--deadline-secs" => {
                config.deadline =
                    Duration::from_secs(parse(&value("--deadline-secs"), "--deadline-secs"));
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown flag {other:?}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let server = match Server::start(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "plurality-serve listening on http://{} ({} workers, queue {}, cache {} MiB); \
         POST /admin/drain to stop",
        server.addr(),
        config.workers,
        config.queue_capacity,
        config.cache_bytes >> 20,
    );
    // The accept loop owns the process from here; it exits when a drain
    // completes, and join() then waits for the workers to finish the
    // queued tail.
    server.join();
    println!("plurality-serve: drained, exiting");
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} got {value:?}, expected a number\n\n{USAGE}");
        std::process::exit(2);
    })
}
