//! Sharded LRU `(spec, seed) → serialized Report` cache.
//!
//! ## Why this cache is *sound*, not heuristic
//!
//! Every run in the workspace is a pure function of its canonical
//! [`plurality_api::RunSpec`] string: the facade-bitwise contract (PR 5)
//! pins a spec to the byte-identical RNG stream of the direct engine
//! builders, and the parallel-determinism contract (PR 2) makes the
//! result independent of thread count. The cache key is the canonical
//! spec string *with the seed override already applied*, so a hit can
//! return the stored bytes of an earlier run and be **bitwise identical**
//! to what a fresh run would have produced — there is no staleness, no
//! approximation, and nothing to invalidate. The serve test suite
//! asserts exactly this (`tests/cache_soundness.rs`).
//!
//! ## Shape
//!
//! The cache is split into [`SHARD_COUNT`] independently-locked shards
//! (key-hash selected) so concurrent handlers and workers rarely
//! contend on one mutex. Each shard is a classic intrusive-list LRU over
//! a slab: a `HashMap` from key to slot index plus a doubly-linked
//! recency list threaded through the slots, giving O(1) get / insert /
//! evict. Capacity is a **byte budget** (key + value + bookkeeping
//! overhead per entry), split evenly across shards; inserting past the
//! budget evicts least-recently-used entries until the shard fits
//! again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently-locked shards. A small power of two: enough
/// to de-contend a worker pool, few enough that the per-shard byte
/// budget stays meaningful for small caches.
pub const SHARD_COUNT: usize = 8;

/// Bookkeeping bytes charged per entry on top of key + value lengths
/// (slot, map entry, `Arc` header — an estimate, deliberately rounded
/// up).
const ENTRY_OVERHEAD: usize = 96;

const NIL: usize = usize::MAX;

/// Aggregate counters over all shards, for `/stats` and `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Charged bytes (keys + values + per-entry overhead).
    pub bytes: usize,
    /// Total byte budget.
    pub capacity_bytes: usize,
    /// Entries evicted by the LRU policy since startup.
    pub evictions: u64,
}

struct Slot {
    key: String,
    value: Arc<str>,
    prev: usize,
    next: usize,
}

struct Shard {
    map: HashMap<String, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Most recently used slot (`NIL` when empty).
    head: usize,
    /// Least recently used slot (`NIL` when empty).
    tail: usize,
    bytes: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            capacity,
        }
    }

    fn cost(key: &str, value: &str) -> usize {
        key.len() + value.len() + ENTRY_OVERHEAD
    }

    /// Detaches slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let slot = self.slots[i].as_ref().expect("unlink of empty slot");
            (slot.prev, slot.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("linked slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("linked slot").prev = prev,
        }
    }

    /// Attaches slot `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        {
            let slot = self.slots[i].as_mut().expect("push_front of empty slot");
            slot.prev = NIL;
            slot.next = self.head;
        }
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].as_mut().expect("linked slot").prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<Arc<str>> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(
            &self.slots[i].as_ref().expect("mapped slot").value,
        ))
    }

    /// Evicts the least-recently-used entry; returns false on an empty
    /// shard.
    fn evict_tail(&mut self) -> bool {
        let i = self.tail;
        if i == NIL {
            return false;
        }
        self.unlink(i);
        let slot = self.slots[i].take().expect("tail slot");
        self.map.remove(&slot.key);
        self.bytes -= Self::cost(&slot.key, &slot.value);
        self.free.push(i);
        true
    }

    /// Inserts (or refreshes) an entry, then evicts LRU entries until
    /// the shard fits its budget again. Returns the number of
    /// evictions. An entry larger than the whole shard budget is
    /// evicted right back out — the cache never exceeds its budget.
    fn insert(&mut self, key: String, value: Arc<str>) -> u64 {
        if let Some(&i) = self.map.get(&key) {
            // Refresh: replace the value, recharge bytes, bump recency.
            let slot = self.slots[i].as_mut().expect("mapped slot");
            self.bytes -= Self::cost(&slot.key, &slot.value);
            self.bytes += Self::cost(&slot.key, &value);
            slot.value = value;
            self.unlink(i);
            self.push_front(i);
        } else {
            let i = match self.free.pop() {
                Some(i) => i,
                None => {
                    self.slots.push(None);
                    self.slots.len() - 1
                }
            };
            self.bytes += Self::cost(&key, &value);
            self.map.insert(key.clone(), i);
            self.slots[i] = Some(Slot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.push_front(i);
        }
        let mut evicted = 0;
        while self.bytes > self.capacity && self.evict_tail() {
            evicted += 1;
        }
        evicted
    }
}

/// The sharded LRU cache — see the module docs for the soundness
/// argument and the layout.
pub struct ReportCache {
    shards: Vec<Mutex<Shard>>,
    capacity_bytes: usize,
    evictions: AtomicU64,
}

impl ReportCache {
    /// Creates a cache bounded by `capacity_bytes` across all shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes == 0`.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "ReportCache: capacity must be positive");
        let per_shard = capacity_bytes.div_ceil(SHARD_COUNT);
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            capacity_bytes: per_shard * SHARD_COUNT,
            evictions: AtomicU64::new(0),
        }
    }

    /// FNV-1a over the key, folded onto a shard index. Stable across
    /// runs (unlike `HashMap`'s randomized hasher) so tests can reason
    /// about shard placement.
    fn shard_of(&self, key: &str) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// Looks a key up, bumping its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        self.shards[self.shard_of(key)]
            .lock()
            .expect("cache shard poisoned")
            .get(key)
    }

    /// Inserts (or refreshes) an entry, evicting LRU entries as needed
    /// to stay inside the byte budget.
    pub fn insert(&self, key: String, value: Arc<str>) {
        let shard = self.shard_of(&key);
        let evicted = self.shards[shard]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Aggregate occupancy and eviction counters.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            capacity_bytes: self.capacity_bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            stats.entries += shard.map.len();
            stats.bytes += shard.bytes;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let cache = ReportCache::new(1 << 20);
        assert!(cache.get("sync?seed=1").is_none());
        cache.insert("sync?seed=1".into(), arc("body-1"));
        assert_eq!(cache.get("sync?seed=1").as_deref(), Some("body-1"));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn refresh_replaces_value_without_leaking_bytes() {
        let cache = ReportCache::new(1 << 20);
        cache.insert("k".into(), arc("short"));
        let before = cache.stats().bytes;
        cache.insert("k".into(), arc("a considerably longer body"));
        assert_eq!(
            cache.get("k").as_deref(),
            Some("a considerably longer body")
        );
        let after = cache.stats().bytes;
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(
            after - before,
            "a considerably longer body".len() - "short".len()
        );
    }

    #[test]
    fn lru_evicts_the_coldest_entry_first() {
        // One shard's budget fits exactly 3 entries of this size:
        // each costs 8 (key) + 10 (value) + ENTRY_OVERHEAD = 114 bytes.
        let cache = ReportCache::new(SHARD_COUNT * (3 * 114 + 8));
        // Find four keys landing in one shard so eviction is forced.
        let shard0 = cache.shard_of("probe");
        let mut keys = Vec::new();
        let mut i = 0;
        while keys.len() < 4 {
            let k = format!("key-{i:04}");
            if cache.shard_of(&k) == cache.shard_of("probe") {
                keys.push(k);
            }
            i += 1;
        }
        assert_eq!(cache.shard_of(&keys[0]), shard0);
        for k in &keys[..3] {
            cache.insert(k.clone(), arc("0123456789"));
        }
        // Touch key 0 so key 1 becomes the LRU.
        assert!(cache.get(&keys[0]).is_some());
        cache.insert(keys[3].clone(), arc("0123456789"));
        assert!(cache.get(&keys[1]).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&keys[0]).is_some(), "recently-used entry stays");
        assert!(cache.get(&keys[3]).is_some(), "new entry stays");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn oversized_entries_never_blow_the_budget() {
        let cache = ReportCache::new(SHARD_COUNT * 64);
        let huge = "x".repeat(4096);
        cache.insert("huge".into(), Arc::from(huge.as_str()));
        assert!(cache.stats().bytes <= cache.stats().capacity_bytes);
        assert!(cache.get("huge").is_none(), "oversized entry is not kept");
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let cache = ReportCache::new(SHARD_COUNT * 2 * (ENTRY_OVERHEAD + 32));
        for i in 0..100 {
            cache.insert(format!("k{i}"), arc("0123456789"));
        }
        let stats = cache.stats();
        assert!(stats.bytes <= stats.capacity_bytes);
        // The slabs stay bounded by the byte budget, not the insert count.
        for shard in &cache.shards {
            assert!(shard.lock().unwrap().slots.len() <= 4);
        }
    }
}
