//! A deliberately small HTTP/1.1 surface: request parsing, response
//! writing, and percent-coding — just enough for the four endpoints the
//! daemon serves, with hard limits so a malformed or hostile peer can
//! not make the server buffer unboundedly.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
pub const MAX_LINE_BYTES: usize = 16 * 1024;

/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// A parsed request head. Bodies are not read — every endpoint is a
/// `GET`, and requests that announce a body are rejected upstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target, percent-decoded.
    pub path: String,
    /// Query parameters in request order. Values are percent-decoded;
    /// a key without `=` maps to an empty value.
    pub query: Vec<(String, String)>,
    /// Header fields, keys lowercased (HTTP headers are
    /// case-insensitive), later duplicates overwriting earlier ones.
    pub headers: BTreeMap<String, String>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for (or defaulted to) a persistent
    /// connection.
    pub fn keep_alive(&self) -> bool {
        match self.headers.get("connection").map(String::as_str) {
            Some(v) => !v.eq_ignore_ascii_case("close"),
            None => true, // HTTP/1.1 default
        }
    }
}

/// Outcome of reading one request head off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A well-formed request head.
    Request(Request),
    /// The peer closed the connection before sending anything.
    Closed,
    /// The bytes on the wire were not a well-formed request head; the
    /// string is a human-readable reason for the `400` body.
    Malformed(String),
}

/// Reads one request head (request line + headers, through the blank
/// line) from `reader`.
///
/// # Errors
///
/// Propagates transport-level I/O errors only; protocol-level problems
/// come back as [`ReadOutcome::Malformed`].
pub fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let line = match read_line(reader)? {
        Some(line) => line,
        None => return Ok(ReadOutcome::Closed),
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Ok(ReadOutcome::Malformed(format!(
                "bad request line {line:?}: expected `METHOD target HTTP/1.x`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Ok(ReadOutcome::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = match percent_decode(raw_path) {
        Ok(p) => p,
        Err(e) => return Ok(ReadOutcome::Malformed(format!("bad path encoding: {e}"))),
    };
    let mut query = Vec::new();
    if let Some(raw) = raw_query {
        for pair in raw.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            match (percent_decode(k), percent_decode(v)) {
                (Ok(k), Ok(v)) => query.push((k, v)),
                (Err(e), _) | (_, Err(e)) => {
                    return Ok(ReadOutcome::Malformed(format!("bad query encoding: {e}")))
                }
            }
        }
    }

    let mut headers = BTreeMap::new();
    loop {
        let line = match read_line(reader)? {
            Some(line) => line,
            None => {
                return Ok(ReadOutcome::Malformed(
                    "connection closed mid-headers".to_string(),
                ))
            }
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(ReadOutcome::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        match line.split_once(':') {
            Some((name, value)) if !name.trim().is_empty() => {
                headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
            }
            _ => return Ok(ReadOutcome::Malformed(format!("bad header line {line:?}"))),
        }
    }

    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path,
        query,
        headers,
    }))
}

/// Reads one CRLF- (or LF-) terminated line, enforcing
/// [`MAX_LINE_BYTES`]. `Ok(None)` means clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    // `&mut R: Read`, so a reborrow lets `take` consume the limit
    // adapter without consuming the caller's reader.
    let mut limited = io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.len() > MAX_LINE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line longer than {MAX_LINE_BYTES} bytes"),
        ));
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Decodes `%XX` escapes and `+`-as-space.
///
/// # Errors
///
/// Returns a description when an escape is truncated, non-hex, or the
/// decoded bytes are not UTF-8.
pub fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated escape at byte {i}"))?;
                let hi = hex_digit(hex[0]).ok_or_else(|| format!("bad escape at byte {i}"))?;
                let lo = hex_digit(hex[1]).ok_or_else(|| format!("bad escape at byte {i}"))?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "decoded bytes are not UTF-8".to_string())
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes everything outside the URL-safe unreserved set (plus
/// the spec grammar's own `?`/`&`/`=` which must be escaped *inside* a
/// query value). Used by the client side — tests and the load
/// generator — to put spec strings into query strings.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// A response under construction. Always carries `Content-Length` so
/// keep-alive framing is unambiguous.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length` (e.g.
    /// `Retry-After`, `X-Cache`).
    pub extra_headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes (always text in this server).
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn ok(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            extra_headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// An error response; the body is the reason plus a trailing
    /// newline.
    pub fn error(status: u16, reason: impl Into<String>) -> Self {
        let mut body = reason.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Self {
            status,
            extra_headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes head + body to `writer`. `keep_alive` selects the
    /// `Connection` header.
    ///
    /// # Errors
    ///
    /// Propagates transport-level I/O errors.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let reason = status_reason(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// The reason phrase for the handful of status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes())).expect("no transport error")
    }

    #[test]
    fn parses_a_get_with_query_and_headers() {
        let out = parse(
            "GET /run?spec=sync%3Fn%3D100&seed=7 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        let req = match out {
            ReadOutcome::Request(req) => req,
            other => panic!("expected a request, got {other:?}"),
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/run");
        assert_eq!(req.query_value("spec"), Some("sync?n=100"));
        assert_eq!(req.query_value("seed"), Some("7"));
        assert_eq!(req.headers.get("host").map(String::as_str), Some("x"));
        assert!(!req.keep_alive());
    }

    #[test]
    fn keep_alive_defaults_on_for_http11() {
        let out = parse("GET /healthz HTTP/1.1\r\n\r\n");
        match out {
            ReadOutcome::Request(req) => assert!(req.keep_alive()),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed_not_a_transport_error() {
        assert!(matches!(
            parse("not http at all\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse("GET /x HTTP/2\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn percent_coding_round_trips_the_spec_grammar() {
        let spec = "leader?n=4096&k=8&topology=er:0.01&scenario=crash:0.2@5";
        let encoded = percent_encode(spec);
        assert!(!encoded.contains('?') && !encoded.contains('&'));
        assert_eq!(percent_decode(&encoded).unwrap(), spec);
        assert_eq!(percent_decode("a+b%20c").unwrap(), "a b c");
        assert!(percent_decode("%zz").is_err());
        assert!(percent_decode("%2").is_err());
    }

    #[test]
    fn responses_carry_content_length_and_connection() {
        let mut buf = Vec::new();
        Response::ok("hello\n")
            .with_header("X-Cache", "hit")
            .write_to(&mut buf, true)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 6\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\nhello\n"));

        let mut buf = Vec::new();
        Response::error(429, "queue full")
            .with_header("Retry-After", "2")
            .write_to(&mut buf, false)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("queue full\n"));
    }
}
