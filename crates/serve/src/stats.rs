//! Server-wide metrics and their `/metrics` (Prometheus text) and
//! `/stats` (JSON) renderings, backed by the shared
//! [`MetricsRegistry`].
//!
//! Monotonic series carry the `_total` suffix and render with
//! `# TYPE … counter`; point-in-time samples (cache occupancy, queue
//! depth, drain flag, latency quantiles) are gauges refreshed just
//! before each render; the three latency distributions are log-bucket
//! [`Histogram`]s with full `_bucket` / `_sum` / `_count` exposition.

use crate::cache::CacheStats;
use plurality_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Clamps a duration to whole microseconds for histogram recording.
pub fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Server-wide metrics. Counters and histograms are updated on the
/// handler/worker hot paths; the sampled gauges are refreshed inside
/// [`ServerStats::metrics_text`] / [`ServerStats::stats_json`].
#[derive(Debug)]
pub struct ServerStats {
    registry: MetricsRegistry,
    /// Serializes renders so the sampled gauges and the eviction-delta
    /// counter are updated atomically with respect to each other.
    render_lock: Mutex<()>,
    /// Requests that reached routing (any endpoint, any outcome).
    pub requests: Arc<Counter>,
    /// `/run` responses served from the report cache.
    pub cache_hits: Arc<Counter>,
    /// `/run` responses that required a fresh engine run.
    pub cache_misses: Arc<Counter>,
    /// `/run` requests rejected with `400` (spec did not validate).
    pub rejected_bad_spec: Arc<Counter>,
    /// `/run` requests rejected with `429` (queue full).
    pub rejected_busy: Arc<Counter>,
    /// `/run` requests that hit their deadline and got `503`.
    pub deadline_exceeded: Arc<Counter>,
    /// `/run` requests answered `500` (worker panic or send failure).
    pub internal_errors: Arc<Counter>,
    /// End-to-end request handling time (µs), every endpoint.
    pub request_latency_us: Arc<Histogram>,
    /// Time a `/run` job waited in the queue before a worker took it
    /// (µs).
    pub queue_wait_us: Arc<Histogram>,
    /// Engine service time of fresh `/run` executions (µs) — its
    /// mean backs the `Retry-After` estimate.
    pub service_time_us: Arc<Histogram>,
    evictions: Arc<Counter>,
    latency_p50: Arc<Gauge>,
    latency_p95: Arc<Gauge>,
    latency_p99: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    cache_bytes: Arc<Gauge>,
    cache_capacity_bytes: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    draining: Arc<Gauge>,
}

impl Default for ServerStats {
    fn default() -> Self {
        let registry = MetricsRegistry::new();
        let requests =
            registry.counter("plurality_requests_total", "Requests routed since startup.");
        let cache_hits = registry.counter(
            "plurality_cache_hits_total",
            "Run responses served from the report cache.",
        );
        let cache_misses = registry.counter(
            "plurality_cache_misses_total",
            "Run responses that required a fresh engine run.",
        );
        let rejected_bad_spec = registry.counter(
            "plurality_rejected_bad_spec_total",
            "Run requests rejected with 400.",
        );
        let rejected_busy = registry.counter(
            "plurality_rejected_busy_total",
            "Run requests rejected with 429 (queue full).",
        );
        let deadline_exceeded = registry.counter(
            "plurality_deadline_exceeded_total",
            "Run requests answered 503 after their deadline.",
        );
        let internal_errors = registry.counter(
            "plurality_internal_errors_total",
            "Run requests answered 500.",
        );
        let evictions = registry.counter(
            "plurality_cache_evictions_total",
            "Report-cache LRU evictions since startup.",
        );
        let request_latency_us = registry.histogram(
            "plurality_request_latency_us",
            "End-to-end request handling time in microseconds.",
        );
        let queue_wait_us = registry.histogram(
            "plurality_queue_wait_us",
            "Queue wait of /run jobs in microseconds.",
        );
        let service_time_us = registry.histogram(
            "plurality_service_time_us",
            "Engine service time of fresh runs in microseconds.",
        );
        let latency_p50 = registry.gauge(
            "plurality_request_latency_us_p50",
            "Median request latency (µs), from the log-bucket histogram.",
        );
        let latency_p95 = registry.gauge(
            "plurality_request_latency_us_p95",
            "95th-percentile request latency (µs).",
        );
        let latency_p99 = registry.gauge(
            "plurality_request_latency_us_p99",
            "99th-percentile request latency (µs).",
        );
        let cache_entries = registry.gauge("plurality_cache_entries", "Live report-cache entries.");
        let cache_bytes = registry.gauge("plurality_cache_bytes", "Charged report-cache bytes.");
        let cache_capacity_bytes = registry.gauge(
            "plurality_cache_capacity_bytes",
            "Report-cache byte budget.",
        );
        let queue_depth = registry.gauge(
            "plurality_queue_depth",
            "Jobs waiting for a worker right now.",
        );
        let draining = registry.gauge(
            "plurality_draining",
            "1 while the server is draining, else 0.",
        );
        Self {
            registry,
            render_lock: Mutex::new(()),
            requests,
            cache_hits,
            cache_misses,
            rejected_bad_spec,
            rejected_busy,
            deadline_exceeded,
            internal_errors,
            request_latency_us,
            queue_wait_us,
            service_time_us,
            evictions,
            latency_p50,
            latency_p95,
            latency_p99,
            cache_entries,
            cache_bytes,
            cache_capacity_bytes,
            queue_depth,
            draining,
        }
    }
}

impl ServerStats {
    /// Mean engine service time in milliseconds over completed fresh
    /// runs, or `fallback_ms` before the first one completes.
    pub fn mean_service_ms(&self, fallback_ms: u64) -> u64 {
        let runs = self.service_time_us.count();
        if runs == 0 {
            return fallback_ms;
        }
        (self.service_time_us.sum() / runs / 1_000).max(1)
    }

    /// Cache hit rate over `/run` responses served so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.cache_hits.get() as f64;
        let misses = self.cache_misses.get() as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Refreshes the sampled families (cache occupancy, queue depth,
    /// drain flag, eviction total, latency quantiles) from the current
    /// snapshot, under the render lock.
    fn refresh_samples(&self, cache: &CacheStats, queue_depth: usize, draining: bool) {
        // Evictions accumulate inside the cache shards; fold the delta
        // into the counter so the family stays an honest monotonic
        // counter rather than a gauge wearing a `_total` name.
        let seen = self.evictions.get();
        self.evictions.add(cache.evictions.saturating_sub(seen));
        self.cache_entries.set(cache.entries as f64);
        self.cache_bytes.set(cache.bytes as f64);
        self.cache_capacity_bytes.set(cache.capacity_bytes as f64);
        self.queue_depth.set(queue_depth as f64);
        self.draining.set(f64::from(u8::from(draining)));
        self.latency_p50
            .set(self.request_latency_us.quantile(0.50) as f64);
        self.latency_p95
            .set(self.request_latency_us.quantile(0.95) as f64);
        self.latency_p99
            .set(self.request_latency_us.quantile(0.99) as f64);
    }

    /// Prometheus text exposition for `/metrics`.
    pub fn metrics_text(&self, cache: &CacheStats, queue_depth: usize, draining: bool) -> String {
        let _guard = self.render_lock.lock().expect("stats render lock poisoned");
        self.refresh_samples(cache, queue_depth, draining);
        self.registry.render()
    }

    /// JSON body for `/stats`. Hand-rolled (flat object, numeric
    /// values) — same discipline as the benchmark snapshot writer.
    pub fn stats_json(&self, cache: &CacheStats, queue_depth: usize, draining: bool) -> String {
        let _guard = self.render_lock.lock().expect("stats render lock poisoned");
        self.refresh_samples(cache, queue_depth, draining);
        format!(
            "{{\n  \"requests\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"hit_rate\": {:.6},\n  \"rejected_bad_spec\": {},\n  \"rejected_busy\": {},\n  \
             \"deadline_exceeded\": {},\n  \"internal_errors\": {},\n  \"cache_entries\": {},\n  \
             \"cache_bytes\": {},\n  \"cache_capacity_bytes\": {},\n  \"cache_evictions\": {},\n  \
             \"queue_depth\": {},\n  \"draining\": {},\n  \"request_latency_us_p50\": {},\n  \
             \"request_latency_us_p95\": {},\n  \"request_latency_us_p99\": {}\n}}\n",
            self.requests.get(),
            self.cache_hits.get(),
            self.cache_misses.get(),
            self.hit_rate(),
            self.rejected_bad_spec.get(),
            self.rejected_busy.get(),
            self.deadline_exceeded.get(),
            self.internal_errors.get(),
            cache.entries,
            cache.bytes,
            cache.capacity_bytes,
            cache.evictions,
            queue_depth,
            u64::from(draining),
            self.request_latency_us.quantile(0.50),
            self.request_latency_us.quantile(0.95),
            self.request_latency_us.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_obs::validate_exposition;

    #[test]
    fn hit_rate_and_mean_service_time() {
        let stats = ServerStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.mean_service_ms(25), 25, "fallback before any run");
        stats.cache_hits.add(3);
        stats.cache_misses.inc();
        stats.service_time_us.record(8_000);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.mean_service_ms(25), 8);
    }

    #[test]
    fn monotonic_series_are_typed_counter_and_samples_gauge() {
        let stats = ServerStats::default();
        stats.requests.add(7);
        let text = stats.metrics_text(&CacheStats::default(), 2, true);
        // The `_total` families must not lie about their type.
        assert!(text.contains("# TYPE plurality_requests_total counter"));
        assert!(text.contains("# TYPE plurality_cache_hits_total counter"));
        assert!(text.contains("# TYPE plurality_cache_evictions_total counter"));
        assert!(text.contains("# TYPE plurality_queue_depth gauge"));
        assert!(text.contains("# TYPE plurality_request_latency_us histogram"));
        assert!(text.contains("plurality_requests_total 7\n"));
        assert!(text.contains("plurality_queue_depth 2\n"));
        assert!(text.contains("plurality_draining 1\n"));
    }

    #[test]
    fn metrics_text_is_valid_exposition_format() {
        let stats = ServerStats::default();
        stats.requests.add(3);
        stats.request_latency_us.record(120);
        stats.request_latency_us.record(4_500);
        stats.queue_wait_us.record(15);
        stats.service_time_us.record(2_000);
        let text = stats.metrics_text(&CacheStats::default(), 0, false);
        validate_exposition(&text).expect("well-formed exposition");
    }

    #[test]
    fn eviction_counter_tracks_the_sampled_total_monotonically() {
        let stats = ServerStats::default();
        let sample = |evictions| CacheStats {
            evictions,
            ..CacheStats::default()
        };
        let _ = stats.metrics_text(&sample(4), 0, false);
        let text = stats.metrics_text(&sample(9), 0, false);
        assert!(text.contains("plurality_cache_evictions_total 9\n"));
        // A stale (smaller) sample must never decrement the counter.
        let text = stats.metrics_text(&sample(7), 0, false);
        assert!(text.contains("plurality_cache_evictions_total 9\n"));
    }

    #[test]
    fn stats_json_has_the_monitored_keys() {
        let stats = ServerStats::default();
        stats.cache_hits.add(9);
        stats.cache_misses.inc();
        let json = stats.stats_json(&CacheStats::default(), 0, false);
        assert!(json.contains("\"hit_rate\": 0.900000"));
        assert!(json.contains("\"cache_hits\": 9"));
        assert!(json.contains("\"draining\": 0"));
        assert!(json.contains("\"request_latency_us_p99\": 0"));
        assert!(json.trim_end().ends_with('}'));
    }
}
