//! Server-wide counters and their `/metrics` (Prometheus text) and
//! `/stats` (JSON) renderings.

use crate::cache::CacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters, all relaxed — they are monitoring data, not
/// synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests that reached routing (any endpoint, any outcome).
    pub requests: AtomicU64,
    /// `/run` responses served from the report cache.
    pub cache_hits: AtomicU64,
    /// `/run` responses that required a fresh engine run.
    pub cache_misses: AtomicU64,
    /// `/run` requests rejected with `400` (spec did not validate).
    pub rejected_bad_spec: AtomicU64,
    /// `/run` requests rejected with `429` (queue full).
    pub rejected_busy: AtomicU64,
    /// `/run` requests that hit their deadline and got `503`.
    pub deadline_exceeded: AtomicU64,
    /// `/run` requests answered `500` (worker panic or send failure).
    pub internal_errors: AtomicU64,
    /// Microseconds of engine time summed over completed fresh runs —
    /// with `cache_misses`, gives the mean service time behind the
    /// `Retry-After` estimate.
    pub service_micros: AtomicU64,
}

impl ServerStats {
    /// Relaxed add, for the handler hot path.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean engine service time in milliseconds over completed fresh
    /// runs, or `fallback_ms` before the first one completes.
    pub fn mean_service_ms(&self, fallback_ms: u64) -> u64 {
        let runs = self.cache_misses.load(Ordering::Relaxed);
        if runs == 0 {
            return fallback_ms;
        }
        (self.service_micros.load(Ordering::Relaxed) / runs / 1_000).max(1)
    }

    /// Cache hit rate over `/run` responses served so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed) as f64;
        let misses = self.cache_misses.load(Ordering::Relaxed) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Prometheus text exposition for `/metrics`.
    pub fn metrics_text(&self, cache: &CacheStats, queue_depth: usize, draining: bool) -> String {
        let mut out = String::with_capacity(1024);
        let mut gauge = |name: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP plurality_{name} {help}\n# TYPE plurality_{name} gauge\n\
                 plurality_{name} {value}\n"
            ));
        };
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        gauge(
            "requests_total",
            "Requests routed since startup.",
            load(&self.requests).to_string(),
        );
        gauge(
            "cache_hits_total",
            "Run responses served from the report cache.",
            load(&self.cache_hits).to_string(),
        );
        gauge(
            "cache_misses_total",
            "Run responses that required a fresh engine run.",
            load(&self.cache_misses).to_string(),
        );
        gauge(
            "rejected_bad_spec_total",
            "Run requests rejected with 400.",
            load(&self.rejected_bad_spec).to_string(),
        );
        gauge(
            "rejected_busy_total",
            "Run requests rejected with 429 (queue full).",
            load(&self.rejected_busy).to_string(),
        );
        gauge(
            "deadline_exceeded_total",
            "Run requests answered 503 after their deadline.",
            load(&self.deadline_exceeded).to_string(),
        );
        gauge(
            "internal_errors_total",
            "Run requests answered 500.",
            load(&self.internal_errors).to_string(),
        );
        gauge(
            "cache_entries",
            "Live report-cache entries.",
            cache.entries.to_string(),
        );
        gauge(
            "cache_bytes",
            "Charged report-cache bytes.",
            cache.bytes.to_string(),
        );
        gauge(
            "cache_capacity_bytes",
            "Report-cache byte budget.",
            cache.capacity_bytes.to_string(),
        );
        gauge(
            "cache_evictions_total",
            "Report-cache LRU evictions since startup.",
            cache.evictions.to_string(),
        );
        gauge(
            "queue_depth",
            "Jobs waiting for a worker right now.",
            queue_depth.to_string(),
        );
        gauge(
            "draining",
            "1 while the server is draining, else 0.",
            u64::from(draining).to_string(),
        );
        out
    }

    /// JSON body for `/stats`. Hand-rolled (flat object, numeric
    /// values) — same discipline as the benchmark snapshot writer.
    pub fn stats_json(&self, cache: &CacheStats, queue_depth: usize, draining: bool) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "{{\n  \"requests\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"hit_rate\": {:.6},\n  \"rejected_bad_spec\": {},\n  \"rejected_busy\": {},\n  \
             \"deadline_exceeded\": {},\n  \"internal_errors\": {},\n  \"cache_entries\": {},\n  \
             \"cache_bytes\": {},\n  \"cache_capacity_bytes\": {},\n  \"cache_evictions\": {},\n  \
             \"queue_depth\": {},\n  \"draining\": {}\n}}\n",
            load(&self.requests),
            load(&self.cache_hits),
            load(&self.cache_misses),
            self.hit_rate(),
            load(&self.rejected_bad_spec),
            load(&self.rejected_busy),
            load(&self.deadline_exceeded),
            load(&self.internal_errors),
            cache.entries,
            cache.bytes,
            cache.capacity_bytes,
            cache.evictions,
            queue_depth,
            u64::from(draining),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_mean_service_time() {
        let stats = ServerStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.mean_service_ms(25), 25, "fallback before any run");
        stats.cache_hits.store(3, Ordering::Relaxed);
        stats.cache_misses.store(1, Ordering::Relaxed);
        stats.service_micros.store(8_000, Ordering::Relaxed);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(stats.mean_service_ms(25), 8);
    }

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let stats = ServerStats::default();
        stats.requests.store(7, Ordering::Relaxed);
        let text = stats.metrics_text(&CacheStats::default(), 2, true);
        assert!(text.contains("# TYPE plurality_requests_total gauge"));
        assert!(text.contains("plurality_requests_total 7\n"));
        assert!(text.contains("plurality_queue_depth 2\n"));
        assert!(text.contains("plurality_draining 1\n"));
        // Every non-comment line is `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().is_some_and(|n| n.starts_with("plurality_")));
            assert!(parts.next().is_some_and(|v| v.parse::<f64>().is_ok()));
            assert!(parts.next().is_none());
        }
    }

    #[test]
    fn stats_json_has_the_monitored_keys() {
        let stats = ServerStats::default();
        stats.cache_hits.store(9, Ordering::Relaxed);
        stats.cache_misses.store(1, Ordering::Relaxed);
        let json = stats.stats_json(&CacheStats::default(), 0, false);
        assert!(json.contains("\"hit_rate\": 0.900000"));
        assert!(json.contains("\"cache_hits\": 9"));
        assert!(json.contains("\"draining\": 0"));
        assert!(json.trim_end().ends_with('}'));
    }
}
