//! The daemon: accept loop, connection handlers, and the worker pool,
//! glued together by the [`JobQueue`] and the
//! [`ReportCache`].
//!
//! ## Request flow for `GET /run`
//!
//! 1. **Cache probe** — the canonical spec string (seed override
//!    applied) is looked up first; a hit returns the stored bytes with
//!    `X-Cache: hit` without touching the queue *or* the validator
//!    (whatever is in the cache was validated when it was inserted).
//! 2. **Validation** — [`Registry::validate_only`] runs the full
//!    resolution pipeline and rejects bad specs with `400` and the same
//!    teaching message the CLI prints, before the request can occupy a
//!    queue slot.
//! 3. **Backpressure** — `try_submit` never blocks: a full queue means
//!    `429 Too Many Requests` with a `Retry-After` estimated from the
//!    observed mean service time, queue depth, and worker count.
//! 4. **Deadline** — the handler waits on the job's reply channel with
//!    `recv_timeout`; an expired deadline is `503`, and workers skip
//!    jobs whose requester already gave up.
//! 5. **Coalescing** — a worker re-probes the cache after dequeuing, so
//!    identical requests racing through the queue run the engine once.
//!
//! ## Drain protocol
//!
//! [`Server::drain`] (also reachable as `POST /admin/drain`) closes the
//! queue: new `/run` submissions get `503`, already-queued jobs run to
//! completion, workers exit when the queue is empty, and the accept
//! loop is woken by a loopback self-connection so [`Server::join`]
//! returns without dropping accepted work.

use crate::cache::ReportCache;
use crate::http::{read_request, ReadOutcome, Request, Response};
use crate::pool::{Job, JobQueue, JobReply, SubmitError};
use crate::stats::{duration_us, ServerStats};
use plurality_api::{Registry, RunSpec};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads running engine jobs.
    pub workers: usize,
    /// Bounded queue capacity between handlers and workers.
    pub queue_capacity: usize,
    /// Report-cache byte budget.
    pub cache_bytes: usize,
    /// Per-request deadline: how long a `/run` handler waits for its
    /// reply before answering `503`.
    pub deadline: Duration,
    /// Assumed mean service time (ms) for the `Retry-After` estimate
    /// until the first fresh run has been measured.
    pub fallback_service_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_bytes: 32 << 20,
            deadline: Duration::from_secs(30),
            fallback_service_ms: 50,
        }
    }
}

struct Inner {
    registry: &'static Registry,
    queue: JobQueue,
    cache: ReportCache,
    stats: ServerStats,
    workers: usize,
    deadline: Duration,
    fallback_service_ms: u64,
    addr: SocketAddr,
}

/// A running daemon. Dropping the handle does *not* stop it — call
/// [`Server::drain`] then [`Server::join`] for an orderly shutdown.
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0` (the queue would never drain) or the
    /// queue/cache capacities are zero.
    pub fn start(config: ServeConfig) -> std::io::Result<Self> {
        assert!(config.workers > 0, "Server: need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            registry: Registry::standard(),
            queue: JobQueue::new(config.queue_capacity),
            cache: ReportCache::new(config.cache_bytes),
            stats: ServerStats::default(),
            workers: config.workers,
            deadline: config.deadline,
            fallback_service_ms: config.fallback_service_ms,
            addr,
        });

        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("plurality-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("plurality-accept".to_string())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawn accept thread")
        };

        Ok(Self {
            inner,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Begins a graceful drain: new `/run` work is refused, queued jobs
    /// finish, workers exit, the accept loop stops. Idempotent.
    pub fn drain(&self) {
        self.inner.queue.drain();
        // Wake the accept loop: `incoming()` has no timeout, so poke it
        // with a throwaway loopback connection it will drop on sight.
        let _ = TcpStream::connect(self.inner.addr);
    }

    /// Waits for the accept loop and every worker to exit (i.e. for a
    /// drain to complete). Detached per-connection handler threads are
    /// not joined; they die with their connections.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.queue.is_draining() {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let inner = Arc::clone(inner);
        let _ = std::thread::Builder::new()
            .name("plurality-conn".to_string())
            .spawn(move || handle_connection(stream, &inner));
    }
}

fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(ReadOutcome::Request(request)) => request,
            Ok(ReadOutcome::Closed) | Err(_) => return,
            Ok(ReadOutcome::Malformed(reason)) => {
                let _ = Response::error(400, reason).write_to(&mut write_half, false);
                return;
            }
        };
        // Bodies are never read, so a request announcing one would
        // desynchronize keep-alive framing — refuse and close.
        if request.headers.contains_key("content-length")
            || request.headers.contains_key("transfer-encoding")
        {
            let _ = Response::error(400, "request bodies are not supported")
                .write_to(&mut write_half, false);
            return;
        }
        let keep_alive = request.keep_alive();
        let is_drain =
            request.path == "/admin/drain" && matches!(request.method.as_str(), "GET" | "POST");
        let started = Instant::now();
        let response = route(&request, inner);
        inner
            .stats
            .request_latency_us
            .record(duration_us(started.elapsed()));
        let written = response.write_to(&mut write_half, keep_alive).is_ok();
        if is_drain {
            // Acknowledge *before* closing the queue: once the drain
            // starts, `join()` can return and the process may exit, so
            // the 200 must already be in the socket buffer by then.
            inner.queue.drain();
            let _ = TcpStream::connect(inner.addr);
        }
        if !written || !keep_alive {
            return;
        }
    }
}

fn route(request: &Request, inner: &Arc<Inner>) -> Response {
    inner.stats.requests.inc();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            if inner.queue.is_draining() {
                Response::error(503, "draining")
            } else {
                Response::ok("ok\n")
            }
        }
        ("GET", "/metrics") => Response::ok(inner.stats.metrics_text(
            &inner.cache.stats(),
            inner.queue.depth(),
            inner.queue.is_draining(),
        )),
        ("GET", "/stats") => Response {
            content_type: "application/json",
            ..Response::ok(inner.stats.stats_json(
                &inner.cache.stats(),
                inner.queue.depth(),
                inner.queue.is_draining(),
            ))
        },
        ("GET", "/run") => handle_run(request, inner),
        // The drain itself happens in `handle_connection`, after this
        // acknowledgment has been written — see the ordering note there.
        ("GET" | "POST", "/admin/drain") => Response::ok("draining\n"),
        (_, "/healthz" | "/metrics" | "/stats" | "/run") => Response::error(
            405,
            format!("{} is not supported here; use GET", request.method),
        ),
        (_, path) => Response::error(
            404,
            format!("no such endpoint {path:?}; try /run, /healthz, /metrics, /stats"),
        ),
    }
}

fn handle_run(request: &Request, inner: &Arc<Inner>) -> Response {
    let Some(raw_spec) = request.query_value("spec") else {
        inner.stats.rejected_bad_spec.inc();
        return Response::error(
            400,
            "missing `spec` query parameter, e.g. /run?spec=sync%3Fn%3D1000%26k%3D4",
        );
    };
    let spec = match RunSpec::parse(raw_spec) {
        Ok(spec) => spec,
        Err(e) => {
            inner.stats.rejected_bad_spec.inc();
            return Response::error(400, e.to_string());
        }
    };
    let spec = match request.query_value("seed") {
        None => spec,
        Some(raw_seed) => match raw_seed.parse::<u64>() {
            Ok(seed) => spec.with("seed", seed),
            Err(_) => {
                inner.stats.rejected_bad_spec.inc();
                return Response::error(
                    400,
                    format!("`seed` must be an unsigned integer, got {raw_seed:?}"),
                );
            }
        },
    };
    // The canonical string — seed override applied — is the cache key,
    // so `/run?spec=sync&seed=7` and `/run?spec=sync%3Fseed%3D7` share
    // an entry.
    let key = spec.to_string();

    if let Some(body) = inner.cache.get(&key) {
        inner.stats.cache_hits.inc();
        return Response::ok(body.to_string()).with_header("X-Cache", "hit");
    }

    if let Err(e) = inner.registry.validate_only(&spec) {
        inner.stats.rejected_bad_spec.inc();
        return Response::error(400, e.to_string());
    }

    let deadline = Instant::now() + inner.deadline;
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = Job {
        key,
        reply: reply_tx,
        deadline,
        submitted: Instant::now(),
    };
    match inner.queue.try_submit(job) {
        Ok(()) => {}
        Err(SubmitError::Full { depth }) => {
            inner.stats.rejected_busy.inc();
            let retry_after = retry_after_secs(inner, depth);
            return Response::error(429, format!("queue full ({depth} jobs pending)"))
                .with_header("Retry-After", retry_after.to_string());
        }
        Err(SubmitError::Draining) => {
            return Response::error(503, "server is draining; no new runs accepted");
        }
    }

    match reply_rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
        Ok(JobReply {
            result: Ok(body),
            from_cache,
        }) => Response::ok(body.to_string())
            .with_header("X-Cache", if from_cache { "hit" } else { "miss" }),
        Ok(JobReply {
            result: Err(reason),
            ..
        }) => {
            inner.stats.internal_errors.inc();
            Response::error(500, reason)
        }
        Err(RecvTimeoutError::Timeout) => {
            inner.stats.deadline_exceeded.inc();
            Response::error(503, "deadline exceeded before a worker finished the run").with_header(
                "Retry-After",
                retry_after_secs(inner, inner.queue.depth()).to_string(),
            )
        }
        Err(RecvTimeoutError::Disconnected) => {
            inner.stats.internal_errors.inc();
            Response::error(500, "worker dropped the job without replying")
        }
    }
}

/// `Retry-After` estimate in whole seconds: queue depth times mean
/// service time, divided across the worker pool, clamped to [1, 30].
fn retry_after_secs(inner: &Inner, depth: usize) -> u64 {
    let mean_ms = inner.stats.mean_service_ms(inner.fallback_service_ms);
    let backlog_ms = (depth as u64).saturating_mul(mean_ms) / inner.workers.max(1) as u64;
    backlog_ms.div_ceil(1_000).clamp(1, 30)
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(job) = inner.queue.pop_blocking() {
        inner
            .stats
            .queue_wait_us
            .record(duration_us(job.submitted.elapsed()));
        if Instant::now() >= job.deadline {
            // The requester already got its 503 — don't run for nobody.
            inner.stats.deadline_exceeded.inc();
            continue;
        }
        // Coalesce: an identical request may have populated the cache
        // while this job sat in the queue.
        if let Some(body) = inner.cache.get(&job.key) {
            inner.stats.cache_hits.inc();
            let _ = job.reply.send(JobReply {
                result: Ok(body),
                from_cache: true,
            });
            continue;
        }
        let started = Instant::now();
        let key = job.key.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let spec = RunSpec::parse(&key)?;
            let resolved = inner.registry.resolve(&spec)?;
            Ok::<String, plurality_api::SpecError>(resolved.run().wire_text())
        }));
        let result = match outcome {
            Ok(Ok(text)) => {
                inner
                    .stats
                    .service_time_us
                    .record(duration_us(started.elapsed()));
                inner.stats.cache_misses.inc();
                let body: Arc<str> = Arc::from(text.as_str());
                inner.cache.insert(key, Arc::clone(&body));
                Ok(body)
            }
            // Can't normally happen — the spec was validated before it
            // was queued — but a worker must never die on one job.
            Ok(Err(e)) => Err(format!("spec failed to resolve after validation: {e}")),
            Err(panic) => Err(format!("engine panicked: {}", panic_message(&panic))),
        };
        let _ = job.reply.send(JobReply {
            result,
            from_cache: false,
        });
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
