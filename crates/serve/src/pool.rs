//! The bounded job queue between connection handlers and the worker
//! pool.
//!
//! Connection handlers [`JobQueue::try_submit`] jobs and wait on a
//! per-job reply channel; workers [`JobQueue::pop_blocking`] them. The
//! queue is the backpressure point of the whole server: when it is full,
//! `try_submit` fails *immediately* and the handler turns that into a
//! `429 Too Many Requests` with a `Retry-After` estimate — no request
//! ever waits in an unbounded buffer, so an overloaded server degrades
//! into fast rejections instead of unbounded latency.
//!
//! Draining ([`JobQueue::drain`]) closes the queue for new submissions
//! while letting workers finish everything already accepted:
//! `pop_blocking` keeps handing out queued jobs and only returns `None`
//! once the queue is both draining *and* empty, which is each worker's
//! signal to exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A unit of work: run the canonical spec string and reply with the
/// serialized report.
pub struct Job {
    /// Canonical [`plurality_api::RunSpec`] string — seed override
    /// already applied — doubling as the cache key.
    pub key: String,
    /// Where the handler waits for the result (capacity-1 channel; the
    /// send never blocks).
    pub reply: SyncSender<JobReply>,
    /// When the requester stops waiting. Workers skip jobs whose
    /// deadline already passed instead of running them for nobody.
    pub deadline: Instant,
    /// When the handler submitted the job — the worker records the
    /// dequeue delay into the queue-wait histogram.
    pub submitted: Instant,
}

/// A worker's answer to a [`Job`].
pub struct JobReply {
    /// The serialized report, or an internal-error description.
    pub result: Result<Arc<str>, String>,
    /// Whether the body came from the report cache (either found by the
    /// handler before submitting, or by the worker after dequeuing —
    /// the latter happens when identical requests race).
    pub from_cache: bool,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — the client should retry later.
    Full {
        /// Queue depth observed at rejection time (== capacity).
        depth: usize,
    },
    /// The server is draining and accepts no new work.
    Draining,
}

/// Bounded multi-producer multi-consumer FIFO with a drain protocol.
pub struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    capacity: usize,
    depth: AtomicUsize,
    draining: AtomicBool,
}

impl JobQueue {
    /// Creates a queue holding at most `capacity` pending jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a zero-capacity queue would reject
    /// every request.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "JobQueue: capacity must be positive");
        Self {
            jobs: Mutex::new(VecDeque::with_capacity(capacity)),
            not_empty: Condvar::new(),
            capacity,
            depth: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pending jobs right now (monitoring gauge; racy by nature).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Whether [`JobQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Enqueues a job unless the queue is full or draining. Never
    /// blocks — this is the backpressure point.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Draining`]
    /// after [`JobQueue::drain`]; the job is dropped either way (its
    /// reply channel disconnects, which the handler observes).
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        if self.is_draining() {
            return Err(SubmitError::Draining);
        }
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        // Re-check under the lock: a drain begun between the fast check
        // and the lock must not lose the race.
        if self.is_draining() {
            return Err(SubmitError::Draining);
        }
        if jobs.len() >= self.capacity {
            return Err(SubmitError::Full { depth: jobs.len() });
        }
        jobs.push_back(job);
        self.depth.store(jobs.len(), Ordering::Relaxed);
        drop(jobs);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and returns it, or returns
    /// `None` once the queue is draining *and* empty — the worker's
    /// exit signal. Jobs accepted before the drain are always handed
    /// out, never dropped.
    pub fn pop_blocking(&self) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                self.depth.store(jobs.len(), Ordering::Relaxed);
                return Some(job);
            }
            if self.is_draining() {
                return None;
            }
            jobs = self.not_empty.wait(jobs).expect("job queue poisoned");
        }
    }

    /// Closes the queue for new work and wakes every blocked worker.
    /// Already-queued jobs still run to completion (graceful drain).
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Take the lock so no `pop_blocking` can miss the flag between
        // its empty-check and its wait.
        drop(self.jobs.lock().expect("job queue poisoned"));
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;
    use std::time::Duration;

    fn job(key: &str) -> (Job, std::sync::mpsc::Receiver<JobReply>) {
        let (tx, rx) = sync_channel(1);
        (
            Job {
                key: key.to_string(),
                reply: tx,
                deadline: Instant::now() + Duration::from_secs(5),
                submitted: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn submissions_beyond_capacity_are_rejected_not_queued() {
        let q = JobQueue::new(2);
        let (a, _ra) = job("a");
        let (b, _rb) = job("b");
        let (c, _rc) = job("c");
        assert!(q.try_submit(a).is_ok());
        assert!(q.try_submit(b).is_ok());
        assert_eq!(q.try_submit(c), Err(SubmitError::Full { depth: 2 }));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn drain_rejects_new_work_but_hands_out_queued_jobs() {
        let q = JobQueue::new(4);
        let (a, _ra) = job("a");
        q.try_submit(a).unwrap();
        q.drain();
        let (b, _rb) = job("b");
        assert_eq!(q.try_submit(b), Err(SubmitError::Draining));
        // The queued job is still delivered…
        assert_eq!(q.pop_blocking().map(|j| j.key), Some("a".to_string()));
        // …and after it, workers are told to exit.
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn pop_blocks_until_submit_and_drain_wakes_everyone() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop_blocking().map(|j| j.key));
        std::thread::sleep(Duration::from_millis(20));
        let (a, _ra) = job("late");
        q.try_submit(a).unwrap();
        assert_eq!(popper.join().unwrap(), Some("late".to_string()));

        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop_blocking().is_none())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.drain();
        for w in waiters {
            assert!(w.join().unwrap(), "drained pop must return None");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = JobQueue::new(0);
    }
}
