//! # plurality-serve
//!
//! A long-running [`RunSpec`](plurality_api::RunSpec) daemon: a
//! std-only HTTP/1.1 server that turns `GET /run?spec=…&seed=…` into
//! the wire-format report of a deterministic protocol run.
//!
//! The three load-bearing pieces:
//!
//! * **Backpressure** — a bounded [`pool::JobQueue`] between connection
//!   handlers and a fixed worker pool. A full queue answers `429 Too
//!   Many Requests` with a `Retry-After` estimate instead of buffering;
//!   a request whose deadline passes gets `503`. Overload degrades into
//!   fast rejections, never unbounded latency.
//! * **A sound report cache** — a sharded LRU [`cache::ReportCache`]
//!   keyed by the canonical spec string. Because every run is a pure
//!   function of its spec (the facade-bitwise and parallel-determinism
//!   contracts), a cache hit is *bitwise identical* to a fresh run —
//!   the cache is an optimization with no semantic footprint, and the
//!   integration tests assert the byte equality.
//! * **Graceful drain** — [`server::Server::drain`] refuses new work,
//!   finishes everything queued, and lets [`server::Server::join`]
//!   return with nothing dropped.
//!
//! Endpoints: `/run` (the above), `/healthz` (liveness), `/metrics`
//! (Prometheus text), `/stats` (JSON counters), `POST /admin/drain`
//! (graceful shutdown). See the README's "Serving" section for example
//! requests and the exact backpressure semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod pool;
pub mod server;
pub mod stats;

pub use cache::{CacheStats, ReportCache};
pub use client::{run_target, ClientResponse, HttpClient};
pub use server::{ServeConfig, Server};
