//! Lock-free metric primitives and the canonical Prometheus text encoder.
//!
//! Everything here is plain `std` atomics: recording a sample is a
//! handful of relaxed `fetch_add`s, safe to call from any thread and
//! cheap enough for engine hot paths. Reads (rendering, quantiles) are
//! racy snapshots by design — exactly what a monitoring scrape wants.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (`# TYPE … counter`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (`# TYPE … gauge`), stored as `f64`
/// bits in an atomic.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log-linear-bucket histogram of `u64` samples (HdrHistogram-style).
///
/// Layout: with sub-bucket count `S = 2^s`, values below `S` get their
/// own slot (exact); above that, each power-of-two major bucket is split
/// into `S/2` linear minors, so every recorded value lands in a bucket
/// whose width is at most `2/S` of its magnitude — the **relative error
/// bound** of every quantile read. Recording is one index computation
/// (a leading-zeros count) plus two relaxed `fetch_add`s: O(1), no
/// allocation, no locks. Histograms with the same `s` merge by
/// bucket-wise addition, which makes per-thread recording + end-of-run
/// [`Histogram::merge_from`] exact, not approximate.
///
/// Values above [`Histogram::max_trackable`] saturate into the top
/// bucket (relevant only for non-default ranges; the default covers all
/// of `u64`).
#[derive(Debug)]
pub struct Histogram {
    /// `s`: sub-bucket count is `1 << s`.
    sub_bucket_bits: u32,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Default histogram: `S = 32` sub-buckets (≤ 1/16 relative error),
    /// covering the full `u64` range in 976 slots (~8 KiB).
    pub fn new() -> Self {
        Self::with_sub_bucket_bits(5)
    }

    /// Histogram with `S = 2^s` sub-buckets. Larger `s` trades memory
    /// (`(65 − s)·2^(s−1)` slots) for resolution (relative error
    /// `≤ 2^(1−s)`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ s ≤ 16`.
    pub fn with_sub_bucket_bits(s: u32) -> Self {
        assert!((1..=16).contains(&s), "sub_bucket_bits must lie in 1..=16");
        let slots = Self::index_for_bits(u64::MAX, s) + 1;
        Self {
            sub_bucket_bits: s,
            counts: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Number of sub-buckets per major bucket (`S`).
    pub fn sub_bucket_count(&self) -> u64 {
        1u64 << self.sub_bucket_bits
    }

    /// The largest value the top slot represents (the default range
    /// covers all of `u64`).
    pub fn max_trackable(&self) -> u64 {
        self.value_at(self.counts.len() - 1)
    }

    fn index_for_bits(v: u64, s: u32) -> usize {
        let sub_count = 1u64 << s;
        if v < sub_count {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let b = (msb - s + 1) as u64;
        let sub = v >> b; // in [S/2, S)
        (b * (sub_count / 2) + sub) as usize
    }

    #[inline]
    fn index_for(&self, v: u64) -> usize {
        Self::index_for_bits(v, self.sub_bucket_bits)
    }

    /// The highest value mapping to slot `i` — the representative
    /// returned by quantile reads and the inclusive `le` upper bound of
    /// the Prometheus bucket.
    fn value_at(&self, i: usize) -> u64 {
        let half = (self.sub_bucket_count() / 2) as usize;
        if i < self.sub_bucket_count() as usize {
            return i as u64;
        }
        let b = i / half - 1;
        let sub = i % half + half;
        let upper = ((sub as u128 + 1) << b) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }

    /// Records one sample (values above the trackable range saturate
    /// into the top bucket).
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `count` samples of value `v`.
    #[inline]
    pub fn record_n(&self, v: u64, count: u64) {
        if count == 0 {
            return;
        }
        let v = v.min(self.max_trackable());
        self.counts[self.index_for(v)].fetch_add(count, Ordering::Relaxed);
        self.total.fetch_add(count, Ordering::Relaxed);
        self.sum
            .fetch_add(v.saturating_mul(count), Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), exact up to bucket resolution:
    /// the representative (highest) value of the bucket holding the
    /// `⌈q·count⌉`-th smallest sample. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= target {
                return self.value_at(i);
            }
        }
        self.max_trackable()
    }

    /// Adds every bucket of `other` into `self` (exact, associative).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket layouts.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(
            self.sub_bucket_bits, other.sub_bucket_bits,
            "cannot merge histograms with different bucket layouts"
        );
        for (dst, src) in self.counts.iter().zip(&other.counts) {
            let c = src.load(Ordering::Relaxed);
            if c > 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Non-empty buckets as `(inclusive upper bound, count)` pairs, in
    /// increasing bound order (non-cumulative).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let c = c.load(Ordering::Relaxed);
                (c > 0).then(|| (self.value_at(i), c))
            })
            .collect()
    }
}

/// What a registered family is, for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    name: String,
    help: String,
    metric: Metric,
}

impl Family {
    fn kind(&self) -> MetricKind {
        match self.metric {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A named collection of metric families with one canonical Prometheus
/// text encoder ([`MetricsRegistry::render`]).
///
/// Registration hands back an `Arc` handle the instrumented code keeps;
/// rendering walks the families in registration order, so the exposition
/// is deterministic.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self
            .families
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|fam| fam.name.clone())
            .collect();
        f.debug_struct("MetricsRegistry")
            .field("families", &names)
            .finish()
    }
}

fn assert_metric_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    assert!(
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name `{name}`"
    );
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, metric: Metric) {
        assert_metric_name(name);
        let mut families = self.families.lock().expect("metrics registry poisoned");
        assert!(
            families.iter().all(|f| f.name != name),
            "metric `{name}` registered twice"
        );
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            metric,
        });
    }

    /// Registers a counter family and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics on an invalid or duplicate name (a programming error).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.register(name, help, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Registers a gauge family and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics on an invalid or duplicate name.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.register(name, help, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers a default-layout histogram family and returns its
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics on an invalid or duplicate name.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, Histogram::new())
    }

    /// Registers a pre-configured histogram under `name`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid or duplicate name.
    pub fn histogram_with(&self, name: &str, help: &str, h: Histogram) -> Arc<Histogram> {
        let h = Arc::new(h);
        self.register(name, help, Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Renders every family in Prometheus text exposition format —
    /// `# HELP` / `# TYPE` headers with the correct `counter` / `gauge`
    /// / `histogram` kinds, cumulative `_bucket{le=…}` series ending in
    /// `+Inf`, and `_sum` / `_count` for histograms.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for fam in families.iter() {
            let kind = match fam.kind() {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
                MetricKind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
            let _ = writeln!(out, "# TYPE {} {}", fam.name, kind);
            match &fam.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", fam.name, c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", fam.name, fmt_value(g.get()));
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (le, count) in h.nonzero_buckets() {
                        cum += count;
                        let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cum}", fam.name);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", fam.name, h.count());
                    let _ = writeln!(out, "{}_sum {}", fam.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", fam.name, h.count());
                }
            }
        }
        out
    }
}

/// Formats a gauge value: integral values print without a fraction.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Validates a Prometheus text exposition: unique `# HELP` / `# TYPE`
/// per family with `TYPE` preceding its samples, sample names that
/// belong to a declared family (with `_bucket` / `_sum` / `_count` for
/// histograms), parseable values, and for every histogram cumulative
/// `le` buckets in strictly increasing bound order ending in `+Inf`
/// whose final count equals `_count`.
///
/// Shared by the serve exposition tests and the CI mid-load scrape, so
/// there is exactly one definition of "well-formed metrics".
///
/// # Errors
///
/// Returns the first problem found, described with its line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::HashMap;

    #[derive(Default)]
    struct HistState {
        last_le: Option<f64>,
        last_cum: Option<u64>,
        saw_inf: bool,
        inf_count: Option<u64>,
        count_value: Option<u64>,
        saw_sum: bool,
    }

    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashMap<String, ()> = HashMap::new();
    let mut hists: HashMap<String, HistState> = HashMap::new();

    let base_of = |name: &str, types: &HashMap<String, String>| -> Option<(String, String)> {
        if let Some(kind) = types.get(name) {
            return Some((name.to_string(), kind.clone()));
        }
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    return Some((base.to_string(), "histogram".to_string()));
                }
            }
        }
        None
    };

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or_default();
            if helps.insert(name.to_string(), ()).is_some() {
                return Err(format!("line {lineno}: duplicate HELP for `{name}`"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default().to_string();
            let kind = parts.next().unwrap_or_default().to_string();
            if !matches!(kind.as_str(), "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric type `{kind}`"));
            }
            if types.insert(name.clone(), kind).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // A sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return Err(format!("line {lineno}: malformed sample `{line}`")),
        };
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {lineno}: unparseable value `{value_part}`"))?;
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated labels"))?;
                (n, Some(labels))
            }
            None => (name_part, None),
        };
        let Some((base, kind)) = base_of(name, &types) else {
            return Err(format!(
                "line {lineno}: sample `{name}` has no preceding TYPE declaration"
            ));
        };
        if kind != "histogram" {
            continue;
        }
        let st = hists.entry(base.clone()).or_default();
        if name.ends_with("_bucket") {
            let labels =
                labels.ok_or_else(|| format!("line {lineno}: histogram bucket without labels"))?;
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("line {lineno}: bucket without le label: `{labels}`"))?;
            let le_num = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("line {lineno}: unparseable le `{le}`"))?
            };
            if let Some(prev) = st.last_le {
                if le_num <= prev {
                    return Err(format!(
                        "line {lineno}: `{base}` le buckets not increasing ({prev} then {le_num})"
                    ));
                }
            }
            let cum = value as u64;
            if let Some(prev) = st.last_cum {
                if cum < prev {
                    return Err(format!(
                        "line {lineno}: `{base}` bucket counts not cumulative ({prev} then {cum})"
                    ));
                }
            }
            st.last_le = Some(le_num);
            st.last_cum = Some(cum);
            if le == "+Inf" {
                st.saw_inf = true;
                st.inf_count = Some(cum);
            }
        } else if name.ends_with("_sum") {
            st.saw_sum = true;
        } else if name.ends_with("_count") {
            st.count_value = Some(value as u64);
        }
    }
    for (base, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let st = hists
            .get(base)
            .ok_or_else(|| format!("histogram `{base}` has no samples"))?;
        if !st.saw_inf {
            return Err(format!("histogram `{base}` has no `+Inf` bucket"));
        }
        if !st.saw_sum {
            return Err(format!("histogram `{base}` has no `_sum` sample"));
        }
        match (st.inf_count, st.count_value) {
            (Some(inf), Some(count)) if inf == count => {}
            (inf, count) => {
                return Err(format!(
                    "histogram `{base}`: +Inf bucket {inf:?} must equal _count {count:?}"
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        for q in [0.0f64, 0.25, 0.5, 0.75, 1.0] {
            let want = ((q * 32.0).ceil() as u64).clamp(1, 32) - 1;
            assert_eq!(h.quantile(q), want, "q={q}");
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [100u64, 1_000, 65_536, 1 << 40, u64::MAX / 3] {
            h.record(v);
            let i = h.index_for(v);
            let rep = h.value_at(i);
            assert!(rep >= v, "representative below the sample");
            let err = (rep - v) as f64 / v as f64;
            assert!(err <= 2.0 / 32.0, "error {err} for {v}");
        }
    }

    #[test]
    fn histogram_saturates_at_top_bucket() {
        let h = Histogram::with_sub_bucket_bits(2);
        assert_eq!(h.max_trackable(), u64::MAX);
        h.record(u64::MAX);
        h.record_n(u64::MAX - 1, 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..1_000u64 {
            let x = v * v % 7_919;
            (if v % 2 == 0 { &a } else { &b }).record(x);
            all.record(x);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merge_rejects_mismatched_layouts() {
        Histogram::with_sub_bucket_bits(4).merge_from(&Histogram::with_sub_bucket_bits(5));
    }

    #[test]
    fn registry_renders_all_three_kinds() {
        let r = MetricsRegistry::new();
        let c = r.counter("demo_total", "a counter");
        let g = r.gauge("demo_depth", "a gauge");
        let h = r.histogram("demo_latency_us", "a histogram");
        c.add(3);
        g.set(1.5);
        h.record(10);
        h.record(500);
        let text = r.render();
        assert!(text.contains("# TYPE demo_total counter"));
        assert!(text.contains("# TYPE demo_depth gauge"));
        assert!(text.contains("# TYPE demo_latency_us histogram"));
        assert!(text.contains("demo_total 3"));
        assert!(text.contains("demo_depth 1.5"));
        assert!(text.contains("demo_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("demo_latency_us_count 2"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let r = MetricsRegistry::new();
        let _ = r.counter("dup_total", "one");
        let _ = r.gauge("dup_total", "two");
    }

    #[test]
    fn validator_catches_type_lies_and_broken_buckets() {
        assert!(validate_exposition("# TYPE a counter\n# TYPE a counter\na 1\n").is_err());
        assert!(validate_exposition("orphan 1\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad).is_err());
        // Missing +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad).is_err());
        // +Inf disagrees with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(bad).is_err());
        // A well-formed family passes.
        let good = "# HELP h help\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        validate_exposition(good).unwrap();
    }
}
