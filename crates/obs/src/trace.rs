//! Deterministic run tracing: structured per-run events and exporters.
//!
//! Engines emit [`TraceEvent`]s through a [`Tracer`] behind an opt-in
//! knob. Recording touches no process RNG and no wall clock — every
//! timestamp is *simulated* time — so the trace of a seeded run is a
//! pure function of its configuration: tracing off reproduces the
//! historical RNG stream byte-identically, tracing on yields the same
//! run outcome plus the event stream. Exporters write JSONL (one event
//! per line, grep/jq-friendly) or the Chrome trace-event JSON format
//! loadable by `chrome://tracing` / Perfetto.

use std::io::{self, Write};
use std::str::FromStr;

/// One structured run event at a simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event (engine time units).
    pub time: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// The event taxonomy shared by all engines.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A protocol phase transition (leader / cluster state machines,
    /// synchronous two-choices rounds).
    Phase {
        /// Phase or transition name (e.g. `generation-allowed`).
        name: &'static str,
        /// Generation the transition concerns.
        generation: u32,
        /// Sub-entity: cluster index for the multi-leader engine, 0 for
        /// global events.
        scope: u32,
    },
    /// A new generation appeared in the generation table.
    Birth {
        /// The generation born.
        generation: u32,
    },
    /// A jump-chain zero-signal window crossing.
    WindowCrossing {
        /// Cluster index (0 for the single-leader engine).
        scope: u32,
    },
    /// The calendar event queue resized its bucket array.
    QueueResize {
        /// New bucket count.
        buckets: u64,
        /// New bucket width (simulated time units).
        width: f64,
    },
    /// A scenario effect fired.
    ScenarioEffect {
        /// Effect name (`joined`, `corrupt`, `rewired`, …).
        name: &'static str,
        /// How many nodes (or units) the effect touched.
        count: u64,
    },
    /// A generic milestone (convergence times, round markers, …).
    Milestone {
        /// Milestone name.
        name: &'static str,
        /// Associated value.
        value: f64,
    },
}

impl TraceKind {
    /// The event's display label (the inner name for named variants).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::Phase { name, .. } => name,
            TraceKind::Birth { .. } => "generation-birth",
            TraceKind::WindowCrossing { .. } => "window-crossing",
            TraceKind::QueueResize { .. } => "queue-resize",
            TraceKind::ScenarioEffect { name, .. } => name,
            TraceKind::Milestone { name, .. } => name,
        }
    }

    /// The event's category (stable across labels).
    pub fn category(&self) -> &'static str {
        match self {
            TraceKind::Phase { .. } => "phase",
            TraceKind::Birth { .. } => "birth",
            TraceKind::WindowCrossing { .. } => "window",
            TraceKind::QueueResize { .. } => "queue",
            TraceKind::ScenarioEffect { .. } => "scenario",
            TraceKind::Milestone { .. } => "milestone",
        }
    }

    /// JSON-object fragment with the variant's payload fields (no
    /// braces), deterministic field order.
    fn args_json(&self) -> String {
        match self {
            TraceKind::Phase {
                generation, scope, ..
            } => format!("\"generation\":{generation},\"scope\":{scope}"),
            TraceKind::Birth { generation } => format!("\"generation\":{generation}"),
            TraceKind::WindowCrossing { scope } => format!("\"scope\":{scope}"),
            TraceKind::QueueResize { buckets, width } => {
                format!("\"buckets\":{buckets},\"width\":{width}")
            }
            TraceKind::ScenarioEffect { count, .. } => format!("\"count\":{count}"),
            TraceKind::Milestone { value, .. } => format!("\"value\":{value}"),
        }
    }

    /// The Chrome `tid` lane: cluster scope where one exists, 0
    /// otherwise, so per-cluster phases render as separate tracks.
    fn lane(&self) -> u32 {
        match self {
            TraceKind::Phase { scope, .. } | TraceKind::WindowCrossing { scope } => *scope,
            _ => 0,
        }
    }
}

/// The opt-in event collector the engines thread through their run
/// loops. Disabled, it is a single branch per emission site and
/// allocates nothing.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Option<Vec<TraceEvent>>,
}

impl Tracer {
    /// A tracer that records iff `enabled`.
    pub fn new(enabled: bool) -> Self {
        Self {
            events: enabled.then(Vec::new),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, time: f64, kind: TraceKind) {
        if let Some(events) = self.events.as_mut() {
            events.push(TraceEvent { time, kind });
        }
    }

    /// Bulk-appends events gathered elsewhere (e.g. the event queue's
    /// resize log); no-op when disabled.
    pub fn extend(&mut self, more: impl IntoIterator<Item = TraceEvent>) {
        if let Some(events) = self.events.as_mut() {
            events.extend(more);
        }
    }

    /// Finishes the trace: events stably sorted by time (`None` when
    /// disabled).
    pub fn finish(self) -> Option<Vec<TraceEvent>> {
        self.events.map(|mut events| {
            events.sort_by(|a, b| a.time.total_cmp(&b.time));
            events
        })
    }
}

/// Always-on, RNG-free hot-path counters an engine reports next to its
/// result, so `perf_snapshot` can localize regressions (did we pop more
/// events? thin fewer signals?) instead of only seeing wall time move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineProfile {
    /// Events popped from the event queue.
    pub events_popped: u64,
    /// Ticks settled by thinning instead of being simulated
    /// individually.
    pub signals_thinned: u64,
    /// Calendar-queue bucket-array resizes.
    pub queue_resizes: u64,
    /// Jump-chain zero-signal window crossings.
    pub window_crossings: u64,
}

/// Trace output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line.
    Jsonl,
    /// Chrome trace-event JSON (`chrome://tracing`, Perfetto).
    Chrome,
}

impl FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(Self::Jsonl),
            "chrome" => Ok(Self::Chrome),
            other => Err(format!("unknown trace format `{other}` (jsonl or chrome)")),
        }
    }
}

/// A consumer of trace events. Implementations must tolerate events in
/// any time order (the engines sort before export, but sinks should not
/// depend on it).
pub trait TraceSink {
    /// Consumes one event.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn event(&mut self, ev: &TraceEvent) -> io::Result<()>;

    /// Flushes and finalizes the output (closes JSON arrays etc.).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// JSONL exporter: one `{"t":…,"event":…,"cat":…,…}` object per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        Self { w }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        writeln!(
            self.w,
            "{{\"t\":{},\"event\":\"{}\",\"cat\":\"{}\",{}}}",
            ev.time,
            ev.kind.label(),
            ev.kind.category(),
            ev.kind.args_json()
        )
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// Chrome trace-event exporter: instant events (`"ph":"i"`) with
/// microsecond timestamps derived from simulated time and one `tid`
/// lane per cluster scope.
#[derive(Debug)]
pub struct ChromeSink<W: Write> {
    w: W,
    first: bool,
}

impl<W: Write> ChromeSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        Self { w, first: true }
    }
}

impl<W: Write> TraceSink for ChromeSink<W> {
    fn event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        if self.first {
            self.w.write_all(b"{\"traceEvents\":[\n")?;
            self.first = false;
        } else {
            self.w.write_all(b",\n")?;
        }
        // Simulated time units → integer microseconds.
        let ts = (ev.time * 1e6).round().max(0.0) as u64;
        write!(
            self.w,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"g\",\"args\":{{{}}}}}",
            ev.kind.label(),
            ev.kind.category(),
            ts,
            ev.kind.lane(),
            ev.kind.args_json()
        )
    }

    fn finish(&mut self) -> io::Result<()> {
        if self.first {
            self.w.write_all(b"{\"traceEvents\":[\n")?;
            self.first = false;
        }
        self.w.write_all(b"\n]}\n")?;
        self.w.flush()
    }
}

/// Exports `events` to `w` in the given format (convenience over the
/// sink types).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn export<W: Write>(events: &[TraceEvent], format: TraceFormat, w: W) -> io::Result<()> {
    match format {
        TraceFormat::Jsonl => {
            let mut sink = JsonlSink::new(w);
            for ev in events {
                sink.event(ev)?;
            }
            sink.finish()
        }
        TraceFormat::Chrome => {
            let mut sink = ChromeSink::new(w);
            for ev in events {
                sink.event(ev)?;
            }
            sink.finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                time: 0.5,
                kind: TraceKind::Phase {
                    name: "generation-allowed",
                    generation: 1,
                    scope: 0,
                },
            },
            TraceEvent {
                time: 1.25,
                kind: TraceKind::Birth { generation: 2 },
            },
            TraceEvent {
                time: 2.0,
                kind: TraceKind::QueueResize {
                    buckets: 64,
                    width: 0.125,
                },
            },
        ]
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false);
        assert!(!t.enabled());
        t.emit(1.0, TraceKind::Birth { generation: 1 });
        t.extend(demo_events());
        assert_eq!(t.finish(), None);
    }

    #[test]
    fn tracer_sorts_by_time_stably() {
        let mut t = Tracer::new(true);
        t.emit(2.0, TraceKind::Birth { generation: 3 });
        t.emit(1.0, TraceKind::Birth { generation: 1 });
        t.emit(1.0, TraceKind::Birth { generation: 2 });
        let evs = t.finish().unwrap();
        let gens: Vec<u32> = evs
            .iter()
            .map(|e| match e.kind {
                TraceKind::Birth { generation } => generation,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(gens, vec![1, 2, 3]);
    }

    #[test]
    fn jsonl_lines_are_json_objects() {
        let mut buf = Vec::new();
        export(&demo_events(), TraceFormat::Jsonl, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"t\":"));
            assert!(line.contains("\"event\":"));
        }
        assert!(lines[0].contains("\"event\":\"generation-allowed\""));
        assert!(lines[2].contains("\"buckets\":64"));
    }

    #[test]
    fn chrome_output_has_the_trace_events_envelope() {
        let mut buf = Vec::new();
        export(&demo_events(), TraceFormat::Chrome, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"ts\":500000"));
        assert!(text.contains("\"ts\":1250000"));
        // Exactly one object per event.
        assert_eq!(text.matches("\"ph\":\"i\"").count(), 3);
    }

    #[test]
    fn empty_chrome_trace_is_still_well_formed() {
        let mut buf = Vec::new();
        export(&[], TraceFormat::Chrome, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn format_parses_and_rejects() {
        assert_eq!("jsonl".parse::<TraceFormat>(), Ok(TraceFormat::Jsonl));
        assert_eq!("chrome".parse::<TraceFormat>(), Ok(TraceFormat::Chrome));
        assert!("xml".parse::<TraceFormat>().is_err());
    }
}
