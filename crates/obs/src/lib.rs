//! Zero-dependency instrumentation for the plurality workspace.
//!
//! Two halves, both `std`-only:
//!
//! * **Metrics** ([`metrics`]): lock-free [`Counter`] / [`Gauge`] atomics
//!   and a log-linear-bucket [`Histogram`] (HdrHistogram-style:
//!   power-of-two majors × linear minors, O(1) record, mergeable, exact
//!   quantile-from-bucket accessors), collected in a named
//!   [`MetricsRegistry`] with one canonical Prometheus text encoder that
//!   distinguishes `counter` / `gauge` / `histogram` types. The encoder's
//!   output is checked by [`validate_exposition`], shared between unit
//!   tests and the CI scrape of the live daemon.
//!
//! * **Tracing** ([`trace`]): structured per-run events
//!   ([`TraceEvent`] / [`TraceKind`]) the engines emit behind an opt-in
//!   knob — phase transitions, generation births, jump-chain window
//!   crossings, calendar-queue resizes, scenario effect firings — plus
//!   JSONL and Chrome-trace-format exporters behind the [`TraceSink`]
//!   trait. The contract is *bitwise determinism*: recording a trace
//!   consumes **no** process RNG, so tracing off reproduces the
//!   historical RNG stream byte-identically and tracing on yields an
//!   identical run outcome with the events on the side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{validate_exposition, Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{
    export, ChromeSink, EngineProfile, JsonlSink, TraceEvent, TraceFormat, TraceKind, TraceSink,
    Tracer,
};
