//! Property tests for the log-linear-bucket histogram: merge
//! associativity, quantile agreement with exact sorted-vector quantiles
//! within the documented bucket resolution, and top-bucket saturation.

use plurality_obs::Histogram;
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sorted sample vector — the oracle
/// the histogram's bucketed quantiles are compared against.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_associative_and_order_independent(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
        c in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        // (a ⊕ b) ⊕ c
        let left = hist_of(&a);
        left.merge_from(&hist_of(&b));
        left.merge_from(&hist_of(&c));
        // a ⊕ (b ⊕ c)
        let bc = hist_of(&b);
        bc.merge_from(&hist_of(&c));
        let right = hist_of(&a);
        right.merge_from(&bc);
        // One histogram fed everything directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = hist_of(&all);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.count(), direct.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.sum(), direct.sum());
        prop_assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
        prop_assert_eq!(left.nonzero_buckets(), direct.nonzero_buckets());
        for q in [0.0f64, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
            prop_assert_eq!(left.quantile(q), direct.quantile(q));
        }
    }

    #[test]
    fn quantiles_agree_with_sorted_vector_within_bucket_resolution(
        mut values in prop::collection::vec(0u64..10_000_000, 1..400),
        qs in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let h = hist_of(&values);
        values.sort_unstable();
        for q in qs.iter().copied().chain([1.0]) {
            let exact = exact_quantile(&values, q);
            let bucketed = h.quantile(q);
            // The bucketed quantile is the highest value of the bucket
            // holding the exact rank: never below the exact answer, and
            // within the 2/S relative-error bound above it.
            prop_assert!(bucketed >= exact,
                "q={q}: bucketed {bucketed} < exact {exact}");
            let slack = 2.0 / h.sub_bucket_count() as f64;
            let bound = (exact as f64) * (1.0 + slack) + 1.0;
            prop_assert!((bucketed as f64) <= bound,
                "q={q}: bucketed {bucketed} above error bound {bound} (exact {exact})");
        }
    }

    #[test]
    fn count_and_sum_are_exact(values in prop::collection::vec(0u64..1_000_000, 0..300)) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn huge_values_saturate_into_the_top_bucket(
        values in prop::collection::vec(u64::MAX - 1_000..u64::MAX, 1..50),
    ) {
        let h = hist_of(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        // Everything near u64::MAX lands in the single top bucket, so
        // every quantile reads the top representative.
        prop_assert_eq!(h.quantile(0.0), h.quantile(1.0));
        prop_assert_eq!(h.quantile(1.0), u64::MAX);
        let buckets = h.nonzero_buckets();
        prop_assert_eq!(buckets.len(), 1);
        prop_assert_eq!(buckets[0], (u64::MAX, values.len() as u64));
    }
}
