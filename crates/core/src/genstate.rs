//! Generation × color bookkeeping shared by all generation-based engines.
//!
//! The analysis of the paper is phrased entirely in terms of the quantities
//! tracked here: `g_t(i)` (fraction of nodes in generation `i`), `c_{j,i,t}`
//! (color fractions inside a generation), the per-generation bias
//! `α_{i,t}` and the collision probability `p_{i,t} = Σ_j c²_{j,i,t}`
//! (Section 2.2). [`GenerationTable`] maintains these incrementally so the
//! simulation engines can expose them at any time in `O(k)` per query.

use crate::opinion::{Opinion, OpinionCounts};

/// Incremental `generation → color → count` table for `n` nodes.
///
/// # Examples
///
/// ```
/// use plurality_core::GenerationTable;
/// let mut t = GenerationTable::new(2);
/// t.insert(0, 0);
/// t.insert(0, 1);
/// t.insert(0, 0);
/// assert_eq!(t.n(), 3);
/// assert_eq!(t.bias_in(0), Some(2.0));
/// t.transfer(0, 1, 1, 0); // node moves to generation 1 adopting color 0
/// assert_eq!(t.max_generation(), 1);
/// assert!(t.is_monochromatic());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationTable {
    k: usize,
    /// `counts[g][c]` = number of nodes in generation `g` with color `c`.
    counts: Vec<Vec<u64>>,
    /// `totals[g]` = number of nodes in generation `g`.
    totals: Vec<u64>,
    /// Global support per color.
    color_totals: Vec<u64>,
    n: u64,
    max_generation: u32,
    /// Cached `max(color_totals)`, maintained incrementally so the
    /// engines' convergence tracking ([`GenerationTable::max_color_support`]
    /// runs on every adoption) costs O(1) instead of O(k). Repaired by an
    /// O(k) rescan only when the unique maximum color loses support.
    max_support: u64,
}

impl GenerationTable {
    /// Creates an empty table for `k` colors.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "GenerationTable: k must be positive");
        Self {
            k,
            counts: vec![vec![0; k]],
            totals: vec![0],
            color_totals: vec![0; k],
            n: 0,
            max_generation: 0,
            max_support: 0,
        }
    }

    /// Builds a table from parallel generation/color state slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or a color index is `≥ k`.
    pub fn from_states(gens: &[u32], cols: &[u32], k: usize) -> Self {
        assert_eq!(gens.len(), cols.len(), "state slices must match");
        let mut table = Self::new(k);
        for (&g, &c) in gens.iter().zip(cols) {
            table.insert(g, c);
        }
        table
    }

    fn ensure_generation(&mut self, g: u32) {
        while self.counts.len() <= g as usize {
            self.counts.push(vec![0; self.k]);
            self.totals.push(0);
        }
        if g > self.max_generation {
            self.max_generation = g;
        }
    }

    /// Number of colors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of nodes.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The highest generation that has ever held a node.
    pub fn max_generation(&self) -> u32 {
        self.max_generation
    }

    /// Adds a node in generation `g` with color `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c ≥ k`.
    pub fn insert(&mut self, g: u32, c: u32) {
        assert!((c as usize) < self.k, "color {c} out of range");
        self.ensure_generation(g);
        self.counts[g as usize][c as usize] += 1;
        self.totals[g as usize] += 1;
        let gained = self.color_totals[c as usize] + 1;
        self.color_totals[c as usize] = gained;
        if gained > self.max_support {
            self.max_support = gained;
        }
        self.n += 1;
    }

    /// Moves one node from `(from_gen, from_col)` to `(to_gen, to_col)`.
    ///
    /// # Panics
    ///
    /// Panics if there is no node at the source cell or a color is `≥ k`.
    pub fn transfer(&mut self, from_gen: u32, from_col: u32, to_gen: u32, to_col: u32) {
        assert!(
            (from_col as usize) < self.k,
            "color {from_col} out of range"
        );
        assert!((to_col as usize) < self.k, "color {to_col} out of range");
        let src = &mut self.counts[from_gen as usize][from_col as usize];
        assert!(
            *src > 0,
            "transfer from empty cell (gen {from_gen}, col {from_col})"
        );
        *src -= 1;
        self.totals[from_gen as usize] -= 1;
        self.ensure_generation(to_gen);
        self.counts[to_gen as usize][to_col as usize] += 1;
        self.totals[to_gen as usize] += 1;
        // Generation promotions that keep the color — the common case in
        // every engine — leave the global color tallies untouched.
        if from_col != to_col {
            let old_max = self.max_support;
            self.color_totals[from_col as usize] -= 1;
            let gained = self.color_totals[to_col as usize] + 1;
            self.color_totals[to_col as usize] = gained;
            if gained > self.max_support {
                self.max_support = gained;
            } else if self.color_totals[from_col as usize] + 1 == old_max {
                // The shrinking color sat at the maximum; it may have been
                // the unique one there, so rescan.
                self.max_support = self.color_totals.iter().copied().max().unwrap_or(0);
            }
        }
    }

    /// Number of nodes in generation `g` (0 if never populated).
    pub fn generation_total(&self, g: u32) -> u64 {
        self.totals.get(g as usize).copied().unwrap_or(0)
    }

    /// Fraction of all nodes in generation `g`.
    pub fn fraction_in(&self, g: u32) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.generation_total(g) as f64 / self.n as f64
        }
    }

    /// Color counts inside generation `g` as an [`OpinionCounts`].
    pub fn counts_in(&self, g: u32) -> OpinionCounts {
        match self.counts.get(g as usize) {
            Some(row) => OpinionCounts::from_counts(row.clone()),
            None => OpinionCounts::zeros(self.k),
        }
    }

    /// Bias `α_{g} = c_a / c_b` inside generation `g` (see
    /// [`OpinionCounts::bias`]); `None` if the generation is empty or
    /// `k < 2`. Computed allocation-free from the top two counts of the
    /// generation's row.
    pub fn bias_in(&self, g: u32) -> Option<f64> {
        if self.generation_total(g) == 0 || self.k < 2 {
            return None;
        }
        let row = &self.counts[g as usize];
        let (mut best, mut second) = (0u64, 0u64);
        for &c in row {
            if c > best {
                second = best;
                best = c;
            } else if c > second {
                second = c;
            }
        }
        Some(if second == 0 {
            f64::INFINITY
        } else {
            best as f64 / second as f64
        })
    }

    /// Collision probability `p_g = Σ_j c²_{j,g}` inside generation `g`
    /// (0 for an empty generation).
    pub fn collision_in(&self, g: u32) -> f64 {
        let total = self.generation_total(g);
        if total == 0 {
            return 0.0;
        }
        let row = &self.counts[g as usize];
        let t = total as f64;
        row.iter()
            .map(|&c| {
                let f = c as f64 / t;
                f * f
            })
            .sum()
    }

    /// Global support of `color`.
    pub fn color_support(&self, color: Opinion) -> u64 {
        self.color_totals[color.index() as usize]
    }

    /// The largest global support of any color — O(1), served from the
    /// incrementally maintained cache.
    pub fn max_color_support(&self) -> u64 {
        debug_assert_eq!(
            self.max_support,
            self.color_totals.iter().copied().max().unwrap_or(0),
            "cached max support out of sync"
        );
        self.max_support
    }

    /// Global color counts.
    pub fn global_counts(&self) -> OpinionCounts {
        OpinionCounts::from_counts(self.color_totals.clone())
    }

    /// Whether all nodes share one color.
    pub fn is_monochromatic(&self) -> bool {
        self.n > 0 && self.max_color_support() == self.n
    }

    /// Total nodes in generations `≥ g`.
    pub fn total_at_or_above(&self, g: u32) -> u64 {
        self.totals.iter().skip(g as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut t = GenerationTable::new(3);
        t.insert(0, 0);
        t.insert(0, 0);
        t.insert(0, 1);
        t.insert(2, 2); // skipping generation 1 is allowed
        assert_eq!(t.n(), 4);
        assert_eq!(t.max_generation(), 2);
        assert_eq!(t.generation_total(0), 3);
        assert_eq!(t.generation_total(1), 0);
        assert_eq!(t.generation_total(2), 1);
        assert_eq!(t.fraction_in(0), 0.75);
        assert_eq!(t.color_support(Opinion::new(0)), 2);
    }

    #[test]
    fn transfer_conserves_population() {
        let mut t = GenerationTable::new(2);
        for _ in 0..10 {
            t.insert(0, 1);
        }
        t.transfer(0, 1, 1, 0);
        t.transfer(0, 1, 1, 0);
        assert_eq!(t.n(), 10);
        assert_eq!(t.generation_total(0), 8);
        assert_eq!(t.generation_total(1), 2);
        assert_eq!(t.color_support(Opinion::new(0)), 2);
        assert_eq!(t.color_support(Opinion::new(1)), 8);
    }

    #[test]
    #[should_panic(expected = "transfer from empty cell")]
    fn transfer_from_empty_panics() {
        let mut t = GenerationTable::new(2);
        t.transfer(0, 0, 1, 0);
    }

    #[test]
    fn bias_and_collision() {
        let mut t = GenerationTable::new(2);
        for _ in 0..6 {
            t.insert(1, 0);
        }
        for _ in 0..3 {
            t.insert(1, 1);
        }
        assert_eq!(t.bias_in(1), Some(2.0));
        // p = (2/3)² + (1/3)² = 5/9
        assert!((t.collision_in(1) - 5.0 / 9.0).abs() < 1e-12);
        assert_eq!(t.bias_in(0), None);
        assert_eq!(t.collision_in(0), 0.0);
    }

    #[test]
    fn monochromatic_detection() {
        let mut t = GenerationTable::new(2);
        t.insert(0, 1);
        t.insert(3, 1);
        assert!(t.is_monochromatic());
        t.insert(1, 0);
        assert!(!t.is_monochromatic());
    }

    #[test]
    fn cached_max_support_tracks_mutations() {
        let mut t = GenerationTable::new(3);
        for _ in 0..5 {
            t.insert(0, 0);
        }
        for _ in 0..5 {
            t.insert(0, 1);
        }
        t.insert(0, 2);
        assert_eq!(t.max_color_support(), 5);
        // Unique-max decrement forces the rescan path.
        t.transfer(0, 0, 1, 2);
        assert_eq!(t.max_color_support(), 5); // color 1 still at 5
        t.transfer(0, 1, 1, 2);
        assert_eq!(t.max_color_support(), 4);
        // Same-color generation promotion leaves tallies untouched.
        t.transfer(0, 0, 2, 0);
        assert_eq!(t.max_color_support(), 4);
        assert_eq!(t.color_support(Opinion::new(0)), 4);
        // Growth through the increment path.
        for _ in 0..3 {
            t.insert(2, 2);
        }
        assert_eq!(t.max_color_support(), 6);
    }

    #[test]
    fn bias_in_matches_opinion_counts_bias() {
        let mut t = GenerationTable::new(4);
        for (c, reps) in [(0u32, 7usize), (1, 3), (2, 3), (3, 0)] {
            for _ in 0..reps {
                t.insert(1, c);
            }
        }
        assert_eq!(t.bias_in(1), t.counts_in(1).bias());
        // Monochromatic generation: infinite bias both ways.
        let mut m = GenerationTable::new(2);
        m.insert(0, 1);
        assert_eq!(m.bias_in(0), Some(f64::INFINITY));
        assert_eq!(m.bias_in(0), m.counts_in(0).bias());
    }

    #[test]
    fn from_states_matches_manual_inserts() {
        let gens = [0, 1, 1, 2];
        let cols = [0, 1, 1, 0];
        let t = GenerationTable::from_states(&gens, &cols, 2);
        assert_eq!(t.n(), 4);
        assert_eq!(t.generation_total(1), 2);
        assert_eq!(t.color_support(Opinion::new(1)), 2);
        assert_eq!(t.total_at_or_above(1), 3);
    }
}
