//! Closed-form predictions from the paper's analysis.
//!
//! The experiment harness compares measured quantities against the exact
//! expressions the proofs manipulate: the collision-probability lower bound
//! of Remark 2, the squared-bias chain `α_i = α₀^{2^i}` of Proposition 8,
//! the generation counts of Corollary 10 and Lemma 11, and the overall time
//! bound of Theorem 1. Everything is computed in the log domain so the
//! doubly-exponential bias chain never overflows.

/// Remark 2: in a generation with bias `α` and `k` colors, the collision
/// probability satisfies `p ≥ (α² + k − 1)/(α + k − 1)²` (equality when all
/// non-dominant colors tie).
///
/// # Panics
///
/// Panics if `alpha < 1` or `k == 0`.
pub fn collision_lower_bound(alpha: f64, k: u32) -> f64 {
    assert!(alpha >= 1.0, "collision_lower_bound: alpha must be ≥ 1");
    assert!(k >= 1, "collision_lower_bound: k must be ≥ 1");
    let kf = k as f64;
    (alpha * alpha + kf - 1.0) / ((alpha + kf - 1.0) * (alpha + kf - 1.0))
}

/// The idealized bias chain `α_i = α₀^{2^i}` (Proposition 8 without error
/// terms), returned for `i = 0..=generations`. Values whose logarithm
/// exceeds `f64` range are reported as `+∞`.
///
/// # Panics
///
/// Panics if `alpha0 < 1`.
pub fn predicted_bias_chain(alpha0: f64, generations: u32) -> Vec<f64> {
    assert!(alpha0 >= 1.0, "predicted_bias_chain: alpha0 must be ≥ 1");
    let ln_a = alpha0.ln();
    (0..=generations)
        .map(|i| {
            let ln_bias = 2f64.powi(i as i32) * ln_a;
            if ln_bias > 700.0 {
                f64::INFINITY
            } else {
                ln_bias.exp()
            }
        })
        .collect()
}

/// Corollary 10: the number of generations needed for the bias to reach a
/// target value, `⌈log₂ log_{α₀} target⌉` (0 if already there).
///
/// # Panics
///
/// Panics if `alpha0 ≤ 1` or `target ≤ 1`.
pub fn generations_to_reach(alpha0: f64, target: f64) -> u32 {
    assert!(alpha0 > 1.0, "generations_to_reach: alpha0 must exceed 1");
    assert!(target > 1.0, "generations_to_reach: target must exceed 1");
    if alpha0 >= target {
        return 0;
    }
    let g = (target.ln() / alpha0.ln()).ln() / std::f64::consts::LN_2;
    g.ceil().max(0.0) as u32
}

/// Lemma 11: once the bias exceeds `k`, the number of further generations
/// until a monochromatic generation appears is about `log₂ log_k n`.
///
/// # Panics
///
/// Panics if `k < 2` or `n < 2`.
pub fn endgame_generations(k: u32, n: u64) -> f64 {
    assert!(k >= 2, "endgame_generations: k must be ≥ 2");
    assert!(n >= 2, "endgame_generations: n must be ≥ 2");
    ((n as f64).ln() / (k as f64).ln()).ln() / std::f64::consts::LN_2
}

/// Theorem 1's time bound `C·(log k · log log_α k + log log n)` with an
/// explicit constant, for plotting against measured round counts.
///
/// # Panics
///
/// Panics if `alpha ≤ 1`, `k < 2`, or `n < 3`.
pub fn theorem1_round_bound(n: u64, k: u32, alpha: f64, constant: f64) -> f64 {
    assert!(alpha > 1.0, "theorem1_round_bound: alpha must exceed 1");
    assert!(k >= 2, "theorem1_round_bound: k must be ≥ 2");
    assert!(n >= 3, "theorem1_round_bound: n must be ≥ 3");
    let log_k = (k as f64).log2().max(1.0);
    let loglog_alpha_k = generations_to_reach(alpha, k as f64).max(1) as f64;
    let loglog_n = (n as f64).ln().ln().max(1.0);
    constant * (log_k * loglog_alpha_k + loglog_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_bound_sanity() {
        // Uniform two colors: α = 1, k = 2 ⇒ p ≥ 1/2.
        assert!((collision_lower_bound(1.0, 2) - 0.5).abs() < 1e-12);
        // Large bias dominates: α → ∞ gives p → 1.
        assert!(collision_lower_bound(1000.0, 8) > 0.98);
        // Uniform k colors: p ≥ 1/k.
        let k = 10u32;
        assert!((collision_lower_bound(1.0, k) - 1.0 / k as f64).abs() < 1e-12);
    }

    #[test]
    fn collision_bound_decreases_in_k_increases_in_alpha() {
        assert!(collision_lower_bound(1.5, 4) > collision_lower_bound(1.5, 16));
        assert!(collision_lower_bound(3.0, 8) > collision_lower_bound(1.5, 8));
    }

    #[test]
    fn bias_chain_squares() {
        let chain = predicted_bias_chain(1.5, 4);
        assert_eq!(chain.len(), 5);
        assert!((chain[0] - 1.5).abs() < 1e-12);
        for w in chain.windows(2) {
            if w[1].is_finite() {
                assert!((w[1] - w[0] * w[0]).abs() < 1e-6 * w[1]);
            }
        }
    }

    #[test]
    fn bias_chain_saturates_to_infinity() {
        let chain = predicted_bias_chain(2.0, 64);
        assert!(chain.last().unwrap().is_infinite());
        // Monotone towards infinity.
        for w in chain.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn generations_to_reach_matches_hand_computation() {
        // α₀ = 1.5, target 16: 1.5^(2^g) ≥ 16 ⇔ 2^g ≥ ln16/ln1.5 ≈ 6.84 ⇒ g = 3.
        assert_eq!(generations_to_reach(1.5, 16.0), 3);
        // Already there.
        assert_eq!(generations_to_reach(20.0, 16.0), 0);
        // Squaring once suffices.
        assert_eq!(generations_to_reach(4.0, 16.0), 1);
    }

    #[test]
    fn endgame_shrinks_with_k() {
        let n = 1_000_000u64;
        assert!(endgame_generations(2, n) > endgame_generations(64, n));
        // log₂ log₂ 1e6 ≈ log₂(19.9) ≈ 4.3 for k = 2.
        let g = endgame_generations(2, n);
        assert!((3.5..5.0).contains(&g), "g = {g}");
    }

    #[test]
    fn theorem1_bound_monotone_in_k_and_n() {
        let b_small_k = theorem1_round_bound(100_000, 4, 1.2, 1.0);
        let b_large_k = theorem1_round_bound(100_000, 64, 1.2, 1.0);
        assert!(b_large_k > b_small_k);
        let b_small_n = theorem1_round_bound(1_000, 8, 1.2, 1.0);
        let b_large_n = theorem1_round_bound(100_000_000, 8, 1.2, 1.0);
        assert!(b_large_n >= b_small_n);
    }
}
