//! Displaced-Poisson jump chains for 0-signal streams.
//!
//! Every node fires a 0-signal towards its leader at every Poisson tick;
//! each signal travels one independent `Exp(ν)` latency. By the
//! displacement theorem for Poisson processes, the *arrival* stream at a
//! leader is itself an inhomogeneous Poisson process whose intensity is
//! the convolution of the send rate with the latency density: for a
//! piecewise-constant send rate `r(·)` the intensity obeys
//!
//! ```text
//! λ(t) = r + (λ(t₀) − r)·e^{−ν(t−t₀)}        (r constant on [t₀, t])
//! ```
//!
//! and the cumulative arrival measure over `[t₀, t₀+Δ]` is
//!
//! ```text
//! M(Δ) = r·Δ − (r − λ(t₀))·(1 − e^{−νΔ})/ν.
//! ```
//!
//! The engines never materialize individual 0-signal arrivals: the leader
//! state machines only *count* them against fixed thresholds, and nothing
//! reads the counters between threshold crossings (see
//! [`crate::leader::LeaderState::on_zero_batch`]). The time of the κ-th
//! arrival after any instant is therefore `M⁻¹(Γ)` with `Γ ~ Gamma(κ, 1)`
//! — one gamma draw and one numeric inversion per *crossing* instead of
//! two RNG draws plus a queue round-trip per *signal*. Because Poisson
//! increments over disjoint intervals are independent, re-drawing a fresh
//! `Γ` whenever a counter is reset mid-window (a generation birth, a
//! cluster sync) is exact.
//!
//! The arrival stream simulated this way has exactly the marginal law of
//! the per-signal implementation; what is dropped is its correlation with
//! the tick stream (both ride the same underlying Poisson points). The
//! counters aggregate thousands of arrivals per crossing, so this shared
//! fluctuation is far below the threshold granularity; engines keep the
//! per-signal path for scenario runs (crashes and loss bursts modulate
//! individual signals) and for non-exponential latencies.

use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::Gamma;

/// Relative tolerance of the `M⁻¹` Newton inversion. `M` is monotone with
/// slope `λ`, so a measure error of `ε·goal` maps to a time error below
/// `ε·goal/λ` — far below any observable granularity at `ε = 1e-12`.
const INVERT_RTOL: f64 = 1e-12;

/// The displaced-Poisson arrival stream of one leader's 0-signals.
///
/// Maintains the arrival intensity `λ` under a piecewise-constant send
/// rate and, when a counting window is armed, the solved time of the next
/// threshold crossing.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalFlow {
    /// Latency rate `ν` of the `Exp(ν)` travel law.
    nu: f64,
    /// Current effective send rate (ticking mass × delivery probability).
    rate: f64,
    /// Arrival intensity at time `t0`.
    lam: f64,
    /// Time of the last intensity update.
    t0: f64,
    /// Remaining arrival measure until the armed crossing (meaningless
    /// while disarmed).
    goal: f64,
    /// Solved crossing time; `INFINITY` while disarmed or unreachable.
    pred: f64,
}

impl SignalFlow {
    /// A flow with no senders and no armed window, starting at time 0.
    pub fn new(nu: f64) -> Self {
        debug_assert!(nu > 0.0 && nu.is_finite());
        Self {
            nu,
            rate: 0.0,
            lam: 0.0,
            t0: 0.0,
            goal: 0.0,
            pred: f64::INFINITY,
        }
    }

    /// The solved time of the next armed crossing (`INFINITY` if none).
    #[inline]
    pub fn pred(&self) -> f64 {
        self.pred
    }

    /// Decays `λ` forward to `t` and, if a window is armed, consumes the
    /// arrival measure accrued on `[t0, t]` from `goal`.
    fn advance(&mut self, t: f64) {
        let dt = t - self.t0;
        if dt <= 0.0 {
            return;
        }
        let e = (-self.nu * dt).exp();
        let gap = self.rate - self.lam;
        if self.pred.is_finite() {
            self.goal -= self.rate * dt - gap * (1.0 - e) / self.nu;
        }
        self.lam = self.rate - gap * e;
        self.t0 = t;
    }

    /// Solves `M(Δ) = goal` for the current `(rate, lam)` and stores the
    /// crossing time in `pred`.
    fn solve(&mut self) {
        if self.goal <= 0.0 {
            // Numerically consumed (the crossing fires "now"); keep a
            // strictly-ordered event time.
            self.pred = self.t0;
            return;
        }
        let gap = self.rate - self.lam;
        if self.rate <= 0.0 {
            // Pure decay: total remaining measure is lam/ν.
            let total = self.lam / self.nu;
            self.pred = if self.goal >= total {
                f64::INFINITY
            } else {
                self.t0 - (1.0 - self.goal * self.nu / self.lam).ln() / self.nu
            };
            return;
        }
        // Newton on M(Δ) − goal with M′(Δ) = λ(t0+Δ) > 0. Start from an
        // upper bound of the root: M(Δ) ≥ rate·Δ − max(gap, 0)/ν.
        let mut d = self.goal / self.rate + gap.max(0.0) / (self.nu * self.rate);
        let tol = INVERT_RTOL * (1.0 + self.goal);
        for _ in 0..64 {
            let e = (-self.nu * d).exp();
            let m = self.rate * d - gap * (1.0 - e) / self.nu;
            let slope = self.rate - gap * e;
            let err = m - self.goal;
            if err.abs() <= tol || slope <= 0.0 {
                break;
            }
            d -= err / slope;
            if d < 0.0 {
                d = 0.0;
            }
        }
        self.pred = self.t0 + d;
    }

    /// Changes the effective send rate at time `t` (size change, loss
    /// regime change, senders going quiet), re-solving any armed crossing.
    pub fn set_rate(&mut self, t: f64, rate: f64) {
        debug_assert!(rate >= 0.0 && rate.is_finite());
        self.advance(t);
        self.rate = rate;
        if self.pred.is_finite() || self.goal > 0.0 {
            self.solve();
        }
    }

    /// Arms a counting window at time `t`: the crossing fires at the κ-th
    /// arrival after `t`, whose measure coordinate `Γ ~ Gamma(κ, 1)` is
    /// drawn here. Replaces any previously armed window (exact, because
    /// arrivals after `t` are independent of everything observed so far).
    pub fn arm(&mut self, t: f64, kappa: u64, rng: &mut Xoshiro256PlusPlus) {
        debug_assert!(kappa > 0);
        self.disarm(t);
        self.goal = if kappa == 1 {
            plurality_dist::Exponential::new(1.0)
                .expect("unit rate valid")
                .sample(rng)
        } else {
            Gamma::new(kappa as f64, 1.0)
                .expect("validated shape")
                .sample(rng)
        };
        self.solve();
    }

    /// Disarms the window at time `t`: arrivals keep flowing (the
    /// intensity still decays/charges) but none are counted.
    pub fn disarm(&mut self, t: f64) {
        self.advance(t);
        self.pred = f64::INFINITY;
        self.goal = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_dist::rng::Xoshiro256PlusPlus;

    /// Brute-force counterpart: simulate ticks at `rate`, displace each by
    /// an `Exp(nu)` travel, and report the time of the κ-th arrival.
    fn brute_kth_arrival(rate: f64, nu: f64, kappa: usize, seed: u64) -> f64 {
        use plurality_dist::Exponential;
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        let tick = Exponential::new(rate).unwrap();
        let travel = Exponential::new(nu).unwrap();
        let mut arrivals: Vec<f64> = Vec::new();
        let mut t = 0.0;
        // Generate enough ticks that the κ-th arrival is surely covered.
        for _ in 0..200_000 {
            t += tick.sample(&mut rng);
            arrivals.push(t + travel.sample(&mut rng));
        }
        arrivals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        arrivals[kappa - 1]
    }

    #[test]
    fn crossing_times_match_brute_force_distribution() {
        // The κ-th arrival time of the jump chain must match the law of
        // the κ-th order statistic of displaced ticks: compare means over
        // independent replicates (κ large ⇒ tight concentration).
        let (rate, nu, kappa) = (500.0, 1.0, 2_000u64);
        let reps = 40;
        let mut jump_mean = 0.0;
        let mut brute_mean = 0.0;
        for s in 0..reps {
            let mut rng = Xoshiro256PlusPlus::from_u64(1_000 + s);
            let mut flow = SignalFlow::new(nu);
            flow.set_rate(0.0, rate);
            flow.arm(0.0, kappa, &mut rng);
            jump_mean += flow.pred() / reps as f64;
            brute_mean += brute_kth_arrival(rate, nu, kappa as usize, 2_000 + s) / reps as f64;
        }
        let rel = (jump_mean - brute_mean).abs() / brute_mean;
        assert!(
            rel < 0.01,
            "jump {jump_mean:.4} vs brute {brute_mean:.4} (rel {rel:.4})"
        );
    }

    #[test]
    fn rate_changes_preserve_total_measure() {
        // Splitting a constant-rate window by interior set_rate calls with
        // the same rate must not move the crossing.
        let mut r1 = Xoshiro256PlusPlus::from_u64(7);
        let mut r2 = Xoshiro256PlusPlus::from_u64(7);
        let mut a = SignalFlow::new(2.0);
        let mut b = SignalFlow::new(2.0);
        a.set_rate(0.0, 100.0);
        b.set_rate(0.0, 100.0);
        a.arm(0.0, 500, &mut r1);
        b.arm(0.0, 500, &mut r2);
        for i in 1..=4 {
            b.set_rate(f64::from(i) * 0.8, 100.0);
        }
        assert!(
            (a.pred() - b.pred()).abs() < 1e-6,
            "{} vs {}",
            a.pred(),
            b.pred()
        );
    }

    #[test]
    fn zero_rate_windows_can_be_unreachable() {
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let mut flow = SignalFlow::new(1.0);
        flow.set_rate(0.0, 50.0);
        // Let intensity charge up, then stop all senders.
        flow.set_rate(10.0, 0.0);
        // Residual in-flight measure is ≈ λ/ν ≈ 50 ≪ κ = 5000.
        flow.arm(10.0, 5_000, &mut rng);
        assert!(flow.pred().is_infinite(), "pred {}", flow.pred());
        // A tiny window still crosses on the residual in-flight signals.
        flow.arm(10.0, 3, &mut rng);
        assert!(flow.pred().is_finite());
    }

    #[test]
    fn disarm_stops_counting_but_keeps_intensity() {
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let mut flow = SignalFlow::new(1.0);
        flow.set_rate(0.0, 100.0);
        flow.arm(0.0, 50, &mut rng);
        let first = flow.pred();
        assert!(first.is_finite());
        flow.disarm(first);
        assert!(flow.pred().is_infinite());
        // Re-arming later still produces ordered, finite crossings.
        flow.arm(first + 1.0, 50, &mut rng);
        assert!(flow.pred() > first + 1.0);
    }
}
