//! Shared run-outcome types and convergence tracking.
//!
//! Every protocol in the workspace (synchronous, single-leader, multi-leader,
//! and all baselines) reports a [`RunOutcome`]: who won, whether the initial
//! plurality was preserved, when ε-convergence and full consensus happened,
//! and — for the generation-based protocols — the per-generation birth
//! telemetry that experiments E5/E6 turn into the paper's concentration
//! checks.

use crate::opinion::{Opinion, OpinionCounts};

/// How much telemetry a run records.
///
/// More detail costs memory and a little time; the default for experiments is
/// [`RecordLevel::Generations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordLevel {
    /// Final outcome and convergence times only.
    Outcome,
    /// Outcome plus per-generation birth records.
    #[default]
    Generations,
    /// Everything, including per-round/time series of key fractions.
    Full,
}

/// Telemetry recorded when a new generation first appears.
///
/// The paper's central concentration claims are statements about these
/// numbers: the bias in generation `i` at its birth is `≈ α_{i-1}²`
/// (Lemma 4 / Lemma 22) and the new generation is born with fraction
/// `≈ γ² p_{i-1}` (Proposition 9) or `≥ p_{i-1}/9` (Proposition 16).
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationBirth {
    /// The generation index `i ≥ 1`.
    pub generation: u32,
    /// Birth time: round index (synchronous) or continuous time
    /// (asynchronous).
    pub time: f64,
    /// Bias `α_{i}` measured inside the new generation at birth
    /// (`f64::INFINITY` if its runner-up color is empty).
    pub bias: f64,
    /// Bias `α_{i−1}` measured inside the parent generation just before
    /// birth.
    pub parent_bias: f64,
    /// Fraction of all nodes inside the new generation at birth.
    pub initial_fraction: f64,
    /// Collision probability `p_{i-1}` of the parent generation just before
    /// birth.
    pub parent_collision: f64,
}

/// Final report of a consensus run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Population size.
    pub n: u64,
    /// Number of opinions.
    pub k: u32,
    /// The initial plurality opinion.
    pub initial_winner: Opinion,
    /// Initial bias `α₀` between top-two opinions.
    pub initial_bias: f64,
    /// Final opinion counts.
    pub final_counts: OpinionCounts,
    /// First time the initial plurality opinion was held by at least a
    /// `1 − ε` fraction, if it happened.
    pub epsilon_time: Option<f64>,
    /// First time the population became monochromatic, if it happened.
    pub consensus_time: Option<f64>,
    /// Total simulated duration (rounds or continuous time).
    pub duration: f64,
    /// Per-generation birth telemetry (empty at [`RecordLevel::Outcome`]).
    pub generations: Vec<GenerationBirth>,
}

impl RunOutcome {
    /// The final plurality opinion, if the population is non-empty.
    pub fn winner(&self) -> Option<Opinion> {
        self.final_counts.winner()
    }

    /// Whether the run converged fully *and* on the initial plurality
    /// opinion — the paper's success criterion.
    pub fn plurality_preserved(&self) -> bool {
        self.consensus_time.is_some() && self.winner() == Some(self.initial_winner)
    }

    /// Whether ε-convergence (to the initial plurality) happened.
    pub fn epsilon_converged(&self) -> bool {
        self.epsilon_time.is_some()
    }
}

/// Incremental tracker for ε-convergence and full consensus.
///
/// Protocol engines call [`ConvergenceTracker::observe`] whenever the support
/// counts change; the tracker latches the *first* crossing times.
///
/// # Examples
///
/// ```
/// use plurality_core::{ConvergenceTracker, Opinion};
/// let mut t = ConvergenceTracker::new(100, Opinion::new(0), 0.1);
/// t.observe(1.0, 80, 80);
/// assert_eq!(t.epsilon_time(), None);
/// t.observe(2.0, 92, 92);
/// assert_eq!(t.epsilon_time(), Some(2.0));
/// t.observe(5.0, 100, 100);
/// assert_eq!(t.consensus_time(), Some(5.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTracker {
    n: u64,
    initial_winner: Opinion,
    epsilon_threshold: u64,
    epsilon_time: Option<f64>,
    consensus_time: Option<f64>,
}

impl ConvergenceTracker {
    /// Creates a tracker for a population of `n` nodes whose initial
    /// plurality opinion is `initial_winner`, with tolerance `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]` or `n == 0`.
    pub fn new(n: u64, initial_winner: Opinion, epsilon: f64) -> Self {
        assert!(n > 0, "ConvergenceTracker: n must be positive");
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "ConvergenceTracker: epsilon must lie in [0, 1]"
        );
        let epsilon_threshold = ((1.0 - epsilon) * n as f64).ceil() as u64;
        Self {
            n,
            initial_winner,
            epsilon_threshold,
            epsilon_time: None,
            consensus_time: None,
        }
    }

    /// The initial plurality opinion being tracked.
    pub fn initial_winner(&self) -> Opinion {
        self.initial_winner
    }

    /// Records the state at `time`: `winner_support` is the support of the
    /// initial plurality opinion, `max_support` the largest support of any
    /// opinion.
    pub fn observe(&mut self, time: f64, winner_support: u64, max_support: u64) {
        if self.epsilon_time.is_none() && winner_support >= self.epsilon_threshold {
            self.epsilon_time = Some(time);
        }
        if self.consensus_time.is_none() && max_support == self.n {
            self.consensus_time = Some(time);
        }
    }

    /// First ε-convergence time, if reached.
    pub fn epsilon_time(&self) -> Option<f64> {
        self.epsilon_time
    }

    /// First full-consensus time, if reached.
    pub fn consensus_time(&self) -> Option<f64> {
        self.consensus_time
    }

    /// Whether full consensus has been observed.
    pub fn is_consensus(&self) -> bool {
        self.consensus_time.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_latches_first_crossings() {
        let mut t = ConvergenceTracker::new(10, Opinion::new(1), 0.2);
        t.observe(1.0, 7, 7);
        assert_eq!(t.epsilon_time(), None);
        t.observe(2.0, 8, 8); // 8 ≥ ceil(0.8·10)
        assert_eq!(t.epsilon_time(), Some(2.0));
        t.observe(3.0, 9, 9);
        assert_eq!(t.epsilon_time(), Some(2.0)); // latched
        assert!(!t.is_consensus());
        t.observe(4.0, 10, 10);
        assert_eq!(t.consensus_time(), Some(4.0));
    }

    #[test]
    fn consensus_on_wrong_opinion_still_counts_as_consensus() {
        // max_support reaching n means monochromatic, even if the winner
        // support is 0 — plurality_preserved() distinguishes the cases.
        let mut t = ConvergenceTracker::new(5, Opinion::new(0), 0.0);
        t.observe(1.0, 0, 5);
        assert!(t.is_consensus());
        assert_eq!(t.epsilon_time(), None);
    }

    #[test]
    fn epsilon_zero_requires_unanimity() {
        let mut t = ConvergenceTracker::new(4, Opinion::new(0), 0.0);
        t.observe(1.0, 3, 3);
        assert_eq!(t.epsilon_time(), None);
        t.observe(2.0, 4, 4);
        assert_eq!(t.epsilon_time(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        let _ = ConvergenceTracker::new(5, Opinion::new(0), 1.5);
    }

    #[test]
    fn outcome_predicates() {
        let outcome = RunOutcome {
            n: 3,
            k: 2,
            initial_winner: Opinion::new(0),
            initial_bias: 2.0,
            final_counts: OpinionCounts::from_counts(vec![3, 0]),
            epsilon_time: Some(1.0),
            consensus_time: Some(2.0),
            duration: 2.0,
            generations: vec![],
        };
        assert!(outcome.plurality_preserved());
        assert!(outcome.epsilon_converged());
        assert_eq!(outcome.winner(), Some(Opinion::new(0)));

        let lost = RunOutcome {
            final_counts: OpinionCounts::from_counts(vec![0, 3]),
            ..outcome.clone()
        };
        assert!(!lost.plurality_preserved());
    }
}
