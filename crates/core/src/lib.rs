//! # plurality-core
//!
//! Reproduction of the consensus protocols from *Positive Aging Admits Fast
//! Asynchronous Plurality Consensus* (Bankhamer, Elsässer, Kaaser, Krnc;
//! PODC 2020 / arXiv 1806.02596):
//!
//! * [`sync`] — the synchronous generation protocol (Algorithm 1,
//!   Theorem 1).
//! * [`leader`] — the asynchronous single-leader protocol in the Poisson
//!   clock model with edge latencies (Algorithms 2 and 3, Theorem 13).
//! * [`cluster`] — the fully decentralized multi-leader protocol:
//!   clustering (Theorem 27), constant-time leader broadcast (Theorem 28),
//!   and the clustered consensus phase (Algorithms 4 and 5, Theorem 26).
//!
//! Shared vocabulary lives at the crate root: [`Opinion`],
//! [`OpinionCounts`], [`InitialAssignment`], [`GenerationTable`],
//! [`RunOutcome`], [`ConvergenceTracker`].
//!
//! ## Quick start
//!
//! ```
//! use plurality_core::sync::SyncConfig;
//! use plurality_core::InitialAssignment;
//!
//! // 2000 nodes, 4 opinions, initial bias 2.0 towards opinion 0.
//! let assignment = InitialAssignment::with_bias(2_000, 4, 2.0).unwrap();
//! let result = SyncConfig::new(assignment).with_seed(1).run();
//! assert!(result.outcome.plurality_preserved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cluster;
mod genstate;
pub mod leader;
mod opinion;
mod outcome;
pub mod signalflow;
pub mod sync;

pub use genstate::GenerationTable;
pub use opinion::{InitialAssignment, Opinion, OpinionCounts};
pub use outcome::{ConvergenceTracker, GenerationBirth, RecordLevel, RunOutcome};
