//! The leader's state machine (Algorithm 3).
//!
//! The leader holds two public values: `gen`, the highest generation
//! currently allowed in the system (initially 1), and `prop`, whether nodes
//! may propagate into generation `gen` (initially false, i.e. two-choices
//! only). It never acts on a clock — it only reacts to incoming signals:
//!
//! * a **0-signal** (sent by every node at every tick) increments a counter
//!   `t`; when `t` reaches `C3·n` the two-choices window closes and
//!   propagation opens (`prop ← true`);
//! * a **gen-signal** `i` (sent by a node that promoted itself to
//!   generation `i`) increments `gen_size` when `i` equals the current
//!   highest generation; once `gen_size ≥ ⌈n/2⌉` (and the generation cap is
//!   not yet reached) the leader births the next generation: `gen += 1`,
//!   `t ← 0`, `prop ← false`.

/// A signal sent by a node to the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Sent at every tick of every node; drives the leader's tick counting.
    Zero,
    /// Sent by a node that just promoted itself to the given generation.
    Generation(u32),
}

/// Observable state changes of the leader, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeaderTransition {
    /// The two-choices window for the current generation closed
    /// (`prop ← true`).
    PropagationEnabled {
        /// The generation whose propagation phase opened.
        generation: u32,
    },
    /// A new generation was allowed (`gen ← generation`,
    /// `prop ← false`).
    GenerationAllowed {
        /// The new highest allowed generation.
        generation: u32,
    },
}

/// Fixed thresholds of the leader (derived from `n`, `C1` and the bias; see
/// [`crate::leader::LeaderConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaderParams {
    /// Number of 0-signals after a generation birth before `prop ← true`
    /// (the paper's `C3·n` with `C3 = C1(2 + log n/√n)`, Proposition 16).
    pub zero_signal_threshold: u64,
    /// Number of gen-signals for the current generation before the next one
    /// is allowed (the paper's `⌈n/2⌉`).
    pub gen_size_threshold: u64,
    /// Maximum generation ever allowed (the paper's `⌈log log_α n⌉`).
    pub generation_cap: u32,
}

/// The leader of Algorithm 3.
///
/// # Examples
///
/// ```
/// use plurality_core::leader::{LeaderParams, LeaderState, Signal};
/// let mut leader = LeaderState::new(LeaderParams {
///     zero_signal_threshold: 3,
///     gen_size_threshold: 2,
///     generation_cap: 5,
/// });
/// assert_eq!(leader.generation(), 1);
/// assert!(!leader.propagation());
/// for _ in 0..3 {
///     leader.on_signal(Signal::Zero);
/// }
/// assert!(leader.propagation()); // two-choices window closed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderState {
    generation: u32,
    propagation: bool,
    zero_count: u64,
    gen_size: u64,
    params: LeaderParams,
}

impl LeaderState {
    /// Creates a leader in its initial state (`gen = 1`, `prop = false`).
    ///
    /// # Panics
    ///
    /// Panics if any threshold is zero.
    pub fn new(params: LeaderParams) -> Self {
        assert!(
            params.zero_signal_threshold > 0,
            "zero_signal_threshold must be positive"
        );
        assert!(
            params.gen_size_threshold > 0,
            "gen_size_threshold must be positive"
        );
        assert!(params.generation_cap >= 1, "generation_cap must be ≥ 1");
        Self {
            generation: 1,
            propagation: false,
            zero_count: 0,
            gen_size: 0,
            params,
        }
    }

    /// The highest generation currently allowed.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Whether propagation into the highest generation is allowed.
    pub fn propagation(&self) -> bool {
        self.propagation
    }

    /// The number of 0-signals counted since the last generation birth.
    pub fn zero_count(&self) -> u64 {
        self.zero_count
    }

    /// The number of promotions into the current generation seen so far.
    pub fn gen_size(&self) -> u64 {
        self.gen_size
    }

    /// The configured thresholds.
    pub fn params(&self) -> LeaderParams {
        self.params
    }

    /// Whether the leader can never transition again: the generation cap
    /// is reached *and* propagation for it is open. From here a 0-signal
    /// only bumps a counter that is never read again (it is reset before
    /// the next threshold comparison could matter, and no birth can reset
    /// it), and a gen-signal cannot advance past the cap — so signals sent
    /// to a terminal leader are unobservable, and the engine stops
    /// scheduling them.
    pub fn is_terminal(&self) -> bool {
        self.generation >= self.params.generation_cap && self.propagation
    }

    /// Handles one incoming signal; returns the transition it caused, if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if a gen-signal exceeds the currently allowed generation
    /// (impossible in a correct execution: nodes can never outrun the
    /// leader).
    pub fn on_signal(&mut self, signal: Signal) -> Option<LeaderTransition> {
        match signal {
            Signal::Zero => {
                self.zero_count += 1;
                if !self.propagation && self.zero_count >= self.params.zero_signal_threshold {
                    self.propagation = true;
                    return Some(LeaderTransition::PropagationEnabled {
                        generation: self.generation,
                    });
                }
                None
            }
            Signal::Generation(i) => {
                assert!(
                    i <= self.generation,
                    "gen-signal {i} exceeds allowed generation {}",
                    self.generation
                );
                if i == self.generation {
                    self.gen_size += 1;
                    if self.gen_size >= self.params.gen_size_threshold
                        && self.generation < self.params.generation_cap
                    {
                        self.generation += 1;
                        self.zero_count = 0;
                        self.gen_size = 0;
                        self.propagation = false;
                        return Some(LeaderTransition::GenerationAllowed {
                            generation: self.generation,
                        });
                    }
                }
                None
            }
        }
    }

    /// Equivalent to `count` successive `on_signal(Signal::Zero)` calls,
    /// in O(1): at most one transition (the propagation opening) can fire
    /// per generation window, so batching loses nothing. The engines'
    /// displaced-Poisson fast path counts whole windows of 0-signals at
    /// once (see `signalflow`), landing exactly on the threshold.
    pub fn on_zero_batch(&mut self, count: u64) -> Option<LeaderTransition> {
        self.zero_count += count;
        if !self.propagation && self.zero_count >= self.params.zero_signal_threshold {
            self.propagation = true;
            return Some(LeaderTransition::PropagationEnabled {
                generation: self.generation,
            });
        }
        None
    }

    /// Equivalent to `count` successive `on_signal(Signal::Generation(i))`
    /// calls, in O(1). At most one transition can result: if the batch
    /// crosses the gen-size threshold the generation is born immediately
    /// and the remaining signals of the batch — now addressed to the
    /// *previous* generation — are stale and ignored, exactly as they
    /// would be one at a time. The aggregate (`-mf`) leader engine counts
    /// whole pools of promotions per step through this path.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the currently allowed generation.
    pub fn on_generation_batch(&mut self, i: u32, count: u64) -> Option<LeaderTransition> {
        assert!(
            i <= self.generation,
            "gen-signal {i} exceeds allowed generation {}",
            self.generation
        );
        if i != self.generation || count == 0 {
            return None;
        }
        self.gen_size += count;
        if self.gen_size >= self.params.gen_size_threshold
            && self.generation < self.params.generation_cap
        {
            self.generation += 1;
            self.zero_count = 0;
            self.gen_size = 0;
            self.propagation = false;
            return Some(LeaderTransition::GenerationAllowed {
                generation: self.generation,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> LeaderParams {
        LeaderParams {
            zero_signal_threshold: 5,
            gen_size_threshold: 3,
            generation_cap: 3,
        }
    }

    #[test]
    fn initial_state() {
        let leader = LeaderState::new(params());
        assert_eq!(leader.generation(), 1);
        assert!(!leader.propagation());
        assert_eq!(leader.zero_count(), 0);
        assert_eq!(leader.gen_size(), 0);
    }

    #[test]
    fn zero_signals_open_propagation_once() {
        let mut leader = LeaderState::new(params());
        for i in 0..4 {
            assert_eq!(leader.on_signal(Signal::Zero), None, "at signal {i}");
        }
        assert_eq!(
            leader.on_signal(Signal::Zero),
            Some(LeaderTransition::PropagationEnabled { generation: 1 })
        );
        // Further zero signals do nothing.
        assert_eq!(leader.on_signal(Signal::Zero), None);
        assert!(leader.propagation());
    }

    #[test]
    fn gen_signals_birth_next_generation() {
        let mut leader = LeaderState::new(params());
        assert_eq!(leader.on_signal(Signal::Generation(1)), None);
        assert_eq!(leader.on_signal(Signal::Generation(1)), None);
        let t = leader.on_signal(Signal::Generation(1));
        assert_eq!(
            t,
            Some(LeaderTransition::GenerationAllowed { generation: 2 })
        );
        assert_eq!(leader.generation(), 2);
        assert!(!leader.propagation());
        assert_eq!(leader.zero_count(), 0);
        assert_eq!(leader.gen_size(), 0);
    }

    #[test]
    fn stale_gen_signals_are_ignored() {
        let mut leader = LeaderState::new(params());
        for _ in 0..3 {
            leader.on_signal(Signal::Generation(1));
        }
        assert_eq!(leader.generation(), 2);
        // Signals for the old generation no longer count.
        for _ in 0..10 {
            assert_eq!(leader.on_signal(Signal::Generation(1)), None);
        }
        assert_eq!(leader.generation(), 2);
        assert_eq!(leader.gen_size(), 0);
    }

    #[test]
    fn generation_cap_is_respected() {
        let mut leader = LeaderState::new(params());
        for gen in 1..3u32 {
            for _ in 0..3 {
                leader.on_signal(Signal::Generation(gen));
            }
        }
        assert_eq!(leader.generation(), 3); // cap reached
        for _ in 0..10 {
            leader.on_signal(Signal::Generation(3));
        }
        assert_eq!(leader.generation(), 3, "cap exceeded");
    }

    #[test]
    fn generation_birth_resets_zero_counter() {
        let mut leader = LeaderState::new(params());
        for _ in 0..5 {
            leader.on_signal(Signal::Zero);
        }
        assert!(leader.propagation());
        for _ in 0..3 {
            leader.on_signal(Signal::Generation(1));
        }
        assert!(!leader.propagation(), "prop must reset on birth");
        assert_eq!(leader.zero_count(), 0);
        // Needs the full window again.
        for _ in 0..4 {
            leader.on_signal(Signal::Zero);
        }
        assert!(!leader.propagation());
        leader.on_signal(Signal::Zero);
        assert!(leader.propagation());
    }

    #[test]
    fn terminal_state_is_absorbing() {
        let mut leader = LeaderState::new(params());
        assert!(!leader.is_terminal());
        // Advance to the cap.
        for gen in 1..3u32 {
            for _ in 0..3 {
                leader.on_signal(Signal::Generation(gen));
            }
        }
        assert_eq!(leader.generation(), 3);
        assert!(!leader.is_terminal(), "propagation still closed");
        for _ in 0..5 {
            leader.on_signal(Signal::Zero);
        }
        assert!(leader.is_terminal());
        // No signal can cause a transition any more.
        for _ in 0..20 {
            assert_eq!(leader.on_signal(Signal::Zero), None);
            assert_eq!(leader.on_signal(Signal::Generation(3)), None);
        }
        assert!(leader.is_terminal());
    }

    #[test]
    fn zero_batch_matches_iterated_signals() {
        let mut batched = LeaderState::new(params());
        let mut iterated = LeaderState::new(params());
        for count in [2u64, 2, 3, 10] {
            let b = batched.on_zero_batch(count);
            let mut i = None;
            for _ in 0..count {
                i = iterated.on_signal(Signal::Zero).or(i);
            }
            assert_eq!(b, i);
            assert_eq!(batched, iterated);
        }
        // A birth resets the window for both.
        for _ in 0..3 {
            batched.on_signal(Signal::Generation(1));
            iterated.on_signal(Signal::Generation(1));
        }
        assert_eq!(
            batched.on_zero_batch(5),
            Some(LeaderTransition::PropagationEnabled { generation: 2 })
        );
        assert_eq!(batched.zero_count(), 5);
    }

    #[test]
    fn generation_batch_matches_iterated_signals() {
        let mut batched = LeaderState::new(params());
        let mut iterated = LeaderState::new(params());
        // Crossing the threshold mid-batch births the generation and
        // silently drops the now-stale tail of the batch.
        let b = batched.on_generation_batch(1, 7);
        let mut i = None;
        for _ in 0..7 {
            // Iterated signals beyond the birth address the old
            // generation and are ignored.
            i = iterated.on_signal(Signal::Generation(1)).or(i);
        }
        assert_eq!(b, i);
        assert_eq!(batched, iterated);
        assert_eq!(batched.generation(), 2);
        assert_eq!(batched.gen_size(), 0);
        // Stale batches are no-ops.
        assert_eq!(batched.on_generation_batch(1, 100), None);
        assert_eq!(batched.gen_size(), 0);
        // Sub-threshold batches accumulate.
        assert_eq!(batched.on_generation_batch(2, 2), None);
        assert_eq!(batched.gen_size(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds allowed generation")]
    fn future_generation_batch_panics() {
        let mut leader = LeaderState::new(params());
        leader.on_generation_batch(3, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds allowed generation")]
    fn future_gen_signal_panics() {
        let mut leader = LeaderState::new(params());
        leader.on_signal(Signal::Generation(2));
    }
}
