//! Event-driven execution of the single-leader asynchronous protocol
//! (Algorithms 2 + 3) in the Poisson clock model with edge latencies.
//!
//! Every node ticks at rate 1. At each tick it fires a 0-signal towards the
//! leader (subject to one latency for travel) and — if it is not locked by a
//! previous attempt — opens channels to two uniform peers in parallel and
//! then to the leader (`T′2 = max(T2, T2) + T2`). When the channels complete
//! it reads the *current* states of the peers and the leader, applies the
//! decision rule of [`crate::leader::decide`], possibly promotes itself, and
//! notifies the leader with a gen-signal (again subject to travel latency).
//!
//! ## Hot-path structure
//!
//! Three standard discrete-event reductions keep the event queue small:
//!
//! * **Clock superposition** — the union of the population's independent
//!   Poisson clocks is itself a Poisson process whose rate is the sum of
//!   the per-node rates, with each event belonging to node `v` with
//!   probability `rate_v / Σ rate`. The engine therefore keeps *one*
//!   pending tick event per rate pool (unit-rate nodes, stragglers) and
//!   samples the ticking node uniformly inside the pool at pop time,
//!   instead of keeping `n` tick events in the heap.
//! * **Terminal-leader gating** — once the leader reaches the generation
//!   cap with propagation open it can provably never transition again
//!   ([`LeaderState::is_terminal`]), so the long full-consensus tail stops
//!   scheduling 0-/gen-signal events whose arrival would be unobservable.
//! * **Displaced-Poisson 0-signals** — on the failure-free path with
//!   exponential travel latency, the 0-signal *arrival* stream at the
//!   leader is itself an inhomogeneous Poisson process (displacement
//!   theorem), and the leader only counts arrivals against its window
//!   threshold. The engine jumps straight to each threshold-crossing
//!   time with one `Gamma(κ, 1)` draw per window (see
//!   [`crate::signalflow`]) instead of scheduling ~`n` signal events per
//!   time step. Scenario runs and non-exponential latencies keep the
//!   per-signal path, whose loss/crash modulation is per-event.
//! * **Tick thinning** — on the jump-chain fast path (no scenario, no
//!   stragglers) a tick on a *locked* node does nothing at all: the
//!   0-signal stream is carried by `zero_flow` and the interaction gate
//!   fails. The engine therefore simulates only the unlocked sub-stream:
//!   by Poisson splitting, ticks of the `u` unlocked nodes form a Poisson
//!   process of rate `u` with uniform marks over the unlocked set,
//!   redrawable (memorylessness) whenever `u` changes. The suppressed
//!   locked-node ticks only feed the `ticks` telemetry counter, whose
//!   total is `Poisson(∫ locked(t) dt)` — accrued piecewise and drawn
//!   once at run end, exact in distribution.

use crate::genstate::GenerationTable;
use crate::leader::node::{apply, decide, NodeDecision, NodeState, SampleView};
use crate::leader::state::{LeaderParams, LeaderState, LeaderTransition, Signal};
use crate::opinion::InitialAssignment;
use crate::outcome::{ConvergenceTracker, GenerationBirth, RecordLevel, RunOutcome};
use crate::signalflow::SignalFlow;
use crate::sync::{generations_needed, GENERATION_CAP};
use plurality_dist::rng::{derive_seed, Xoshiro256PlusPlus};
use plurality_dist::{sample_poisson, unit_exp, ChannelPattern, Latency, WaitingTime};
use plurality_obs::{EngineProfile, TraceEvent, TraceKind, Tracer};
use plurality_scenario::{Effect, Environment, Scenario};
use plurality_sim::{EventQueue, PoissonClock, Series};
use plurality_topology::{Topology, TOPOLOGY_STREAM};
use rand::Rng;

/// Seed-stream tag for the straggler-identity permutation used on
/// sparse topologies (private, like [`TOPOLOGY_STREAM`], so it never
/// perturbs the process stream).
const STRAGGLER_STREAM: u64 = 0x5752_A661;

/// Configuration for a single-leader asynchronous run. Construct with
/// [`LeaderConfig::new`] and chain the `with_*` setters — or run
/// through the unified facade (`plurality-api`'s `LeaderEngine`, spec
/// name `"leader"`), which consumes the byte-identical RNG stream.
///
/// # Examples
///
/// ```
/// use plurality_core::leader::LeaderConfig;
/// use plurality_core::InitialAssignment;
/// use plurality_dist::Latency;
///
/// let assignment = InitialAssignment::with_bias(1_500, 2, 3.0).unwrap();
/// let result = LeaderConfig::new(assignment)
///     .with_latency(Latency::exponential(1.0).unwrap())
///     .with_seed(3)
///     .run();
/// assert!(result.outcome.epsilon_time.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderConfig {
    assignment: InitialAssignment,
    latency: Latency,
    epsilon: f64,
    seed: u64,
    record: RecordLevel,
    max_time: Option<f64>,
    steps_per_unit: Option<f64>,
    two_choices_units: f64,
    generation_cap: Option<u32>,
    alpha_hint: Option<f64>,
    gen_size_fraction: f64,
    signal_loss: f64,
    straggler_fraction: f64,
    straggler_rate: f64,
    topology: Topology,
    scenario: Scenario,
    trace: bool,
}

impl LeaderConfig {
    /// Creates a configuration with defaults: exponential latency with rate
    /// 1, `ε = 0.05`, two-choices window of 2 time units, generation-size
    /// threshold `n/2`, seed 0.
    pub fn new(assignment: InitialAssignment) -> Self {
        Self {
            assignment,
            latency: Latency::exponential(1.0).expect("rate 1 valid"),
            epsilon: 0.05,
            seed: 0,
            record: RecordLevel::Generations,
            max_time: None,
            steps_per_unit: None,
            two_choices_units: 2.0,
            generation_cap: None,
            alpha_hint: None,
            gen_size_fraction: 0.5,
            signal_loss: 0.0,
            straggler_fraction: 0.0,
            straggler_rate: 1.0,
            topology: Topology::Complete,
            scenario: Scenario::new(),
            trace: false,
        }
    }

    /// Enables structured run tracing (default off). The tracer consumes
    /// no process RNG and reads no clock: a traced run produces the
    /// byte-identical [`LeaderResult::outcome`] of an untraced one, plus
    /// the event log in [`LeaderResult::trace`].
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a time-scripted environment (default: the empty
    /// scenario, the paper's failure-free static model). Event times are
    /// in time *steps* (the event clock). Crashed nodes tick inertly —
    /// no 0-signal, no interaction — and interactions whose initiator or
    /// sampled peers are crashed at channel completion abort.
    /// `burst-loss` drops each 0-/gen-signal and each peer channel
    /// independently (composing with
    /// [`LeaderConfig::with_signal_loss`]); `latency:` shifts multiply
    /// every drawn travel and channel latency; `rewire:` swaps the peer
    /// sampler mid-run. Scenario randomness lives on a private stream,
    /// so the empty scenario consumes the byte-identical process RNG
    /// stream as before the subsystem existed.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the communication topology for the *peer-sampling* step
    /// (default [`Topology::Complete`], the paper's model): the two
    /// parallel channels a ticking node opens go to uniform neighbors on
    /// the given graph (isolated nodes sample themselves). The 0-/gen-
    /// signals towards the leader model a dedicated control channel and
    /// stay direct, exactly as in Algorithms 2 + 3. Random graph
    /// families are rebuilt per run from `derive_seed(seed,
    /// TOPOLOGY_STREAM)`.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Failure injection: drops each 0-/gen-signal towards the leader
    /// independently with probability `loss` (default 0). The protocol
    /// tolerates moderate loss — the `n/2` gen-size threshold still fires
    /// as long as more than half the promotion signals get through — and
    /// stalls gracefully beyond that.
    ///
    /// # Panics
    ///
    /// Panics if `loss ∉ [0, 1]`.
    pub fn with_signal_loss(mut self, loss: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss),
            "signal_loss must lie in [0, 1]"
        );
        self.signal_loss = loss;
        self
    }

    /// Failure injection: makes a `fraction` of the nodes tick at `rate`
    /// instead of rate 1 (default: none). Models stragglers with slow
    /// clocks; the model's whp. statements assume unit rate, so this knob
    /// probes how much heterogeneity the protocol absorbs.
    ///
    /// Composes with [`LeaderConfig::with_topology`]: the straggler set
    /// is a uniformly random subset of the nodes in either case (on a
    /// sparse graph the identities are drawn from a private seeded
    /// permutation, so graph structure — hubs, lattice patches — does
    /// not leak into which nodes are slow).
    ///
    /// # Panics
    ///
    /// Panics if `fraction ∉ [0, 1]` or `rate` is not positive and finite.
    pub fn with_stragglers(mut self, fraction: f64, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "straggler_fraction must lie in [0, 1]"
        );
        assert!(
            rate > 0.0 && rate.is_finite(),
            "straggler_rate must be positive and finite"
        );
        self.straggler_fraction = fraction;
        self.straggler_rate = rate;
        self
    }

    /// Sets the channel-establishment latency law (default `Exp(1)`).
    pub fn with_latency(mut self, latency: Latency) -> Self {
        self.latency = latency;
        self
    }

    /// Sets ε for ε-convergence reporting (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the telemetry level (default [`RecordLevel::Generations`]).
    pub fn with_record(mut self, record: RecordLevel) -> Self {
        self.record = record;
        self
    }

    /// Caps the simulated time in time *steps* (default: derived bound).
    ///
    /// # Panics
    ///
    /// Panics if `max_time` is not positive.
    pub fn with_max_time(mut self, max_time: f64) -> Self {
        assert!(max_time > 0.0, "max_time must be positive");
        self.max_time = Some(max_time);
        self
    }

    /// Overrides the time-unit length `C1` in steps (default: Monte-Carlo
    /// estimate of `F⁻¹(0.9)` for the configured latency).
    ///
    /// # Panics
    ///
    /// Panics if `c1` is not positive.
    pub fn with_steps_per_unit(mut self, c1: f64) -> Self {
        assert!(c1 > 0.0, "steps_per_unit must be positive");
        self.steps_per_unit = Some(c1);
        self
    }

    /// Sets the length of the two-choices window in time units (the paper's
    /// constant 2 in `C3 = C1(2 + log n/√n)`, Proposition 16).
    ///
    /// # Panics
    ///
    /// Panics if `units` is not positive.
    pub fn with_two_choices_units(mut self, units: f64) -> Self {
        assert!(units > 0.0, "two_choices_units must be positive");
        self.two_choices_units = units;
        self
    }

    /// Overrides the generation cap `⌈log log_α n⌉`.
    pub fn with_generation_cap(mut self, cap: u32) -> Self {
        self.generation_cap = Some(cap);
        self
    }

    /// Overrides the bias `α₀` used for the generation cap.
    pub fn with_alpha_hint(mut self, alpha: f64) -> Self {
        self.alpha_hint = Some(alpha);
        self
    }

    /// Sets the gen-size threshold as a fraction of `n` (default 1/2).
    ///
    /// # Panics
    ///
    /// Panics if `fraction ∉ (0, 1]`.
    pub fn with_gen_size_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "gen_size_fraction must lie in (0, 1]"
        );
        self.gen_size_fraction = fraction;
        self
    }

    /// Runs the protocol.
    ///
    /// # Panics
    ///
    /// Panics if the assignment materializes fewer than 2 nodes, or if
    /// the configured topology cannot be built for that population size
    /// (see [`Topology::build`]).
    pub fn run(&self) -> LeaderResult {
        run_leader(self)
    }
}

/// Per-generation phase telemetry of the leader (Figure 2's `t̂` marks in
/// the single-leader setting; used by experiments E5–E7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationPhase {
    /// The generation.
    pub generation: u32,
    /// When the leader allowed this generation (`gen ← generation`).
    pub allowed_at: f64,
    /// When a node first promoted itself into it.
    pub first_promotion_at: Option<f64>,
    /// When the leader opened propagation for it.
    pub propagation_at: Option<f64>,
}

/// Result of a single-leader asynchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderResult {
    /// Common outcome report. Generation `bias` fields are measured when the
    /// propagation window opens (the paper's `α_{i, t_i + t′}`, Lemma 22).
    pub outcome: RunOutcome,
    /// The time-unit length `C1` (steps) used to derive leader thresholds.
    pub steps_per_unit: f64,
    /// Per-generation leader phase telemetry.
    pub phases: Vec<GenerationPhase>,
    /// Total clock ticks processed.
    pub ticks: u64,
    /// Ticks that initiated an interaction (node not locked).
    pub good_ticks: u64,
    /// Number of promotions via the two-choices rule.
    pub two_choices_promotions: u64,
    /// Number of adoptions via propagation.
    pub propagation_promotions: u64,
    /// Winner-fraction time series (only at [`RecordLevel::Full`]).
    pub winner_fraction: Option<Series>,
    /// Per-node `(generation, color)` at run end (only at
    /// [`RecordLevel::Full`]); lets the plurality-check model checker
    /// cross-validate that a recorded engine run ends inside the
    /// exhaustively explored reachable set.
    pub final_node_states: Option<Vec<(u32, u32)>>,
    /// Structured trace events, sorted by time (only when
    /// [`LeaderConfig::with_trace`] was enabled).
    pub trace: Option<Vec<TraceEvent>>,
    /// Deterministic profiling counters (always collected; pure
    /// arithmetic, no RNG).
    pub profile: EngineProfile,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    OpComplete {
        v: u32,
        a: u32,
        b: u32,
        /// The initiator's slot epoch at scheduling time; a join-churn
        /// event bumps the slot's epoch, voiding in-flight interactions
        /// of the node the joiner replaced.
        epoch: u32,
    },
    LeaderSignal(Signal),
}

fn run_leader(cfg: &LeaderConfig) -> LeaderResult {
    let mut rng = Xoshiro256PlusPlus::from_u64(cfg.seed);
    let opinions = cfg.assignment.materialize(&mut rng);
    let n = opinions.len();
    assert!(n >= 2, "single-leader run needs at least 2 nodes");
    let k = cfg.assignment.k() as usize;

    // Built from a private RNG stream; complete-graph runs consume no
    // topology randomness and keep the historical process stream intact.
    let mut sampler = cfg
        .topology
        .build(n, derive_seed(cfg.seed, TOPOLOGY_STREAM))
        .expect("topology must be buildable for this population size");

    // `None` for the empty scenario: the zero-cost fast path, one branch
    // per event, process RNG stream untouched.
    let mut env: Option<Environment> = cfg.scenario.for_run(n, cfg.assignment.k(), cfg.seed);

    let mut cols: Vec<u32> = opinions.iter().map(|o| o.index()).collect();
    let mut gens: Vec<u32> = vec![0; n];
    let mut locked: Vec<bool> = vec![false; n];
    // Slot epochs: bumped by join churn to void the replaced node's
    // in-flight interaction (stays all-zero without a scenario).
    let mut op_epoch: Vec<u32> = vec![0; n];
    // Stored leader state; starts stale (leader starts at gen 1).
    let mut seen_gen: Vec<u32> = vec![0; n];
    let mut seen_prop: Vec<bool> = vec![false; n];

    let mut table = GenerationTable::from_states(&gens, &cols, k);
    let initial_counts = table.global_counts();
    let initial_winner = initial_counts.winner().expect("non-empty population");
    let initial_bias = initial_counts.bias().unwrap_or(f64::INFINITY);

    let waiting = WaitingTime::new(cfg.latency, ChannelPattern::SingleLeader);
    // Memoized per (latency, pattern): repetitions share one Monte-Carlo
    // estimate instead of re-running 20k composite draws each.
    let c1 = cfg
        .steps_per_unit
        .unwrap_or_else(|| waiting.time_unit_cached(20_000));

    let alpha = cfg.alpha_hint.unwrap_or(if initial_bias.is_finite() {
        initial_bias.max(1.0)
    } else {
        2.0
    });
    let cap = cfg
        .generation_cap
        .unwrap_or_else(|| generations_needed(n as u64, alpha, GENERATION_CAP));

    let nf = n as f64;
    let zero_signal_threshold =
        (nf * c1 * (cfg.two_choices_units + nf.ln() / nf.sqrt())).ceil() as u64;
    let gen_size_threshold = (nf * cfg.gen_size_fraction).ceil() as u64;
    let mut leader = LeaderState::new(LeaderParams {
        zero_signal_threshold,
        gen_size_threshold,
        generation_cap: cap,
    });

    let max_time = cfg.max_time.unwrap_or_else(|| {
        let units = (cap as f64 + 2.0) * (2.0 * (k as f64 + 2.0).log2() + 12.0);
        let derived = c1 * units + 10.0 * nf.ln() + 100.0;
        // Scripted events must actually fire: stretch the default cap
        // past the scenario horizon plus a recovery tail.
        derived.max(cfg.scenario.horizon() + 10.0 * nf.ln() + 100.0)
    });

    let mut tracker = ConvergenceTracker::new(n as u64, initial_winner, cfg.epsilon);
    tracker.observe(
        0.0,
        table.color_support(initial_winner),
        table.max_color_support(),
    );

    let mut tracer = Tracer::new(cfg.trace);
    let mut phases = Vec::with_capacity(cap as usize + 1);
    phases.push(GenerationPhase {
        generation: 1,
        allowed_at: 0.0,
        first_promotion_at: None,
        propagation_at: None,
    });
    tracer.emit(
        0.0,
        TraceKind::Phase {
            name: "generation-allowed",
            generation: 1,
            scope: 0,
        },
    );
    let mut births: Vec<GenerationBirth> = Vec::with_capacity(cap as usize + 1);
    let mut winner_series = matches!(cfg.record, RecordLevel::Full).then(|| {
        let mut s = Series::new("winner_fraction");
        s.push(0.0, initial_counts.fraction(initial_winner));
        s
    });
    let mut next_sample = 1.0f64;

    // Superposed clocks: one pending tick event per rate pool instead of
    // one per node. Pool *slots* `0..straggler_count` form the straggler
    // pool (rate `straggler_rate` each), the rest tick at unit rate.
    let straggler_count = (cfg.straggler_fraction * nf).round() as usize;
    let fast_count = n - straggler_count;
    // On the complete graph node ids are exchangeable (`materialize`
    // shuffles opinions), so slot = node id and stragglers are a uniform
    // subset — the historical behavior, preserved bitwise. On a sparse
    // topology ids carry graph structure (preferential-attachment hubs
    // sit at low ids, ring/torus ids are geometric), so the slots are
    // mapped through a seeded permutation to keep "a random fraction of
    // nodes is slow" true rather than silently slowing the hubs or one
    // contiguous patch. The permutation draws from a private stream, so
    // the process stream is untouched.
    let straggler_ids: Option<Vec<u32>> =
        (straggler_count > 0 && !sampler.is_complete()).then(|| {
            let mut ids: Vec<u32> = (0..n as u32).collect();
            let mut srng = Xoshiro256PlusPlus::from_u64(derive_seed(cfg.seed, STRAGGLER_STREAM));
            for i in (1..n).rev() {
                let j = srng.gen_range(0..=i);
                ids.swap(i, j);
            }
            ids
        });
    // Pending events at any time: ≤ n open interactions plus in-flight
    // 0-/gen-signals (≈ n·E[T1] for unit-rate ticking) — `3n` covers the
    // steady state without rehashing.
    let mut queue: EventQueue<Event> = EventQueue::with_capacity(3 * n);
    queue.set_trace(cfg.trace);
    let fast_clock = PoissonClock::new((fast_count as f64).max(1.0)).expect("positive rate");
    let straggler_clock =
        PoissonClock::new((straggler_count as f64 * cfg.straggler_rate).max(cfg.straggler_rate))
            .expect("validated rate");
    // Each rate pool has exactly one pending tick at any time, so the two
    // chains live as plain scalars compared against the queue head instead
    // of cycling through the queue — ticks are the majority event type,
    // and this removes their entire push/pop traffic. A monochromatic
    // start schedules nothing: both chains stay at infinity, the queue
    // stays empty, and the event loop below never runs.
    let mut fast_tick = f64::INFINITY;
    let mut straggler_tick = f64::INFINITY;
    if !table.is_monochromatic() {
        if fast_count > 0 {
            fast_tick = fast_clock.next_tick(0.0, &mut rng);
        }
        if straggler_count > 0 {
            straggler_tick = straggler_clock.next_tick(0.0, &mut rng);
        }
    }
    // Displaced-Poisson 0-signal stream (module docs of `signalflow`):
    // available when no scenario modulates individual signals and the
    // travel law is exponential. Persistent signal loss is independent
    // thinning, folded into the effective send rate.
    let mut zero_flow = match (&env, cfg.latency) {
        (None, Latency::Exponential { rate }) => Some(SignalFlow::new(rate)),
        _ => None,
    };
    if let Some(flow) = zero_flow.as_mut() {
        if fast_tick.is_finite() || straggler_tick.is_finite() {
            let send_rate = (fast_count as f64 + straggler_count as f64 * cfg.straggler_rate)
                * (1.0 - cfg.signal_loss);
            flow.set_rate(0.0, send_rate);
            if send_rate > 0.0 {
                flow.arm(0.0, zero_signal_threshold, &mut rng);
            }
        }
    }

    // Tick thinning (module docs): with the jump chain active and a
    // homogeneous clock pool, a locked node's tick is a no-op, so only
    // the unlocked sub-stream is simulated. `unlocked` lists the
    // currently unlocked nodes in swap-remove order; `unlocked_pos[v]`
    // is `v`'s index there (`u32::MAX` while locked). `fast_tick` then
    // runs at rate `unlocked.len()` instead of `n`.
    let thinned = zero_flow.is_some() && straggler_count == 0;
    let (mut unlocked, mut unlocked_pos): (Vec<u32>, Vec<u32>) = if thinned {
        ((0..n as u32).collect(), (0..n as u32).collect())
    } else {
        (Vec::new(), Vec::new())
    };
    // Accrued intensity of the suppressed locked-node tick stream, and
    // the time up to which it has been accrued.
    let mut tick_exposure = 0.0f64;
    let mut exposure_from = 0.0f64;

    let mut ticks = 0u64;
    let mut good_ticks = 0u64;
    let mut two_choices_promotions = 0u64;
    let mut propagation_promotions = 0u64;
    let mut window_crossings = 0u64;
    let mut thinned_ticks = 0u64;
    let mut end_time = 0.0f64;

    loop {
        // Next chain tick; the fast pool wins exact ties (probability
        // zero: the chains are independent continuous clocks).
        let (tick_time, tick_straggler) = if fast_tick <= straggler_tick {
            (fast_tick, false)
        } else {
            (straggler_tick, true)
        };
        // The jump chain's next 0-signal threshold crossing competes with
        // the tick chains for the next scheduled instant.
        let zero_cross = zero_flow.as_ref().map_or(f64::INFINITY, SignalFlow::pred);
        let forced = tick_time.min(zero_cross);
        // Queued events win exact time ties against chain ticks — a
        // probability-zero event, since tick times stay continuous even
        // under deterministic latencies.
        let popped = queue.pop_before(forced.min(max_time));
        let now = match popped {
            Some((t, _)) => t,
            None => {
                if forced > max_time {
                    // Timed out — unless nothing was ever pending (a
                    // monochromatic start), where `end_time` stays 0.
                    if forced.is_finite() {
                        end_time = max_time;
                    }
                    break;
                }
                queue.advance_to(forced);
                forced
            }
        };
        end_time = now;
        if let Some(env) = env.as_mut() {
            let effects = env.poll(now);
            if !effects.is_empty() {
                for effect in effects {
                    match effect {
                        Effect::Joined(joins) => {
                            tracer.emit(
                                now,
                                TraceKind::ScenarioEffect {
                                    name: "joined",
                                    count: joins.len() as u64,
                                },
                            );
                            for (v, c) in joins {
                                let vi = v as usize;
                                seen_gen[vi] = 0;
                                seen_prop[vi] = false;
                                // Void any interaction the replaced node
                                // still had in flight and free the slot:
                                // the fresh node starts unentangled.
                                op_epoch[vi] = op_epoch[vi].wrapping_add(1);
                                locked[vi] = false;
                                if (gens[vi], cols[vi]) != (0, c) {
                                    table.transfer(gens[vi], cols[vi], 0, c);
                                    gens[vi] = 0;
                                    cols[vi] = c;
                                }
                            }
                        }
                        Effect::Corrupt { budget, mode } => {
                            let targets = env.corruption_targets(budget, mode, &cols, k as u32);
                            tracer.emit(
                                now,
                                TraceKind::ScenarioEffect {
                                    name: "corrupt",
                                    count: targets.len() as u64,
                                },
                            );
                            for (v, c) in targets {
                                let vi = v as usize;
                                if cols[vi] != c {
                                    table.transfer(gens[vi], cols[vi], gens[vi], c);
                                    cols[vi] = c;
                                }
                            }
                        }
                        Effect::Rewired(s) => {
                            tracer.emit(
                                now,
                                TraceKind::ScenarioEffect {
                                    name: "rewired",
                                    count: 1,
                                },
                            );
                            sampler = s;
                        }
                        _ => {}
                    }
                }
                tracker.observe(
                    now,
                    table.color_support(initial_winner),
                    table.max_color_support(),
                );
                if table.is_monochromatic() {
                    break;
                }
            }
        }
        if let Some(series) = winner_series.as_mut() {
            if now >= next_sample {
                series.push(now, table.color_support(initial_winner) as f64 / nf);
                next_sample = now.floor() + 1.0;
            }
        }
        match popped {
            None if zero_cross <= tick_time => {
                // The armed 0-signal window crossed its threshold: batch
                // in the whole window's count at the solved crossing
                // time. The next window arms at the next generation
                // birth (a queued gen-signal below).
                let flow = zero_flow.as_mut().expect("crossing implies a flow");
                flow.disarm(now);
                window_crossings += 1;
                tracer.emit(now, TraceKind::WindowCrossing { scope: 0 });
                let gap = zero_signal_threshold - leader.zero_count();
                if let Some(LeaderTransition::PropagationEnabled { generation }) =
                    leader.on_zero_batch(gap)
                {
                    tracer.emit(
                        now,
                        TraceKind::Phase {
                            name: "propagation-enabled",
                            generation,
                            scope: 0,
                        },
                    );
                    if let Some(p) = phases.get_mut(generation as usize - 1) {
                        debug_assert_eq!(p.generation, generation);
                        p.propagation_at.get_or_insert(now);
                    }
                    // Lemma 22: measure the generation's bias when its
                    // propagation phase opens.
                    if let Ok(i) = births.binary_search_by_key(&generation, |b| b.generation) {
                        births[i].bias = table.bias_in(generation).unwrap_or(f64::INFINITY);
                    }
                }
            }
            None if thinned => {
                // Thinned fast path (module docs): only unlocked-node
                // ticks are simulated, so this tick opens an interaction
                // with certainty — the 0-signal stream is carried by
                // `zero_flow`, env is `None`, and the suppressed
                // locked-node ticks are settled in bulk by one
                // Poisson(exposure) draw after the loop.
                ticks += 1;
                good_ticks += 1;
                tick_exposure += (n - unlocked.len()) as f64 * (now - exposure_from);
                exposure_from = now;
                let j = rng.gen_range(0..unlocked.len());
                let v = unlocked[j];
                let vi = v as usize;
                locked[vi] = true;
                let last = unlocked.len() - 1;
                let moved = unlocked[last];
                unlocked[j] = moved;
                unlocked_pos[moved as usize] = j as u32;
                unlocked.pop();
                unlocked_pos[vi] = u32::MAX;
                fast_tick = if unlocked.is_empty() {
                    f64::INFINITY
                } else {
                    now + unit_exp(&mut rng) / unlocked.len() as f64
                };
                let a = sampler.sample(v, &mut rng);
                let b = sampler.sample(v, &mut rng);
                let phase = waiting.sample_channel_phase(&mut rng);
                let epoch = op_epoch[vi];
                queue.schedule(now + phase, Event::OpComplete { v, a, b, epoch });
            }
            None => {
                // A chain tick. The pool's next tick is redrawn *first*,
                // preserving the RNG draw order of the queued-tick
                // implementation this replaced.
                ticks += 1;
                let (lo, size) = if tick_straggler {
                    straggler_tick = straggler_clock.next_tick(now, &mut rng);
                    (0, straggler_count)
                } else {
                    fast_tick = fast_clock.next_tick(now, &mut rng);
                    (straggler_count, fast_count)
                };
                let slot = lo + rng.gen_range(0..size);
                let vi = match &straggler_ids {
                    Some(ids) => ids[slot] as usize,
                    None => slot,
                };
                let v = vi as u32;
                // A crashed node's tick is inert (Poisson thinning): no
                // 0-signal, no interaction.
                let crashed = env.as_ref().is_some_and(|e| e.is_crashed(v));
                let scale = env.as_ref().map_or(1.0, |e| e.latency_scale());
                // Line 1: the 0-signal travels one latency, without locking.
                // On the jump-chain fast path the whole stream is counted
                // by `zero_flow` instead of per-event scheduling. Skipped
                // outright once the leader is terminal (the arrival would
                // be unobservable); injected failure — the persistent
                // `signal_loss` knob or an active scenario burst — may
                // also lose the signal in transit.
                if zero_flow.is_none()
                    && !crashed
                    && !leader.is_terminal()
                    && (cfg.signal_loss == 0.0 || rng.gen::<f64>() >= cfg.signal_loss)
                    && !env.as_mut().is_some_and(|e| e.message_lost())
                {
                    let travel = cfg.latency.sample(&mut rng) * scale;
                    queue.schedule(now + travel, Event::LeaderSignal(Signal::Zero));
                }
                if !crashed && !locked[vi] {
                    good_ticks += 1;
                    locked[vi] = true;
                    let a = sampler.sample(v, &mut rng);
                    let b = sampler.sample(v, &mut rng);
                    let phase = waiting.sample_channel_phase(&mut rng) * scale;
                    let epoch = op_epoch[vi];
                    queue.schedule(now + phase, Event::OpComplete { v, a, b, epoch });
                }
            }
            Some((_, Event::OpComplete { v, a, b, epoch })) => {
                let vi = v as usize;
                if epoch != op_epoch[vi] {
                    // The initiating node was replaced by join churn
                    // while this interaction was in flight; the fresh
                    // node in the slot must not inherit it (its lock was
                    // already released at join time).
                    continue;
                }
                if let Some(env) = env.as_mut() {
                    // The interaction aborts if anyone on the line is
                    // crashed at completion time, or if either peer
                    // channel falls inside a loss burst.
                    if env.is_crashed(v)
                        || env.is_crashed(a)
                        || env.is_crashed(b)
                        || env.message_lost()
                        || env.message_lost()
                    {
                        locked[vi] = false;
                        continue;
                    }
                }
                // The node's slot and the decision/apply pair are the shared
                // transition function (`leader::node`): the plurality-check
                // model checker drives the identical functions, so the
                // checked state machine cannot drift from this engine.
                let mut slot = NodeState {
                    gen: gens[vi],
                    col: cols[vi],
                    seen_gen: seen_gen[vi],
                    seen_prop: seen_prop[vi],
                };
                let s1 = SampleView {
                    gen: gens[a as usize],
                    col: cols[a as usize],
                };
                let s2 = SampleView {
                    gen: gens[b as usize],
                    col: cols[b as usize],
                };
                let decision = decide(
                    slot.view(),
                    s1,
                    s2,
                    leader.generation(),
                    leader.propagation(),
                );
                let signal = apply(
                    &mut slot,
                    decision,
                    leader.generation(),
                    leader.propagation(),
                );
                match decision {
                    NodeDecision::Refresh => {
                        seen_gen[vi] = slot.seen_gen;
                        seen_prop[vi] = slot.seen_prop;
                    }
                    NodeDecision::Adopt {
                        gen,
                        col,
                        via_two_choices,
                    } => {
                        let (old_gen, old_col) = (gens[vi], cols[vi]);
                        let is_birth = gen > table.max_generation();
                        let parent_bias = if is_birth {
                            table.bias_in(gen - 1).unwrap_or(f64::INFINITY)
                        } else {
                            0.0
                        };
                        let parent_collision = if is_birth {
                            table.collision_in(gen - 1)
                        } else {
                            0.0
                        };
                        if (gen, col) != (old_gen, old_col) {
                            table.transfer(old_gen, old_col, gen, col);
                            gens[vi] = slot.gen;
                            cols[vi] = slot.col;
                        }
                        if via_two_choices {
                            two_choices_promotions += 1;
                        } else {
                            propagation_promotions += 1;
                        }
                        if is_birth && !matches!(cfg.record, RecordLevel::Outcome) {
                            births.push(GenerationBirth {
                                generation: gen,
                                time: now,
                                // Filled in when propagation opens (Lemma 22
                                // measures α at t_i + t′); meanwhile: current.
                                bias: f64::INFINITY,
                                parent_bias,
                                initial_fraction: table.fraction_in(gen),
                                parent_collision,
                            });
                        }
                        if is_birth {
                            tracer.emit(now, TraceKind::Birth { generation: gen });
                            // Generations are allowed in order, so phase g
                            // sits at index g − 1.
                            if let Some(p) = phases.get_mut(gen as usize - 1) {
                                debug_assert_eq!(p.generation, gen);
                                p.first_promotion_at.get_or_insert(now);
                            }
                        }
                        if let Some(sig) = signal {
                            // `apply` says the adoption increased the node's
                            // generation, so a gen-signal departs — unless the
                            // leader is provably past reacting, or loss (the
                            // persistent knob or a scenario burst) eats it.
                            if !leader.is_terminal()
                                && (cfg.signal_loss == 0.0 || rng.gen::<f64>() >= cfg.signal_loss)
                                && !env.as_mut().is_some_and(|e| e.message_lost())
                            {
                                let scale = env.as_ref().map_or(1.0, |e| e.latency_scale());
                                let travel = cfg.latency.sample(&mut rng) * scale;
                                queue.schedule(now + travel, Event::LeaderSignal(sig));
                            }
                        }
                        tracker.observe(
                            now,
                            table.color_support(initial_winner),
                            table.max_color_support(),
                        );
                        if table.is_monochromatic() {
                            locked[vi] = false;
                            break;
                        }
                    }
                    NodeDecision::Nothing => {}
                }
                if thinned {
                    // Re-admit `v` to the thinned tick stream: settle
                    // the suppressed-stream exposure, then redraw the
                    // next tick at the new rate (memorylessness).
                    tick_exposure += (n - unlocked.len()) as f64 * (now - exposure_from);
                    exposure_from = now;
                    locked[vi] = false;
                    unlocked_pos[vi] = unlocked.len() as u32;
                    unlocked.push(v);
                    fast_tick = now + unit_exp(&mut rng) / unlocked.len() as f64;
                } else {
                    locked[vi] = false;
                }
            }
            Some((_, Event::LeaderSignal(signal))) => {
                if let Some(transition) = leader.on_signal(signal) {
                    match transition {
                        LeaderTransition::PropagationEnabled { generation } => {
                            tracer.emit(
                                now,
                                TraceKind::Phase {
                                    name: "propagation-enabled",
                                    generation,
                                    scope: 0,
                                },
                            );
                            if let Some(p) = phases.get_mut(generation as usize - 1) {
                                debug_assert_eq!(p.generation, generation);
                                p.propagation_at.get_or_insert(now);
                            }
                            // Lemma 22: measure the new generation's bias at
                            // the start of its propagation phase. Births are
                            // recorded in strictly increasing generation
                            // order, so binary search applies.
                            if let Ok(i) =
                                births.binary_search_by_key(&generation, |b| b.generation)
                            {
                                births[i].bias = table.bias_in(generation).unwrap_or(f64::INFINITY);
                            }
                        }
                        LeaderTransition::GenerationAllowed { generation } => {
                            tracer.emit(
                                now,
                                TraceKind::Phase {
                                    name: "generation-allowed",
                                    generation,
                                    scope: 0,
                                },
                            );
                            phases.push(GenerationPhase {
                                generation,
                                allowed_at: now,
                                first_promotion_at: None,
                                propagation_at: None,
                            });
                            // The birth reset the 0-signal counter: arm
                            // the new generation's counting window.
                            if let Some(flow) = zero_flow.as_mut() {
                                flow.arm(now, zero_signal_threshold, &mut rng);
                            }
                            // If generation g−1 matured without its
                            // propagation window ever opening (possible for
                            // small k, where two-choices alone reaches the
                            // n/2 threshold), measure its bias now.
                            if generation >= 2 {
                                if let Ok(i) =
                                    births.binary_search_by_key(&(generation - 1), |b| b.generation)
                                {
                                    if !births[i].bias.is_finite() {
                                        births[i].bias =
                                            table.bias_in(generation - 1).unwrap_or(f64::INFINITY);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    if thinned {
        // Settle the suppressed locked-node tick stream: its count over
        // the run is Poisson with the accrued intensity (module docs).
        // A monochromatic start leaves the exposure at zero and consumes
        // no RNG, matching the empty event loop above.
        tick_exposure += (n - unlocked.len()) as f64 * (end_time - exposure_from);
        if tick_exposure > 0.0 {
            thinned_ticks = sample_poisson(tick_exposure, &mut rng);
            ticks += thinned_ticks;
        }
    }

    // Queue resizes recorded while tracing become trace events; the
    // final sort in `Tracer::finish` interleaves them on the time axis.
    tracer.extend(queue.take_resize_log().into_iter().map(|r| TraceEvent {
        time: r.at,
        kind: TraceKind::QueueResize {
            buckets: r.buckets,
            width: r.width,
        },
    }));
    let qprof = queue.profile();
    let profile = EngineProfile {
        events_popped: qprof.pops,
        signals_thinned: thinned_ticks,
        queue_resizes: qprof.resizes,
        window_crossings,
    };

    let outcome = RunOutcome {
        n: n as u64,
        k: k as u32,
        initial_winner,
        initial_bias,
        final_counts: table.global_counts(),
        epsilon_time: tracker.epsilon_time(),
        consensus_time: tracker.consensus_time(),
        duration: end_time,
        generations: births,
    };
    let final_node_states = matches!(cfg.record, RecordLevel::Full)
        .then(|| gens.iter().copied().zip(cols.iter().copied()).collect());
    LeaderResult {
        outcome,
        steps_per_unit: c1,
        phases,
        ticks,
        good_ticks,
        two_choices_promotions,
        propagation_promotions,
        winner_fraction: winner_series,
        final_node_states,
        trace: tracer.finish(),
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Opinion;

    fn quick_config(n: u64, k: u32, alpha: f64, seed: u64) -> LeaderConfig {
        let assignment = InitialAssignment::with_bias(n, k, alpha).unwrap();
        LeaderConfig::new(assignment)
            .with_seed(seed)
            .with_steps_per_unit(9.3) // skip the MC estimate in tests
    }

    #[test]
    fn converges_to_plurality_with_large_bias() {
        let result = quick_config(1_500, 2, 3.0, 1).run();
        assert!(result.outcome.epsilon_time.is_some(), "no ε-convergence");
        assert!(
            result.outcome.consensus_time.is_some(),
            "no full consensus (duration {})",
            result.outcome.duration
        );
        assert!(result.outcome.plurality_preserved());
        assert_eq!(result.outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn epsilon_no_later_than_consensus() {
        let result = quick_config(1_000, 3, 2.5, 2).run();
        let (eps, full) = (
            result.outcome.epsilon_time.unwrap(),
            result.outcome.consensus_time.unwrap(),
        );
        assert!(eps <= full, "eps {eps} > full {full}");
    }

    #[test]
    fn deterministic_per_seed() {
        let r1 = quick_config(600, 2, 2.0, 42).run();
        let r2 = quick_config(600, 2, 2.0, 42).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn two_choices_precede_propagation_per_generation() {
        let result = quick_config(2_000, 2, 2.0, 3).run();
        for p in &result.phases {
            if let (Some(first), Some(prop)) = (p.first_promotion_at, p.propagation_at) {
                assert!(
                    p.allowed_at <= first,
                    "gen {} promoted before allowed",
                    p.generation
                );
                assert!(
                    first < prop,
                    "gen {}: first promotion after propagation opened",
                    p.generation
                );
            }
        }
    }

    #[test]
    fn generations_allowed_in_order() {
        let result = quick_config(2_000, 2, 2.0, 4).run();
        for (i, p) in result.phases.iter().enumerate() {
            assert_eq!(p.generation, i as u32 + 1);
        }
        for w in result.phases.windows(2) {
            assert!(w[0].allowed_at <= w[1].allowed_at);
        }
    }

    #[test]
    fn both_promotion_mechanisms_fire() {
        let result = quick_config(2_000, 2, 2.0, 5).run();
        assert!(
            result.two_choices_promotions > 0,
            "no two-choices promotions"
        );
        assert!(
            result.propagation_promotions > 0,
            "no propagation promotions"
        );
        assert!(result.good_ticks <= result.ticks);
    }

    #[test]
    fn monochromatic_start_ends_immediately() {
        let assignment = InitialAssignment::Exact(vec![300, 0]);
        let result = LeaderConfig::new(assignment)
            .with_seed(6)
            .with_steps_per_unit(9.3)
            .run();
        assert_eq!(result.outcome.consensus_time, Some(0.0));
        assert_eq!(result.ticks, 0);
    }

    #[test]
    fn full_record_produces_series() {
        let result = quick_config(800, 2, 3.0, 7);
        let result = result.with_record(RecordLevel::Full).run();
        let series = result.winner_fraction.expect("series recorded");
        assert!(series.len() > 1);
        assert!(series.last_value().unwrap() > 0.9);
    }

    #[test]
    fn respects_max_time() {
        let assignment = InitialAssignment::with_bias(500, 2, 1.01).unwrap();
        let result = LeaderConfig::new(assignment)
            .with_seed(8)
            .with_steps_per_unit(9.3)
            .with_max_time(5.0)
            .run();
        assert!(result.outcome.duration <= 5.0 + 1e-9);
    }

    #[test]
    fn tolerates_moderate_signal_loss() {
        // 30% loss: the gen-size threshold n/2 still fires (≈ 0.7·n
        // promotion signals arrive per generation).
        let result = quick_config(1_500, 2, 3.0, 31).with_signal_loss(0.3).run();
        assert!(result.outcome.consensus_time.is_some(), "did not converge");
        assert!(result.outcome.plurality_preserved());
    }

    #[test]
    fn extreme_signal_loss_stalls_generation_progress() {
        // 90% loss: only ≈ 0.1·n gen-signals arrive, below the n/2
        // threshold — the leader can never allow generation 2.
        let result = quick_config(800, 2, 3.0, 32)
            .with_signal_loss(0.9)
            .with_max_time(120.0)
            .run();
        assert!(result.phases.len() <= 1, "generation advanced despite loss");
    }

    #[test]
    fn tolerates_straggler_clocks() {
        // 20% of nodes tick at a tenth of the rate: slower but safe.
        let fast = quick_config(1_500, 2, 3.0, 33).run();
        let slow = quick_config(1_500, 2, 3.0, 33)
            .with_stragglers(0.2, 0.1)
            .run();
        assert!(slow.outcome.plurality_preserved());
        let (f, s) = (
            fast.outcome.consensus_time.expect("fast converges"),
            slow.outcome.consensus_time.expect("slow converges"),
        );
        assert!(s > f, "stragglers should slow full consensus: {s} ≤ {f}");
    }

    #[test]
    fn explicit_complete_topology_is_bitwise_identical_to_default() {
        let default = quick_config(900, 2, 3.0, 41).run();
        let explicit = quick_config(900, 2, 3.0, 41)
            .with_topology(Topology::Complete)
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn sparse_expander_reaches_epsilon_consensus() {
        // On sparse graphs the protocol ε-converges fast, but a minority
        // pocket promoted to the top generation can never be converted
        // afterwards (no strictly higher generation exists to propagate
        // from), so *full* consensus may never come — see the E17
        // discussion in EXPERIMENTS.md. The paper's whp full-consensus
        // claim is specific to the complete graph.
        let result = quick_config(1_200, 2, 3.0, 42)
            .with_topology(Topology::Regular { d: 8 })
            .run();
        assert!(
            result.outcome.epsilon_time.is_some(),
            "no ε-convergence on the expander"
        );
        let winner_support = result.outcome.final_counts.support(crate::Opinion::new(0));
        assert!(
            winner_support as f64 >= 0.9 * 1_200.0,
            "plurality did not dominate: {winner_support}/1200"
        );
    }

    #[test]
    fn stragglers_compose_with_sparse_topology() {
        // Straggler identities on a sparse graph come from a private
        // seeded permutation: the run must stay deterministic and the
        // hubs-are-slow bias must not prevent ε-convergence.
        let mk = || {
            quick_config(1_000, 2, 3.0, 44)
                .with_topology(Topology::PreferentialAttachment { m: 4 })
                .with_stragglers(0.2, 0.2)
                .run()
        };
        let r = mk();
        assert_eq!(r, mk());
        assert!(r.outcome.epsilon_time.is_some(), "no ε-convergence");
    }

    #[test]
    fn empty_scenario_is_bitwise_identical_to_default() {
        let default = quick_config(900, 2, 3.0, 61).run();
        let explicit = quick_config(900, 2, 3.0, 61)
            .with_scenario(plurality_scenario::Scenario::new())
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn tracing_off_is_bitwise_identical_to_default() {
        let default = quick_config(900, 2, 3.0, 71).run();
        let explicit = quick_config(900, 2, 3.0, 71).with_trace(false).run();
        assert_eq!(default, explicit);
        assert!(default.trace.is_none());
    }

    #[test]
    fn tracing_on_changes_nothing_but_the_trace() {
        let plain = quick_config(900, 2, 3.0, 72).run();
        let traced = quick_config(900, 2, 3.0, 72).with_trace(true).run();
        let events = traced.trace.clone().expect("trace recorded");
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(matches!(
            events[0].kind,
            TraceKind::Phase {
                name: "generation-allowed",
                generation: 1,
                ..
            }
        ));
        // One generation-allowed phase event per recorded phase.
        let allowed = events
            .iter()
            .filter(|e| e.kind.label() == "generation-allowed")
            .count();
        assert_eq!(allowed, traced.phases.len());
        let mut untraced = traced.clone();
        untraced.trace = None;
        assert_eq!(untraced, plain, "tracing perturbed the run");
    }

    #[test]
    fn profile_counts_hot_path_traffic() {
        let r = quick_config(900, 2, 3.0, 73).run();
        assert!(r.profile.events_popped > 0, "no events popped");
        assert!(r.profile.window_crossings > 0, "jump chain never crossed");
        // Thinned ticks were settled in bulk and included in `ticks`.
        assert!(r.profile.signals_thinned <= r.ticks);
    }

    #[test]
    fn crash_then_recover_still_converges() {
        let scenario = plurality_scenario::Scenario::parse("crash:0.3@5;recover:1@30").unwrap();
        let result = quick_config(1_200, 2, 3.0, 62)
            .with_scenario(scenario)
            .run();
        assert!(result.outcome.consensus_time.is_some(), "did not converge");
        assert!(result.outcome.plurality_preserved());
    }

    #[test]
    fn burst_loss_and_latency_shift_runs_are_deterministic() {
        let mk = || {
            let scenario = plurality_scenario::Scenario::parse(
                "burst-loss:0.4@5..20;latency:3@10..40;corrupt:0.1:adaptive@25",
            )
            .unwrap();
            quick_config(800, 2, 3.0, 63).with_scenario(scenario).run()
        };
        let r = mk();
        assert_eq!(r, mk());
        assert!(r.outcome.epsilon_time.is_some(), "no ε-convergence");
    }

    #[test]
    fn scenario_composes_with_sparse_topology_and_rewire() {
        let mk = || {
            let scenario =
                plurality_scenario::Scenario::parse("rewire:er:0.02@10;crash:0.2@15;join:0.2@40")
                    .unwrap();
            quick_config(1_000, 2, 3.0, 64)
                .with_topology(Topology::Regular { d: 8 })
                .with_scenario(scenario)
                .run()
        };
        let r = mk();
        assert_eq!(r, mk());
        assert!(r.outcome.epsilon_time.is_some(), "no ε-convergence");
    }

    #[test]
    #[ignore = "tier-2: n = 30 000 sampling run; run with `cargo test -- --ignored`"]
    fn bias_grows_across_generations() {
        let result = quick_config(30_000, 2, 1.5, 9).run();
        let finite: Vec<f64> = result
            .outcome
            .generations
            .iter()
            .map(|b| b.bias)
            .take_while(|b| b.is_finite())
            .collect();
        assert!(finite.len() >= 2, "need ≥ 2 measured generations");
        for w in finite.windows(2) {
            assert!(w[1] > w[0], "bias not growing: {finite:?}");
        }
    }
}
