//! The asynchronous single-leader protocol (Section 3, Algorithms 2 + 3).
//!
//! Nodes carry unit-rate Poisson clocks; opening a channel costs a random
//! edge latency. A designated leader stores only the highest allowed
//! generation and a propagation bit, and advances them by counting incoming
//! signals. Theorem 13: for `k ≪ √n` and bias
//! `α > 1 + (k log n/√n)·log k`, all but a `1/polylog n` fraction of nodes
//! hold the plurality opinion after `O(log log_α k · log k + log log n)`
//! time whp., and all nodes after an additional `O(log n)` time.

mod engine;
mod node;
mod state;

pub use engine::{GenerationPhase, LeaderConfig, LeaderResult};
pub use node::{apply, decide, NodeDecision, NodeState, NodeView, SampleView};
pub use state::{LeaderParams, LeaderState, LeaderTransition, Signal};
