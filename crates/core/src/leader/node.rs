//! A node's decision rule (Algorithm 2, lines 5–14), as a pure function.
//!
//! When a node's three channels (two random peers, then the leader) complete,
//! it compares the leader's current `(gen, prop)` against the values it
//! stored at the previous successful communication (`l.gen`, `l.prop`). Only
//! if they coincide may it act — this guard is what separates the
//! two-choices window from the propagation window of each generation and
//! prevents the two promotion mechanisms from interleaving. On a mismatch
//! the node merely refreshes its stored copy.
//!
//! [`decide`] produces the verdict and [`apply`] writes it into a
//! [`NodeState`]; the pair is the *complete* per-node transition function.
//! The event-driven engine and the `plurality-check` model checker both
//! drive their per-node updates through these two functions, so the
//! exhaustively checked state machine cannot drift from the simulated one.

use super::state::Signal;

/// What a node sees of itself when deciding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// Own generation.
    pub gen: u32,
    /// Own color.
    pub col: u32,
    /// Leader generation stored at the last communication.
    pub seen_gen: u32,
    /// Leader propagation bit stored at the last communication.
    pub seen_prop: bool,
}

/// A node's full mutable protocol state: the per-node slot both the
/// event-driven engine and the model checker keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeState {
    /// Own generation.
    pub gen: u32,
    /// Own color.
    pub col: u32,
    /// Leader generation stored at the last communication.
    pub seen_gen: u32,
    /// Leader propagation bit stored at the last communication.
    pub seen_prop: bool,
}

impl NodeState {
    /// The decision-rule view of this state (what [`decide`] consumes).
    pub fn view(&self) -> NodeView {
        NodeView {
            gen: self.gen,
            col: self.col,
            seen_gen: self.seen_gen,
            seen_prop: self.seen_prop,
        }
    }

    /// The sample view a *peer* obtains of this node.
    pub fn sample(&self) -> SampleView {
        SampleView {
            gen: self.gen,
            col: self.col,
        }
    }
}

/// What a node sees of one sampled peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleView {
    /// Peer generation.
    pub gen: u32,
    /// Peer color.
    pub col: u32,
}

/// The action a node takes at the end of an interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeDecision {
    /// Adopt `(gen, col)`. `via_two_choices` distinguishes the two
    /// promotion mechanisms for telemetry.
    Adopt {
        /// New generation.
        gen: u32,
        /// New color.
        col: u32,
        /// Whether the two-choices rule (line 6) fired, as opposed to
        /// propagation (line 9).
        via_two_choices: bool,
    },
    /// Stored leader state was stale: update `(seen_gen, seen_prop)` to the
    /// leader's current values and do nothing else (lines 13–14).
    Refresh,
    /// In sync with the leader but no rule applies.
    Nothing,
}

/// Decides a node's action given its two samples and the leader's current
/// state (Algorithm 2, lines 5–14).
pub fn decide(
    node: NodeView,
    s1: SampleView,
    s2: SampleView,
    leader_gen: u32,
    leader_prop: bool,
) -> NodeDecision {
    // Line 5: the stored leader state must coincide with the current one.
    if node.seen_gen != leader_gen || node.seen_prop != leader_prop {
        return NodeDecision::Refresh;
    }
    // Line 6: two-choices — both samples one below the allowed generation,
    // agreeing on a color, while the two-choices window is open.
    if !leader_prop
        && leader_gen >= 1
        && s1.gen == s2.gen
        && s1.gen + 1 == leader_gen
        && s1.col == s2.col
    {
        return NodeDecision::Adopt {
            gen: leader_gen,
            col: s1.col,
            via_two_choices: true,
        };
    }
    // Line 9: propagation — adopt from a strictly higher-generation sample
    // v̄ provided gen(v̄) < gen (an older, settled generation) or prop is
    // open. Prefer the higher-generation qualifying sample.
    let mut best: Option<SampleView> = None;
    for s in [s1, s2] {
        if node.gen < s.gen && (s.gen < leader_gen || leader_prop) {
            best = match best {
                Some(b) if b.gen >= s.gen => Some(b),
                _ => Some(s),
            };
        }
    }
    if let Some(s) = best {
        return NodeDecision::Adopt {
            gen: s.gen,
            col: s.col,
            via_two_choices: false,
        };
    }
    NodeDecision::Nothing
}

/// Applies a [`decide`] verdict to the node's state (the state writes of
/// Algorithm 2, lines 7–8 / 10–11 / 13–14) and returns the gen-signal the
/// node sends to the leader, if any: `Signal::Generation(gen)` exactly when
/// the adoption *increased* the node's generation (lines 7/11's "inform the
/// leader"). Delivery concerns — travel latency, loss, skipping signals to a
/// terminal leader — belong to the caller.
pub fn apply(
    node: &mut NodeState,
    decision: NodeDecision,
    leader_gen: u32,
    leader_prop: bool,
) -> Option<Signal> {
    match decision {
        NodeDecision::Refresh => {
            node.seen_gen = leader_gen;
            node.seen_prop = leader_prop;
            None
        }
        NodeDecision::Adopt { gen, col, .. } => {
            let increased = gen > node.gen;
            node.gen = gen;
            node.col = col;
            increased.then_some(Signal::Generation(gen))
        }
        NodeDecision::Nothing => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(gen: u32, col: u32, seen_gen: u32, seen_prop: bool) -> NodeView {
        NodeView {
            gen,
            col,
            seen_gen,
            seen_prop,
        }
    }

    fn s(gen: u32, col: u32) -> SampleView {
        SampleView { gen, col }
    }

    #[test]
    fn stale_leader_state_only_refreshes() {
        // Node stored (0, false) but leader is at (1, false).
        let d = decide(node(0, 7, 0, false), s(0, 3), s(0, 3), 1, false);
        assert_eq!(d, NodeDecision::Refresh);
        // Prop bit mismatch also refreshes.
        let d = decide(node(0, 7, 1, false), s(0, 3), s(0, 3), 1, true);
        assert_eq!(d, NodeDecision::Refresh);
    }

    #[test]
    fn two_choices_promotes_to_leader_generation() {
        let d = decide(node(0, 7, 1, false), s(0, 3), s(0, 3), 1, false);
        assert_eq!(
            d,
            NodeDecision::Adopt {
                gen: 1,
                col: 3,
                via_two_choices: true
            }
        );
    }

    #[test]
    fn two_choices_requires_color_agreement() {
        let d = decide(node(0, 7, 1, false), s(0, 3), s(0, 4), 1, false);
        assert_eq!(d, NodeDecision::Nothing);
    }

    #[test]
    fn two_choices_requires_samples_one_below_leader() {
        // Samples at generation 0 while leader allows 2: no two-choices.
        let d = decide(node(0, 7, 2, false), s(0, 3), s(0, 3), 2, false);
        assert_eq!(d, NodeDecision::Nothing);
    }

    #[test]
    fn two_choices_blocked_during_propagation() {
        let d = decide(node(0, 7, 1, true), s(0, 3), s(0, 3), 1, true);
        // Propagation is open, but samples are not above the node: with
        // s.gen == 0 == node.gen nothing applies.
        assert_eq!(d, NodeDecision::Nothing);
    }

    #[test]
    fn propagation_adopts_from_higher_generation_when_open() {
        let d = decide(node(0, 7, 2, true), s(2, 3), s(0, 9), 2, true);
        assert_eq!(
            d,
            NodeDecision::Adopt {
                gen: 2,
                col: 3,
                via_two_choices: false
            }
        );
    }

    #[test]
    fn propagation_into_highest_generation_requires_prop_bit() {
        // Sample in the leader's current generation, but prop is false:
        // blocked (two-choices window still open for generation 2).
        let d = decide(node(0, 7, 2, false), s(2, 3), s(0, 9), 2, false);
        assert_eq!(d, NodeDecision::Nothing);
    }

    #[test]
    fn propagation_from_settled_generation_always_allowed() {
        // Sample in generation 1 < leader gen 2: adopt even with prop false.
        let d = decide(node(0, 7, 2, false), s(1, 3), s(0, 9), 2, false);
        assert_eq!(
            d,
            NodeDecision::Adopt {
                gen: 1,
                col: 3,
                via_two_choices: false
            }
        );
    }

    #[test]
    fn propagation_prefers_higher_generation_sample() {
        let d = decide(node(0, 7, 3, true), s(1, 4), s(2, 5), 3, true);
        assert_eq!(
            d,
            NodeDecision::Adopt {
                gen: 2,
                col: 5,
                via_two_choices: false
            }
        );
    }

    #[test]
    fn node_at_leader_generation_can_flip_color_via_two_choices() {
        // Algorithm 2 line 6 has no gen(v) guard: a node already in the
        // leader's generation re-adopts the agreed color.
        let d = decide(node(1, 7, 1, false), s(0, 3), s(0, 3), 1, false);
        assert_eq!(
            d,
            NodeDecision::Adopt {
                gen: 1,
                col: 3,
                via_two_choices: true
            }
        );
    }

    #[test]
    fn in_sync_no_rule_is_nothing() {
        let d = decide(node(2, 7, 2, true), s(0, 1), s(1, 2), 2, true);
        assert_eq!(d, NodeDecision::Nothing);
    }

    #[test]
    fn apply_refresh_updates_stored_leader_copy_only() {
        let mut st = NodeState {
            gen: 0,
            col: 7,
            seen_gen: 0,
            seen_prop: false,
        };
        let sig = apply(&mut st, NodeDecision::Refresh, 2, true);
        assert_eq!(sig, None);
        assert_eq!((st.gen, st.col), (0, 7));
        assert_eq!((st.seen_gen, st.seen_prop), (2, true));
    }

    #[test]
    fn apply_adopt_signals_exactly_on_generation_increase() {
        let mut st = NodeState {
            gen: 1,
            col: 7,
            seen_gen: 2,
            seen_prop: false,
        };
        let adopt = NodeDecision::Adopt {
            gen: 2,
            col: 3,
            via_two_choices: true,
        };
        assert_eq!(apply(&mut st, adopt, 2, false), Some(Signal::Generation(2)));
        assert_eq!((st.gen, st.col), (2, 3));
        // Same-generation re-adoption (the color flip of line 6) is silent.
        let flip = NodeDecision::Adopt {
            gen: 2,
            col: 9,
            via_two_choices: true,
        };
        assert_eq!(apply(&mut st, flip, 2, false), None);
        assert_eq!((st.gen, st.col), (2, 9));
    }

    #[test]
    fn apply_nothing_is_inert() {
        let mut st = NodeState {
            gen: 1,
            col: 7,
            seen_gen: 1,
            seen_prop: true,
        };
        let before = st;
        assert_eq!(apply(&mut st, NodeDecision::Nothing, 1, true), None);
        assert_eq!(st, before);
    }
}
