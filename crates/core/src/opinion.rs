//! Opinions, opinion-count bookkeeping, and initial assignments.
//!
//! The paper's processes start from `n` nodes holding one of `k` opinions
//! ("colors"), with a *multiplicative bias* `α = c_a / c_b` between the
//! largest and second-largest opinion. [`InitialAssignment`] constructs the
//! initial vectors used by every protocol and baseline in the workspace;
//! [`OpinionCounts`] tracks support counts and computes the bias.

use plurality_dist::{AliasTable, InvalidParameterError};
use rand::Rng;
use std::fmt;

/// An opinion (the paper's "color"), identified by a dense index in
/// `0..k`.
///
/// # Examples
///
/// ```
/// use plurality_core::Opinion;
/// let a = Opinion::new(0);
/// assert_eq!(a.index(), 0);
/// assert_eq!(a.to_string(), "opinion#0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Opinion(u32);

impl Opinion {
    /// Creates an opinion with the given index.
    pub fn new(index: u32) -> Self {
        Self(index)
    }

    /// The dense index of this opinion.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Opinion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "opinion#{}", self.0)
    }
}

impl From<u32> for Opinion {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

/// Support counts for `k` opinions over a population.
///
/// # Examples
///
/// ```
/// use plurality_core::{Opinion, OpinionCounts};
/// let counts = OpinionCounts::from_counts(vec![60, 30, 10]);
/// assert_eq!(counts.n(), 100);
/// assert_eq!(counts.winner(), Some(Opinion::new(0)));
/// assert_eq!(counts.bias(), Some(2.0)); // 60 / 30
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpinionCounts {
    counts: Vec<u64>,
}

impl OpinionCounts {
    /// Creates counts with all opinions at zero support.
    pub fn zeros(k: usize) -> Self {
        Self { counts: vec![0; k] }
    }

    /// Creates counts from an explicit vector (index = opinion).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Tallies an opinion slice.
    ///
    /// # Panics
    ///
    /// Panics if an opinion index is `≥ k`.
    pub fn tally(opinions: &[Opinion], k: usize) -> Self {
        let mut counts = vec![0u64; k];
        for &op in opinions {
            counts[op.index() as usize] += 1;
        }
        Self { counts }
    }

    /// Number of opinions `k` (including zero-support ones).
    pub fn k(&self) -> usize {
        self.counts.len()
    }

    /// Total population size.
    pub fn n(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Support of one opinion.
    ///
    /// # Panics
    ///
    /// Panics if `opinion.index() ≥ k`.
    pub fn support(&self, opinion: Opinion) -> u64 {
        self.counts[opinion.index() as usize]
    }

    /// All counts, indexed by opinion.
    pub fn as_slice(&self) -> &[u64] {
        &self.counts
    }

    /// Increments the support of `opinion` by one.
    pub fn increment(&mut self, opinion: Opinion) {
        self.counts[opinion.index() as usize] += 1;
    }

    /// Decrements the support of `opinion` by one.
    ///
    /// # Panics
    ///
    /// Panics if the support is already zero.
    pub fn decrement(&mut self, opinion: Opinion) {
        let c = &mut self.counts[opinion.index() as usize];
        assert!(*c > 0, "decrement below zero for {opinion}");
        *c -= 1;
    }

    /// The opinion with the largest support (lowest index wins ties), or
    /// `None` if the population is empty.
    pub fn winner(&self) -> Option<Opinion> {
        let (idx, &max) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))?;
        if max == 0 {
            None
        } else {
            Some(Opinion::new(idx as u32))
        }
    }

    /// The two most supported opinions with their counts:
    /// `((winner, c_a), (runner_up, c_b))`. Requires `k ≥ 2`.
    pub fn top_two(&self) -> Option<((Opinion, u64), (Opinion, u64))> {
        if self.counts.len() < 2 {
            return None;
        }
        let mut best = (0usize, 0u64);
        let mut second = (0usize, 0u64);
        let mut have_best = false;
        for (i, &c) in self.counts.iter().enumerate() {
            if !have_best || c > best.1 {
                if have_best {
                    second = best;
                }
                best = (i, c);
                have_best = true;
            } else if c > second.1 || second.0 == best.0 {
                second = (i, c);
            }
        }
        // Fix up the degenerate case where second never moved off best.
        if second.0 == best.0 {
            let mut sec = None;
            for (i, &c) in self.counts.iter().enumerate() {
                if i != best.0 && (sec.is_none() || c > self.counts[sec.unwrap()]) {
                    sec = Some(i);
                }
            }
            let i = sec?;
            second = (i, self.counts[i]);
        }
        Some((
            (Opinion::new(best.0 as u32), best.1),
            (Opinion::new(second.0 as u32), second.1),
        ))
    }

    /// The multiplicative bias `α = c_a / c_b` between the largest and
    /// second-largest opinion. Returns `None` for `k < 2` populations and
    /// `Some(f64::INFINITY)` when the runner-up has no support.
    pub fn bias(&self) -> Option<f64> {
        let ((_, ca), (_, cb)) = self.top_two()?;
        if cb == 0 {
            if ca == 0 {
                None
            } else {
                Some(f64::INFINITY)
            }
        } else {
            Some(ca as f64 / cb as f64)
        }
    }

    /// Fraction of the population holding `opinion` (0 if empty).
    pub fn fraction(&self, opinion: Opinion) -> f64 {
        let n = self.n();
        if n == 0 {
            0.0
        } else {
            self.support(opinion) as f64 / n as f64
        }
    }

    /// Whether every node holds the same opinion (vacuously false for an
    /// empty population).
    pub fn is_monochromatic(&self) -> bool {
        let n = self.n();
        n > 0 && self.counts.contains(&n)
    }

    /// The paper's collision probability
    /// `p = Σ_j (c_j / n)²` — the chance two uniformly sampled members agree.
    pub fn collision_probability(&self) -> f64 {
        let n = self.n() as f64;
        if n == 0.0 {
            return 0.0;
        }
        self.counts
            .iter()
            .map(|&c| {
                let f = c as f64 / n;
                f * f
            })
            .sum()
    }
}

/// Recipe for an initial opinion distribution.
///
/// Generation is deterministic given an RNG: counts are computed exactly,
/// then the opinion vector is shuffled so node index carries no information.
///
/// # Examples
///
/// ```
/// use plurality_core::InitialAssignment;
/// use plurality_dist::rng::Xoshiro256PlusPlus;
/// let assignment = InitialAssignment::with_bias(1_000, 5, 1.5).unwrap();
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let opinions = assignment.materialize(&mut rng);
/// assert_eq!(opinions.len(), 1_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum InitialAssignment {
    /// Exact counts, indexed by opinion.
    Exact(Vec<u64>),
    /// Every opinion near `n/k`; remainders to the lowest indices (so
    /// opinion 0 is the plurality winner with bias ≈ 1).
    Uniform {
        /// Population size.
        n: u64,
        /// Number of opinions.
        k: u32,
    },
    /// Zipf-weighted random counts with exponent `s` (heavier head for
    /// larger `s`) — a "realistic" skewed electorate.
    Zipf {
        /// Population size.
        n: u64,
        /// Number of opinions.
        k: u32,
        /// Zipf exponent.
        s: f64,
    },
}

impl InitialAssignment {
    /// The paper's canonical setup: opinion 0 has multiplicative bias
    /// `alpha ≥ 1` over every other opinion, all others equal.
    ///
    /// Counts are `c_b = ⌊n / (α + k − 1)⌋` for opinions `1..k` and the
    /// remainder for opinion 0, so the realized bias is ≥ `alpha` (up to
    /// rounding) and the total is exactly `n`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `k < 2`, `alpha < 1`, or the
    /// rounding would leave the runner-up empty.
    pub fn with_bias(n: u64, k: u32, alpha: f64) -> Result<Self, InvalidParameterError> {
        if k < 2 {
            return Err(InvalidParameterError::new(format!(
                "with_bias requires k ≥ 2, got {k}"
            )));
        }
        if !(alpha >= 1.0 && alpha.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "with_bias requires finite alpha ≥ 1, got {alpha}"
            )));
        }
        let cb = (n as f64 / (alpha + k as f64 - 1.0)).floor() as u64;
        if cb == 0 {
            return Err(InvalidParameterError::new(format!(
                "population n = {n} too small for k = {k}, alpha = {alpha}: runner-up would be empty"
            )));
        }
        let mut counts = vec![cb; k as usize];
        counts[0] = n - cb * (k as u64 - 1);
        Ok(Self::Exact(counts))
    }

    /// The related-work convention: an *additive* gap between the plurality
    /// opinion and all others, which share the remainder equally. With
    /// `gap = 0` this is the uniform assignment; the papers compared against
    /// in experiment E12 state their bias requirements in this form (e.g.
    /// `ω(√(n log n))` for the 3-state protocol).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] if `k < 2` or the gap exceeds
    /// what `n` admits (every opinion must keep non-negative support and
    /// the runner-up must be non-empty).
    pub fn with_additive_gap(n: u64, k: u32, gap: u64) -> Result<Self, InvalidParameterError> {
        if k < 2 {
            return Err(InvalidParameterError::new(format!(
                "with_additive_gap requires k ≥ 2, got {k}"
            )));
        }
        if gap >= n {
            return Err(InvalidParameterError::new(format!(
                "gap {gap} must be smaller than n = {n}"
            )));
        }
        let others = (n - gap) / k as u64;
        if others == 0 {
            return Err(InvalidParameterError::new(format!(
                "gap {gap} leaves no support for the runner-up at n = {n}, k = {k}"
            )));
        }
        let mut counts = vec![others; k as usize];
        // counts[0] − others = n − others·k ≥ gap by construction.
        counts[0] = n - others * (k as u64 - 1);
        Ok(Self::Exact(counts))
    }

    /// Population size.
    pub fn n(&self) -> u64 {
        match self {
            Self::Exact(counts) => counts.iter().sum(),
            Self::Uniform { n, .. } | Self::Zipf { n, .. } => *n,
        }
    }

    /// Number of opinions.
    pub fn k(&self) -> u32 {
        match self {
            Self::Exact(counts) => counts.len() as u32,
            Self::Uniform { k, .. } | Self::Zipf { k, .. } => *k,
        }
    }

    /// Materializes the opinion vector, shuffled with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the recipe is internally inconsistent (e.g. `k == 0` with
    /// positive `n`).
    pub fn materialize<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Opinion> {
        let mut opinions: Vec<Opinion> = match self {
            Self::Exact(counts) => {
                let mut v = Vec::with_capacity(counts.iter().sum::<u64>() as usize);
                for (idx, &c) in counts.iter().enumerate() {
                    let len = v.len() + c as usize;
                    v.resize(len, Opinion::new(idx as u32));
                }
                v
            }
            Self::Uniform { n, k } => {
                assert!(*k > 0 || *n == 0, "uniform assignment needs k ≥ 1");
                let base = n / *k as u64;
                let rem = (n % *k as u64) as usize;
                let mut v = Vec::with_capacity(*n as usize);
                for idx in 0..*k {
                    let c = base + u64::from((idx as usize) < rem);
                    let len = v.len() + c as usize;
                    v.resize(len, Opinion::new(idx));
                }
                v
            }
            Self::Zipf { n, k, s } => {
                assert!(*k > 0 || *n == 0, "zipf assignment needs k ≥ 1");
                let weights: Vec<f64> = (1..=*k).map(|rank| (rank as f64).powf(-s)).collect();
                let table = AliasTable::new(&weights).expect("valid zipf weights");
                let mut v = Vec::with_capacity(*n as usize);
                for _ in 0..*n {
                    v.push(Opinion::new(table.sample(rng) as u32));
                }
                v
            }
        };
        // Fisher–Yates shuffle so that node index is independent of opinion.
        for i in (1..opinions.len()).rev() {
            let j = rng.gen_range(0..=i);
            opinions.swap(i, j);
        }
        opinions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plurality_dist::rng::Xoshiro256PlusPlus;

    #[test]
    fn counts_tally_and_query() {
        let ops = vec![
            Opinion::new(0),
            Opinion::new(1),
            Opinion::new(0),
            Opinion::new(2),
            Opinion::new(0),
        ];
        let c = OpinionCounts::tally(&ops, 3);
        assert_eq!(c.n(), 5);
        assert_eq!(c.support(Opinion::new(0)), 3);
        assert_eq!(c.winner(), Some(Opinion::new(0)));
        assert!(!c.is_monochromatic());
        assert_eq!(c.fraction(Opinion::new(0)), 0.6);
    }

    #[test]
    fn top_two_and_bias() {
        let c = OpinionCounts::from_counts(vec![10, 40, 20, 5]);
        let ((a, ca), (b, cb)) = c.top_two().unwrap();
        assert_eq!((a, ca), (Opinion::new(1), 40));
        assert_eq!((b, cb), (Opinion::new(2), 20));
        assert_eq!(c.bias(), Some(2.0));
    }

    #[test]
    fn bias_with_zero_runner_up_is_infinite() {
        let c = OpinionCounts::from_counts(vec![10, 0, 0]);
        assert_eq!(c.bias(), Some(f64::INFINITY));
        assert!(c.is_monochromatic());
    }

    #[test]
    fn top_two_handles_ties() {
        let c = OpinionCounts::from_counts(vec![5, 5, 5]);
        let ((a, ca), (_, cb)) = c.top_two().unwrap();
        assert_eq!(ca, 5);
        assert_eq!(cb, 5);
        assert_eq!(a, Opinion::new(0)); // lowest index wins ties
        assert_eq!(c.bias(), Some(1.0));
    }

    #[test]
    fn increment_decrement_roundtrip() {
        let mut c = OpinionCounts::zeros(2);
        c.increment(Opinion::new(1));
        assert_eq!(c.support(Opinion::new(1)), 1);
        c.decrement(Opinion::new(1));
        assert_eq!(c.support(Opinion::new(1)), 0);
    }

    #[test]
    #[should_panic(expected = "decrement below zero")]
    fn decrement_below_zero_panics() {
        let mut c = OpinionCounts::zeros(2);
        c.decrement(Opinion::new(0));
    }

    #[test]
    fn collision_probability_bounds() {
        let uniform = OpinionCounts::from_counts(vec![25, 25, 25, 25]);
        assert!((uniform.collision_probability() - 0.25).abs() < 1e-12);
        let mono = OpinionCounts::from_counts(vec![100, 0]);
        assert!((mono.collision_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_bias_realizes_requested_bias() {
        let a = InitialAssignment::with_bias(10_000, 10, 2.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let ops = a.materialize(&mut rng);
        assert_eq!(ops.len(), 10_000);
        let counts = OpinionCounts::tally(&ops, 10);
        let bias = counts.bias().unwrap();
        assert!((2.0..2.2).contains(&bias), "bias {bias}");
        assert_eq!(counts.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn with_bias_rejects_bad_parameters() {
        assert!(InitialAssignment::with_bias(100, 1, 2.0).is_err());
        assert!(InitialAssignment::with_bias(100, 5, 0.5).is_err());
        assert!(InitialAssignment::with_bias(3, 5, 100.0).is_err());
    }

    #[test]
    fn with_additive_gap_realizes_requested_gap() {
        let a = InitialAssignment::with_additive_gap(10_000, 5, 500).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let counts = OpinionCounts::tally(&a.materialize(&mut rng), 5);
        let ((w, ca), (_, cb)) = counts.top_two().unwrap();
        assert_eq!(w, Opinion::new(0));
        assert!(ca - cb >= 500, "gap {} too small", ca - cb);
        assert_eq!(counts.n(), 10_000);
        // Non-plurality opinions share equally.
        for op in 1..5 {
            assert_eq!(counts.support(Opinion::new(op)), cb);
        }
    }

    #[test]
    fn with_additive_gap_zero_is_near_uniform() {
        let a = InitialAssignment::with_additive_gap(1_000, 4, 0).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let counts = OpinionCounts::tally(&a.materialize(&mut rng), 4);
        let bias = counts.bias().unwrap();
        assert!(bias < 1.05, "bias {bias}");
    }

    #[test]
    fn with_additive_gap_rejects_bad_parameters() {
        assert!(InitialAssignment::with_additive_gap(100, 1, 10).is_err());
        assert!(InitialAssignment::with_additive_gap(100, 2, 100).is_err());
        assert!(InitialAssignment::with_additive_gap(5, 8, 3).is_err());
    }

    #[test]
    fn uniform_counts_are_balanced() {
        let a = InitialAssignment::Uniform { n: 103, k: 10 };
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let counts = OpinionCounts::tally(&a.materialize(&mut rng), 10);
        for op in 0..10 {
            let c = counts.support(Opinion::new(op));
            assert!(c == 10 || c == 11, "count {c}");
        }
        assert_eq!(counts.n(), 103);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let a = InitialAssignment::Zipf {
            n: 50_000,
            k: 20,
            s: 1.2,
        };
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let counts = OpinionCounts::tally(&a.materialize(&mut rng), 20);
        assert!(counts.support(Opinion::new(0)) > counts.support(Opinion::new(10)));
    }

    #[test]
    fn materialize_is_deterministic_per_seed() {
        let a = InitialAssignment::with_bias(1_000, 4, 1.3).unwrap();
        let v1 = a.materialize(&mut Xoshiro256PlusPlus::from_u64(9));
        let v2 = a.materialize(&mut Xoshiro256PlusPlus::from_u64(9));
        assert_eq!(v1, v2);
        let v3 = a.materialize(&mut Xoshiro256PlusPlus::from_u64(10));
        assert_ne!(v1, v3);
    }
}
