//! The synchronous generation-based plurality consensus protocol
//! (Section 2, Algorithm 1).
//!
//! Nodes proceed through *generations*; a predefined schedule `{t_i}` of
//! two-choices rounds creates a new generation whenever the previous one has
//! grown to a `γ` fraction of the population, squaring the bias between the
//! top two opinions each time (Lemma 4). All other rounds are propagation
//! (pull) rounds. Theorem 1: convergence to the initial plurality opinion in
//! `O(log k · log log_α k + log log n)` rounds whp.

mod process;
mod schedule;
mod urn;

pub use process::{step_node, ScheduleMode, SyncConfig, SyncResult};
pub use schedule::{generations_needed, lifecycle_length, Schedule, GENERATION_CAP};
pub use urn::{UrnConfig, UrnResult};
