//! The synchronous generation protocol (Algorithm 1).
//!
//! Rounds are simultaneous: every node samples two uniform nodes and updates
//! against the *previous* round's state. At scheduled two-choices rounds
//! `{t_i}` a node that sees two same-generation, same-color samples at least
//! as high as itself promotes to the next generation; at every round, a node
//! seeing a strictly higher-generation sample adopts its generation and
//! color (the propagation / pull-voting step).

use crate::genstate::GenerationTable;
use crate::opinion::InitialAssignment;
use crate::outcome::{ConvergenceTracker, GenerationBirth, RecordLevel, RunOutcome};
use crate::sync::schedule::{generations_needed, lifecycle_length, Schedule, GENERATION_CAP};
use plurality_dist::rng::{derive_seed, Xoshiro256PlusPlus};
use plurality_obs::{TraceEvent, TraceKind, Tracer};
use plurality_scenario::{Effect, Environment, Scenario};
use plurality_sim::Series;
use plurality_topology::{Topology, TOPOLOGY_STREAM};

/// How two-choices rounds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleMode {
    /// The paper's predefined `{t_i}` computed from `(n, k, α, γ)`
    /// (Section 2.2). Requires the initial bias to be known (or hinted).
    #[default]
    Predefined,
    /// Ablation (E15): trigger a two-choices round whenever the newest
    /// generation holds at least a `γ` fraction of nodes — the synchronous
    /// analogue of what the asynchronous leader does by counting signals.
    Adaptive,
}

/// Configuration for a synchronous run. Construct with
/// [`SyncConfig::new`] and chain the `with_*` setters — or run through
/// the unified facade (`plurality-api`'s `SyncEngine`, spec name
/// `"sync"`), which consumes the byte-identical RNG stream.
///
/// # Examples
///
/// ```
/// use plurality_core::sync::{ScheduleMode, SyncConfig};
/// use plurality_core::InitialAssignment;
/// let assignment = InitialAssignment::with_bias(2_000, 4, 2.0).unwrap();
/// let result = SyncConfig::new(assignment)
///     .with_seed(7)
///     .with_mode(ScheduleMode::Adaptive)
///     .run();
/// assert!(result.outcome.consensus_time.is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyncConfig {
    assignment: InitialAssignment,
    gamma: f64,
    mode: ScheduleMode,
    epsilon: f64,
    seed: u64,
    record: RecordLevel,
    max_rounds: Option<u64>,
    alpha_hint: Option<f64>,
    max_generations: Option<u32>,
    topology: Topology,
    scenario: Scenario,
    trace: bool,
}

impl SyncConfig {
    /// Creates a configuration with the paper's defaults: `γ = 1/2`,
    /// predefined schedule, `ε = 0.05`, seed 0.
    pub fn new(assignment: InitialAssignment) -> Self {
        Self {
            assignment,
            gamma: 0.5,
            mode: ScheduleMode::Predefined,
            epsilon: 0.05,
            seed: 0,
            record: RecordLevel::Generations,
            max_rounds: None,
            alpha_hint: None,
            max_generations: None,
            topology: Topology::Complete,
            scenario: Scenario::new(),
            trace: false,
        }
    }

    /// Enables structured run tracing (default off). The tracer consumes
    /// no process RNG: a traced run produces the byte-identical
    /// [`SyncResult::outcome`] of an untraced one, plus the event log in
    /// [`SyncResult::trace`].
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a time-scripted environment (default: the empty
    /// scenario, the paper's failure-free static model). Event times are
    /// in *rounds*; an event at time `t` takes effect just before the
    /// updates of the first round ≥ `t`. Crashed nodes freeze and
    /// interactions that sample them (or lose a channel during a
    /// `burst-loss` window) abort without a state change; `latency:`
    /// shifts are no-ops in this round-based engine. All scenario
    /// randomness comes from a private stream
    /// (`plurality_scenario::SCENARIO_STREAM`), so the empty scenario
    /// consumes the byte-identical process RNG stream as before the
    /// subsystem existed.
    ///
    /// # Examples
    ///
    /// ```
    /// use plurality_core::sync::SyncConfig;
    /// use plurality_core::InitialAssignment;
    /// use plurality_scenario::Scenario;
    ///
    /// let assignment = InitialAssignment::with_bias(2_000, 3, 3.0).unwrap();
    /// let scenario = Scenario::parse("crash:0.3@2;recover:0.3@6").unwrap();
    /// let result = SyncConfig::new(assignment)
    ///     .with_scenario(scenario)
    ///     .with_seed(5)
    ///     .run();
    /// assert!(result.outcome.plurality_preserved());
    /// ```
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Sets the communication topology (default [`Topology::Complete`],
    /// the paper's model). Both per-round samples of every node are
    /// drawn as uniform neighbors on the given graph; isolated nodes
    /// sample themselves. The graph of a random family is rebuilt per
    /// run from `derive_seed(seed, TOPOLOGY_STREAM)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use plurality_core::sync::SyncConfig;
    /// use plurality_core::InitialAssignment;
    /// use plurality_topology::Topology;
    ///
    /// let assignment = InitialAssignment::with_bias(1_024, 2, 3.0).unwrap();
    /// let result = SyncConfig::new(assignment)
    ///     .with_topology(Topology::Regular { d: 8 })
    ///     .with_seed(1)
    ///     .run();
    /// assert!(result.outcome.plurality_preserved());
    /// ```
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the generation-density threshold `γ ∈ (0, 1)` (default 1/2).
    ///
    /// # Panics
    ///
    /// Panics if `gamma ∉ (0, 1)`.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0, 1)");
        self.gamma = gamma;
        self
    }

    /// Sets the schedule mode (default [`ScheduleMode::Predefined`]).
    pub fn with_mode(mut self, mode: ScheduleMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the ε used for ε-convergence reporting (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed (default 0). Runs are pure functions of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the telemetry level (default [`RecordLevel::Generations`]).
    pub fn with_record(mut self, record: RecordLevel) -> Self {
        self.record = record;
        self
    }

    /// Caps the number of rounds (default: derived from the schedule).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Overrides the bias `α₀` used to build the predefined schedule
    /// (default: the realized initial bias).
    pub fn with_alpha_hint(mut self, alpha: f64) -> Self {
        self.alpha_hint = Some(alpha);
        self
    }

    /// Caps the number of generations (default
    /// [`GENERATION_CAP`]).
    pub fn with_max_generations(mut self, cap: u32) -> Self {
        self.max_generations = Some(cap);
        self
    }

    /// Runs the synchronous protocol.
    ///
    /// # Panics
    ///
    /// Panics if the assignment materializes fewer than 2 nodes, or if
    /// the configured topology cannot be built for that population size
    /// (see [`Topology::build`]).
    pub fn run(&self) -> SyncResult {
        run_sync(self)
    }
}

/// Result of a synchronous run.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncResult {
    /// Common outcome report.
    pub outcome: RunOutcome,
    /// Number of rounds simulated.
    pub rounds: u64,
    /// The `G*` used.
    pub g_star: u32,
    /// The two-choices rounds actually executed.
    pub two_choices_rounds: Vec<u64>,
    /// Per-round fraction of the newest generation
    /// (only at [`RecordLevel::Full`]).
    pub newest_generation_fraction: Option<Series>,
    /// Per-round fraction of nodes holding the initial plurality opinion
    /// (only at [`RecordLevel::Full`]).
    pub winner_fraction: Option<Series>,
    /// Structured trace events, sorted by time (only when
    /// [`SyncConfig::with_trace`] was enabled).
    pub trace: Option<Vec<TraceEvent>>,
}

/// One node's update rule (Algorithm 1), as a pure function.
///
/// `(vg, vc)` is the node's generation/color; `(g1, c1)` and `(g2, c2)` are
/// the two samples; `two_choices` says whether this round is in `{t_i}`.
/// Returns the node's next `(generation, color)`.
#[inline]
pub fn step_node(
    vg: u32,
    vc: u32,
    g1: u32,
    c1: u32,
    g2: u32,
    c2: u32,
    two_choices: bool,
) -> (u32, u32) {
    // Lines 3–5: two-choices promotion.
    if two_choices && g1 == g2 && c1 == c2 && vg <= g1 {
        return (g1 + 1, c1);
    }
    // Lines 6–8: propagation from the higher-generation sample.
    let (hg, hc) = if g1 >= g2 { (g1, c1) } else { (g2, c2) };
    if hg > vg {
        (hg, hc)
    } else {
        (vg, vc)
    }
}

fn run_sync(cfg: &SyncConfig) -> SyncResult {
    let mut rng = Xoshiro256PlusPlus::from_u64(cfg.seed);
    let opinions = cfg.assignment.materialize(&mut rng);
    let n = opinions.len();
    assert!(n >= 2, "synchronous run needs at least 2 nodes");
    let k = cfg.assignment.k() as usize;

    // The topology RNG is private to the build: complete-graph runs do
    // not touch it at all, and the process stream below is unaffected
    // either way.
    let mut sampler = cfg
        .topology
        .build(n, derive_seed(cfg.seed, TOPOLOGY_STREAM))
        .expect("topology must be buildable for this population size");

    // `None` for the empty scenario: the zero-cost fast path, one branch
    // per round and per node, process RNG stream untouched.
    let mut env: Option<Environment> = cfg.scenario.for_run(n, cfg.assignment.k(), cfg.seed);

    let mut col: Vec<u32> = opinions.iter().map(|o| o.index()).collect();
    let mut gen: Vec<u32> = vec![0; n];
    let mut table = GenerationTable::from_states(&gen, &col, k);

    let initial_counts = table.global_counts();
    let initial_winner = initial_counts.winner().expect("non-empty population");
    let initial_bias = initial_counts.bias().unwrap_or(f64::INFINITY);

    let alpha_for_schedule = cfg.alpha_hint.unwrap_or(if initial_bias.is_finite() {
        initial_bias.max(1.0)
    } else {
        2.0
    });
    let cap = cfg.max_generations.unwrap_or(GENERATION_CAP);
    let g_star = generations_needed(n as u64, alpha_for_schedule, cap);
    let schedule = match cfg.mode {
        ScheduleMode::Predefined => Some(Schedule::predefined(
            n as u64,
            k as u32,
            alpha_for_schedule,
            cfg.gamma,
        )),
        ScheduleMode::Adaptive => None,
    };

    let max_rounds = cfg.max_rounds.unwrap_or_else(|| {
        let x1 = lifecycle_length(alpha_for_schedule.max(1.0 + 1e-9), k as u32, cfg.gamma, 1)
            .ceil()
            .max(1.0) as u64;
        let tail = 4 * (n as f64).log2().ceil() as u64 + 100;
        let derived = match &schedule {
            Some(s) => s.final_round() + tail,
            None => g_star as u64 * (x1 + 4) + tail,
        };
        // Scripted events must actually fire: stretch the default cap
        // past the scenario horizon plus a recovery tail.
        derived.max(cfg.scenario.horizon().ceil() as u64 + tail)
    });

    let mut tracker = ConvergenceTracker::new(n as u64, initial_winner, cfg.epsilon);
    tracker.observe(
        0.0,
        table.color_support(initial_winner),
        table.max_color_support(),
    );

    let mut births: Vec<GenerationBirth> = Vec::new();
    let mut two_choices_rounds: Vec<u64> = Vec::new();
    let mut newest_frac = matches!(cfg.record, RecordLevel::Full).then(|| {
        let mut s = Series::new("newest_generation_fraction");
        s.push(0.0, 1.0);
        s
    });
    let mut winner_frac = matches!(cfg.record, RecordLevel::Full).then(|| {
        let mut s = Series::new("winner_fraction");
        s.push(0.0, initial_counts.fraction(initial_winner));
        s
    });

    let mut new_col = col.clone();
    let mut new_gen = gen.clone();
    let mut rounds_run = 0u64;
    let mut tracer = Tracer::new(cfg.trace);

    if !table.is_monochromatic() {
        for round in 1..=max_rounds {
            rounds_run = round;
            if let Some(env) = env.as_mut() {
                for effect in env.poll(round as f64) {
                    match effect {
                        Effect::Joined(joins) => {
                            tracer.emit(
                                round as f64,
                                TraceKind::ScenarioEffect {
                                    name: "joined",
                                    count: joins.len() as u64,
                                },
                            );
                            for (v, c) in joins {
                                let vi = v as usize;
                                if (gen[vi], col[vi]) != (0, c) {
                                    table.transfer(gen[vi], col[vi], 0, c);
                                    gen[vi] = 0;
                                    col[vi] = c;
                                }
                            }
                        }
                        Effect::Corrupt { budget, mode } => {
                            let targets = env.corruption_targets(budget, mode, &col, k as u32);
                            tracer.emit(
                                round as f64,
                                TraceKind::ScenarioEffect {
                                    name: "corrupt",
                                    count: targets.len() as u64,
                                },
                            );
                            for (v, c) in targets {
                                let vi = v as usize;
                                if col[vi] != c {
                                    table.transfer(gen[vi], col[vi], gen[vi], c);
                                    col[vi] = c;
                                }
                            }
                        }
                        Effect::Rewired(s) => {
                            tracer.emit(
                                round as f64,
                                TraceKind::ScenarioEffect {
                                    name: "rewired",
                                    count: 1,
                                },
                            );
                            sampler = s;
                        }
                        _ => {}
                    }
                }
            }
            let created = table.max_generation();
            let two_choices = match &schedule {
                Some(s) => s.is_two_choices_round(round),
                None => created < g_star && table.fraction_in(created) >= cfg.gamma,
            };
            if two_choices {
                two_choices_rounds.push(round);
                tracer.emit(
                    round as f64,
                    TraceKind::Milestone {
                        name: "two-choices-round",
                        value: round as f64,
                    },
                );
            }

            // Snapshot of the would-be parent generation, just before the round.
            let parent_gen = table.max_generation();
            let parent_bias = table.bias_in(parent_gen).unwrap_or(f64::INFINITY);
            let parent_collision = table.collision_in(parent_gen);

            for v in 0..n {
                if let Some(env) = env.as_mut() {
                    // A crashed node freezes; a node whose samples hit a
                    // crashed peer or a lost channel aborts this round's
                    // interaction and keeps its state.
                    if env.is_crashed(v as u32) {
                        new_gen[v] = gen[v];
                        new_col[v] = col[v];
                        continue;
                    }
                }
                let a = sampler.sample(v as u32, &mut rng) as usize;
                let b = sampler.sample(v as u32, &mut rng) as usize;
                if let Some(env) = env.as_mut() {
                    if env.is_crashed(a as u32)
                        || env.is_crashed(b as u32)
                        || env.message_lost()
                        || env.message_lost()
                    {
                        new_gen[v] = gen[v];
                        new_col[v] = col[v];
                        continue;
                    }
                }
                let (g, c) = step_node(gen[v], col[v], gen[a], col[a], gen[b], col[b], two_choices);
                new_gen[v] = g;
                new_col[v] = c;
            }
            for v in 0..n {
                if new_gen[v] != gen[v] || new_col[v] != col[v] {
                    table.transfer(gen[v], col[v], new_gen[v], new_col[v]);
                }
            }
            std::mem::swap(&mut gen, &mut new_gen);
            std::mem::swap(&mut col, &mut new_col);

            if table.max_generation() > parent_gen {
                tracer.emit(
                    round as f64,
                    TraceKind::Birth {
                        generation: table.max_generation(),
                    },
                );
            }
            if table.max_generation() > parent_gen && !matches!(cfg.record, RecordLevel::Outcome) {
                let g = table.max_generation();
                births.push(GenerationBirth {
                    generation: g,
                    time: round as f64,
                    bias: table.bias_in(g).unwrap_or(f64::INFINITY),
                    parent_bias,
                    initial_fraction: table.fraction_in(g),
                    parent_collision,
                });
            }

            tracker.observe(
                round as f64,
                table.color_support(initial_winner),
                table.max_color_support(),
            );
            if let Some(s) = newest_frac.as_mut() {
                s.push(round as f64, table.fraction_in(table.max_generation()));
            }
            if let Some(s) = winner_frac.as_mut() {
                s.push(
                    round as f64,
                    table.color_support(initial_winner) as f64 / n as f64,
                );
            }
            if table.is_monochromatic() {
                break;
            }
        }
    }

    if let Some(t) = tracker.epsilon_time() {
        tracer.emit(
            t,
            TraceKind::Milestone {
                name: "epsilon-converged",
                value: t,
            },
        );
    }
    if let Some(t) = tracker.consensus_time() {
        tracer.emit(
            t,
            TraceKind::Milestone {
                name: "consensus",
                value: t,
            },
        );
    }
    let outcome = RunOutcome {
        n: n as u64,
        k: k as u32,
        initial_winner,
        initial_bias,
        final_counts: table.global_counts(),
        epsilon_time: tracker.epsilon_time(),
        consensus_time: tracker.consensus_time(),
        duration: rounds_run as f64,
        generations: births,
    };
    SyncResult {
        outcome,
        rounds: rounds_run,
        g_star,
        two_choices_rounds,
        newest_generation_fraction: newest_frac,
        winner_fraction: winner_frac,
        trace: tracer.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Opinion;

    #[test]
    fn step_node_two_choices_promotes() {
        // Two same-gen, same-color samples at or above v's generation.
        assert_eq!(step_node(0, 9, 0, 3, 0, 3, true), (1, 3));
        assert_eq!(step_node(2, 9, 2, 3, 2, 3, true), (3, 3));
        // v above the samples: no promotion, no propagation.
        assert_eq!(step_node(3, 9, 2, 3, 2, 3, true), (3, 9));
    }

    #[test]
    fn step_node_two_choices_requires_agreement() {
        // Different colors: falls through to propagation (no higher gen).
        assert_eq!(step_node(0, 9, 0, 3, 0, 4, true), (0, 9));
        // Different generations: propagation from the higher one.
        assert_eq!(step_node(0, 9, 2, 3, 1, 4, true), (2, 3));
    }

    #[test]
    fn step_node_propagation_only_outside_schedule() {
        // Same conditions as promotion, but not a two-choices round.
        assert_eq!(step_node(0, 9, 0, 3, 0, 3, false), (0, 9));
        // Higher-generation sample wins.
        assert_eq!(step_node(0, 9, 1, 3, 0, 5, false), (1, 3));
        assert_eq!(step_node(0, 9, 0, 5, 1, 3, false), (1, 3));
    }

    #[test]
    fn converges_to_plurality_with_large_bias() {
        let assignment = InitialAssignment::with_bias(2_000, 3, 3.0).unwrap();
        let result = SyncConfig::new(assignment).with_seed(1).run();
        assert!(result.outcome.consensus_time.is_some(), "did not converge");
        assert!(result.outcome.plurality_preserved());
        assert_eq!(result.outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn adaptive_mode_converges_too() {
        let assignment = InitialAssignment::with_bias(2_000, 3, 3.0).unwrap();
        let result = SyncConfig::new(assignment)
            .with_seed(2)
            .with_mode(ScheduleMode::Adaptive)
            .run();
        assert!(result.outcome.plurality_preserved());
        assert!(!result.two_choices_rounds.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let assignment = InitialAssignment::with_bias(500, 4, 2.0).unwrap();
        let r1 = SyncConfig::new(assignment.clone()).with_seed(42).run();
        let r2 = SyncConfig::new(assignment.clone()).with_seed(42).run();
        assert_eq!(r1, r2);
        // A different seed produces a different trajectory; generation-birth
        // telemetry carries enough precision that collisions are absurd.
        let r3 = SyncConfig::new(assignment).with_seed(43).run();
        assert_ne!(r1.outcome.generations, r3.outcome.generations);
    }

    #[test]
    fn monochromatic_start_is_instant_consensus() {
        let assignment = InitialAssignment::Exact(vec![100, 0]);
        let result = SyncConfig::new(assignment).run();
        assert_eq!(result.outcome.consensus_time, Some(0.0));
        assert_eq!(result.rounds, 0);
        assert!(result.outcome.plurality_preserved());
    }

    #[test]
    fn generation_births_are_recorded_in_order() {
        let assignment = InitialAssignment::with_bias(20_000, 4, 1.5).unwrap();
        let result = SyncConfig::new(assignment).with_seed(3).run();
        let gens: Vec<u32> = result
            .outcome
            .generations
            .iter()
            .map(|b| b.generation)
            .collect();
        assert!(!gens.is_empty());
        for (i, &g) in gens.iter().enumerate() {
            assert_eq!(g, i as u32 + 1, "births out of order: {gens:?}");
        }
        // First birth happens at round t₁ = 1.
        assert_eq!(result.outcome.generations[0].time, 1.0);
    }

    #[test]
    fn bias_grows_across_generations() {
        // The squaring dynamics (Lemma 4): later generations have higher
        // bias; the last one should exceed k by a wide margin.
        let assignment = InitialAssignment::with_bias(50_000, 4, 1.5).unwrap();
        let result = SyncConfig::new(assignment).with_seed(4).run();
        let births = &result.outcome.generations;
        assert!(births.len() >= 2);
        let finite: Vec<f64> = births
            .iter()
            .map(|b| b.bias)
            .take_while(|b| b.is_finite())
            .collect();
        for w in finite.windows(2) {
            assert!(
                w[1] > w[0] * 1.2,
                "bias did not grow: {:?}",
                births.iter().map(|b| b.bias).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn epsilon_before_full_consensus() {
        let assignment = InitialAssignment::with_bias(5_000, 3, 2.0).unwrap();
        let result = SyncConfig::new(assignment)
            .with_seed(5)
            .with_epsilon(0.1)
            .run();
        let eps = result.outcome.epsilon_time.expect("eps-converged");
        let full = result.outcome.consensus_time.expect("converged");
        assert!(eps <= full);
    }

    #[test]
    fn full_record_produces_series() {
        let assignment = InitialAssignment::with_bias(1_000, 3, 2.0).unwrap();
        let result = SyncConfig::new(assignment)
            .with_seed(6)
            .with_record(RecordLevel::Full)
            .run();
        let growth = result.newest_generation_fraction.expect("series");
        assert!(growth.len() as u64 >= result.rounds);
        let wf = result.winner_fraction.expect("series");
        assert!(wf.last_value().unwrap() > 0.99);
    }

    #[test]
    fn explicit_complete_topology_is_bitwise_identical_to_default() {
        let assignment = InitialAssignment::with_bias(1_500, 3, 2.5).unwrap();
        let default = SyncConfig::new(assignment.clone()).with_seed(21).run();
        let explicit = SyncConfig::new(assignment)
            .with_seed(21)
            .with_topology(Topology::Complete)
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn sparse_expander_converges_to_plurality() {
        let assignment = InitialAssignment::with_bias(2_048, 2, 3.0).unwrap();
        let result = SyncConfig::new(assignment)
            .with_seed(22)
            .with_topology(Topology::Regular { d: 8 })
            .run();
        assert!(result.outcome.consensus_time.is_some(), "did not converge");
        assert!(result.outcome.plurality_preserved());
    }

    #[test]
    fn sparse_runs_are_deterministic_per_seed() {
        let mk = || {
            let assignment = InitialAssignment::with_bias(600, 2, 3.0).unwrap();
            SyncConfig::new(assignment)
                .with_seed(23)
                .with_topology(Topology::ErdosRenyi { p: 0.02 })
                .run()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn bad_gamma_panics() {
        let assignment = InitialAssignment::with_bias(100, 2, 2.0).unwrap();
        let _ = SyncConfig::new(assignment).with_gamma(1.5);
    }

    #[test]
    fn empty_scenario_is_bitwise_identical_to_default() {
        // The tentpole acceptance check: attaching an explicitly empty
        // scenario must leave the process RNG stream byte-identical.
        let assignment = InitialAssignment::with_bias(1_500, 3, 2.5).unwrap();
        let default = SyncConfig::new(assignment.clone()).with_seed(51).run();
        let explicit = SyncConfig::new(assignment)
            .with_seed(51)
            .with_scenario(Scenario::new())
            .run();
        assert_eq!(default, explicit);
    }

    #[test]
    fn tracing_off_is_bitwise_identical_to_default() {
        let assignment = InitialAssignment::with_bias(1_500, 3, 2.5).unwrap();
        let default = SyncConfig::new(assignment.clone()).with_seed(57).run();
        let explicit = SyncConfig::new(assignment)
            .with_seed(57)
            .with_trace(false)
            .run();
        assert_eq!(default, explicit);
        assert!(default.trace.is_none());
    }

    #[test]
    fn tracing_on_changes_nothing_but_the_trace() {
        let assignment = InitialAssignment::with_bias(1_500, 3, 2.5).unwrap();
        let plain = SyncConfig::new(assignment.clone()).with_seed(58).run();
        let traced = SyncConfig::new(assignment)
            .with_seed(58)
            .with_trace(true)
            .run();
        let events = traced.trace.clone().expect("trace recorded");
        assert!(!events.is_empty());
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        // One birth event per recorded generation, one milestone per
        // executed two-choices round.
        let births = events
            .iter()
            .filter(|e| e.kind.category() == "birth")
            .count();
        assert_eq!(births, traced.outcome.generations.len());
        let tc = events
            .iter()
            .filter(|e| e.kind.label() == "two-choices-round")
            .count();
        assert_eq!(tc, traced.two_choices_rounds.len());
        let mut untraced = traced.clone();
        untraced.trace = None;
        assert_eq!(untraced, plain, "tracing perturbed the run");
    }

    #[test]
    fn crash_then_recover_still_converges_to_plurality() {
        let assignment = InitialAssignment::with_bias(2_000, 3, 3.0).unwrap();
        let scenario = Scenario::new().crash(0.3, 2.0).recover(1.0, 6.0);
        let result = SyncConfig::new(assignment)
            .with_seed(52)
            .with_scenario(scenario)
            .run();
        assert!(result.outcome.consensus_time.is_some(), "did not converge");
        assert!(result.outcome.plurality_preserved());
    }

    #[test]
    fn early_adaptive_corruption_perturbs_but_is_absorbed() {
        // Two 20% adaptive waves during the squaring phase visibly
        // perturb the trajectory, yet the generation machinery absorbs
        // them — the aging robustness E18 measures at scale.
        let assignment = InitialAssignment::with_bias(3_000, 2, 1.5).unwrap();
        let clean = SyncConfig::new(assignment.clone()).with_seed(53).run();
        let attacked = SyncConfig::new(assignment)
            .with_seed(53)
            .with_scenario(
                Scenario::parse("corrupt:0.2:adaptive@2;corrupt:0.2:adaptive@4").unwrap(),
            )
            .run();
        assert_ne!(clean, attacked, "corruption left the run untouched");
        assert!(attacked.outcome.plurality_preserved());
    }

    #[test]
    fn late_adaptive_corruption_costs_rounds() {
        // The same budget spent near the end of the run (round 20 of a
        // 22-round clean trajectory) must do real damage: cost rounds,
        // steal the win, or prevent consensus outright.
        let assignment = InitialAssignment::with_bias(3_000, 2, 1.5).unwrap();
        let clean = SyncConfig::new(assignment.clone()).with_seed(53).run();
        let attacked = SyncConfig::new(assignment)
            .with_seed(53)
            .with_scenario(Scenario::parse("corrupt:0.2:adaptive@20").unwrap())
            .run();
        let clean_t = clean.outcome.consensus_time.expect("clean run converges");
        let damaged = match attacked.outcome.consensus_time {
            None => true,
            Some(t) => t > clean_t || !attacked.outcome.plurality_preserved(),
        };
        assert!(
            damaged,
            "a late 20% adaptive adversary left the run untouched (clean {clean_t}, attacked {:?})",
            attacked.outcome.consensus_time
        );
    }

    #[test]
    fn join_churn_resets_generations_and_converges() {
        let assignment = InitialAssignment::with_bias(2_000, 2, 3.0).unwrap();
        let scenario = Scenario::parse("crash:0.25@1;join:0.25@3").unwrap();
        let result = SyncConfig::new(assignment)
            .with_seed(54)
            .with_scenario(scenario)
            .run();
        assert!(result.outcome.consensus_time.is_some(), "did not converge");
    }

    #[test]
    fn burst_loss_and_rewire_runs_are_deterministic_per_seed() {
        let mk = || {
            let assignment = InitialAssignment::with_bias(900, 2, 3.0).unwrap();
            SyncConfig::new(assignment)
                .with_seed(55)
                .with_scenario(
                    Scenario::parse("burst-loss:0.5@1..3;rewire:regular:8@4;rewire:complete@8")
                        .unwrap(),
                )
                .run()
        };
        let r = mk();
        assert_eq!(r, mk());
        assert!(r.outcome.consensus_time.is_some(), "did not converge");
    }

    #[test]
    fn full_crash_freezes_the_population() {
        // Everyone crashes at round 1 and never recovers: no state can
        // change, so the run must time out without converging.
        let assignment = InitialAssignment::with_bias(400, 2, 2.0).unwrap();
        let result = SyncConfig::new(assignment)
            .with_seed(56)
            .with_scenario(Scenario::new().crash(1.0, 1.0))
            .with_max_rounds(50)
            .run();
        assert_eq!(result.outcome.consensus_time, None);
        assert_eq!(result.rounds, 50);
    }
}
