//! Urn-mode (mean-field) execution of the synchronous protocol.
//!
//! The agent-based engine in [`crate::sync`] costs `O(n)` per round. For
//! concentration experiments at astronomical `n` (the paper's statements are
//! asymptotic) we exploit a symmetry: in Algorithm 1, a node's update
//! distribution depends only on its own *(generation, color)* cell and on
//! the current cell fractions — not on its identity. Conditioned on the
//! current configuration, the next counts of each cell are an exact
//! multinomial split of the cell's occupants over their common outcome
//! distribution. Sampling those multinomials (via exact sequential
//! conditioned binomials, [`plurality_dist::multinomial_split`])
//! reproduces the process law *exactly* while costing `O((G·k)²)` per
//! round — independent of `n`.
//!
//! This makes runs with `n = 10⁹` take milliseconds, which experiment E5
//! uses to check the bias-squaring chain deep into the asymptotic regime.
//!
//! **Topology.** Urn mode is definitionally mean-field: the multinomial
//! split is exact *because* nodes inside a `(generation, color)` cell are
//! exchangeable, which requires every node to sample every other node
//! with equal probability — i.e. the complete graph. On a sparse
//! topology a node's update law depends on its neighborhood, the cell
//! symmetry breaks, and no `O((G·k)²)` reduction exists; use the
//! agent-based [`crate::sync::SyncConfig::with_topology`] engine for
//! graphs. `UrnConfig` therefore deliberately has no topology knob.

use crate::opinion::OpinionCounts;
use crate::outcome::{ConvergenceTracker, GenerationBirth, RunOutcome};
use crate::sync::schedule::{generations_needed, Schedule, GENERATION_CAP};
use plurality_dist::rng::Xoshiro256PlusPlus;
use plurality_dist::{multinomial_split, InvalidParameterError};

/// Configuration for an urn-mode synchronous run. Also runnable
/// through the unified facade (`plurality-api`'s `UrnEngine`, spec name
/// `"urn"`), which enforces the mean-field exemption above as a
/// teaching error.
///
/// # Examples
///
/// ```
/// use plurality_core::sync::UrnConfig;
/// // One billion nodes, 8 opinions, bias 1.2 — impossible agent-by-agent.
/// let result = UrnConfig::new(1_000_000_000, 8, 1.2).unwrap().with_seed(1).run();
/// assert!(result.outcome.plurality_preserved());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UrnConfig {
    counts: Vec<u64>,
    gamma: f64,
    epsilon: f64,
    seed: u64,
    max_rounds: Option<u64>,
    alpha_hint: Option<f64>,
}

impl UrnConfig {
    /// Creates a configuration with the paper's canonical biased start
    /// (see [`crate::InitialAssignment::with_bias`]): opinion 0 leads by
    /// the multiplicative factor `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParameterError`] for invalid `(n, k, alpha)`
    /// combinations.
    pub fn new(n: u64, k: u32, alpha: f64) -> Result<Self, InvalidParameterError> {
        if k < 2 {
            return Err(InvalidParameterError::new(format!(
                "urn mode requires k ≥ 2, got {k}"
            )));
        }
        if !(alpha >= 1.0 && alpha.is_finite()) {
            return Err(InvalidParameterError::new(format!(
                "alpha must be finite and ≥ 1, got {alpha}"
            )));
        }
        let cb = (n as f64 / (alpha + k as f64 - 1.0)).floor() as u64;
        if cb == 0 {
            return Err(InvalidParameterError::new(format!(
                "n = {n} too small for k = {k}, alpha = {alpha}"
            )));
        }
        let mut counts = vec![cb; k as usize];
        counts[0] = n - cb * (k as u64 - 1);
        Ok(Self::from_counts(counts))
    }

    /// Creates a configuration from explicit per-opinion counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        Self {
            counts,
            gamma: 0.5,
            epsilon: 0.05,
            seed: 0,
            max_rounds: None,
            alpha_hint: None,
        }
    }

    /// Sets the generation-density threshold `γ ∈ (0, 1)` (default 1/2).
    ///
    /// # Panics
    ///
    /// Panics if `gamma ∉ (0, 1)`.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0, 1)");
        self.gamma = gamma;
        self
    }

    /// Sets ε for ε-convergence reporting (default 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ [0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must lie in [0, 1]");
        self.epsilon = epsilon;
        self
    }

    /// Sets the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of rounds.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Overrides the `α₀` used for the schedule.
    pub fn with_alpha_hint(mut self, alpha: f64) -> Self {
        self.alpha_hint = Some(alpha);
        self
    }

    /// Runs the urn-mode process.
    ///
    /// # Panics
    ///
    /// Panics if the total population is below 2.
    pub fn run(&self) -> UrnResult {
        run_urn(self)
    }
}

/// Result of an urn-mode run.
#[derive(Debug, Clone, PartialEq)]
pub struct UrnResult {
    /// Common outcome report (birth telemetry included).
    pub outcome: RunOutcome,
    /// Rounds simulated.
    pub rounds: u64,
    /// The `G*` used by the schedule.
    pub g_star: u32,
}

/// Dense cell index for `(generation, color)` with `k` colors.
#[inline]
fn cell(g: usize, c: usize, k: usize) -> usize {
    g * k + c
}

fn run_urn(cfg: &UrnConfig) -> UrnResult {
    let k = cfg.counts.len();
    let n: u64 = cfg.counts.iter().sum();
    assert!(n >= 2, "urn run needs at least 2 nodes");
    let nf = n as f64;
    let mut rng = Xoshiro256PlusPlus::from_u64(cfg.seed);

    let initial_counts = OpinionCounts::from_counts(cfg.counts.clone());
    let initial_winner = initial_counts.winner().expect("non-empty population");
    let initial_bias = initial_counts.bias().unwrap_or(f64::INFINITY);

    let alpha = cfg.alpha_hint.unwrap_or(if initial_bias.is_finite() {
        initial_bias.max(1.0)
    } else {
        2.0
    });
    let g_star = generations_needed(n, alpha, GENERATION_CAP);
    let schedule = Schedule::predefined(n, k as u32, alpha, cfg.gamma);
    let max_rounds = cfg
        .max_rounds
        .unwrap_or_else(|| schedule.final_round() + 4 * (nf.log2().ceil() as u64) + 100);

    // counts[cell(g, c)] — generations 0..=G (grown on demand).
    let mut gens: usize = 1;
    let mut counts: Vec<u64> = cfg.counts.clone();
    let mut tracker = ConvergenceTracker::new(n, initial_winner, cfg.epsilon);
    let mut births: Vec<GenerationBirth> = Vec::new();

    // Per-round cache of the global color supports. The counts vector
    // mutates exactly once per round (the multinomial split), so the
    // O(G·k) column sums are computed once per mutation and every query
    // in the round — convergence tracking, the monochromatic check, the
    // final report — reads the cache instead of re-summing.
    let refresh_color_sums = |counts: &[u64], gens: usize, sums: &mut Vec<u64>| {
        sums.clear();
        sums.resize(k, 0);
        for g in 0..gens {
            for (c, sum) in sums.iter_mut().enumerate() {
                *sum += counts[cell(g, c, k)];
            }
        }
    };
    let mut color_sums: Vec<u64> = Vec::with_capacity(k);
    refresh_color_sums(&counts, gens, &mut color_sums);

    let observe = |sums: &[u64], tracker: &mut ConvergenceTracker, t: f64| {
        let winner_support = sums[initial_winner.index() as usize];
        let max_support = sums.iter().copied().max().unwrap_or(0);
        tracker.observe(t, winner_support, max_support);
    };
    observe(&color_sums, &mut tracker, 0.0);

    let bias_in_gen = |counts: &[u64], g: usize| -> f64 {
        let row: Vec<u64> = (0..k).map(|c| counts[cell(g, c, k)]).collect();
        OpinionCounts::from_counts(row)
            .bias()
            .unwrap_or(f64::INFINITY)
    };
    let collision_in_gen = |counts: &[u64], g: usize| -> f64 {
        let total: u64 = (0..k).map(|c| counts[cell(g, c, k)]).sum();
        if total == 0 {
            return 0.0;
        }
        (0..k)
            .map(|c| {
                let f = counts[cell(g, c, k)] as f64 / total as f64;
                f * f
            })
            .sum()
    };

    let mut rounds = 0u64;
    let is_mono = |sums: &[u64]| -> bool { sums.contains(&n) };

    if !is_mono(&color_sums) {
        for round in 1..=max_rounds {
            rounds = round;
            let two_choices = schedule.is_two_choices_round(round);

            // Cell fractions of the current configuration.
            let fracs: Vec<f64> = counts.iter().map(|&c| c as f64 / nf).collect();
            // Cumulative fraction of generations > g (the "strictly higher"
            // mass a node can be pulled into) per target cell is needed; we
            // instead compute, per source generation g, the outcome
            // distribution over target cells shared by all its colors.
            //
            // Outcome of a node in generation g sampling cells A=(gA,cA),
            // B=(gB,cB) with independent probabilities f_A·f_B:
            // * two-choices round and A == B with gA ≥ g → (gA+1, cA);
            // * else with H = A if gA ≥ gB else B: if gH > g → H, else stay.
            let total_cells = gens * k;
            let mut new_counts = vec![0u64; (gens + 1) * k];

            // Precompute per-source-generation outcome distributions.
            // targets[g] = Vec<(target_cell_in_new_layout, prob)>, with the
            // residual probability meaning "stay".
            let mut per_gen_targets: Vec<Vec<(usize, f64)>> = Vec::with_capacity(gens);
            for g in 0..gens {
                let mut probs = vec![0.0f64; (gens + 1) * k];
                for a in 0..total_cells {
                    let fa = fracs[a];
                    if fa == 0.0 {
                        continue;
                    }
                    let (ga, ca) = (a / k, a % k);
                    for (b, &fb) in fracs.iter().enumerate().take(total_cells) {
                        if fb == 0.0 {
                            continue;
                        }
                        let gb = b / k;
                        let p = fa * fb;
                        if two_choices && a == b && ga >= g {
                            probs[cell(ga + 1, ca, k)] += p;
                            continue;
                        }
                        let h = if ga >= gb { a } else { b };
                        let gh = h / k;
                        if gh > g {
                            probs[h] += p;
                        }
                        // else: stay (residual mass).
                    }
                }
                let targets: Vec<(usize, f64)> = probs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p > 0.0)
                    .map(|(i, &p)| (i, p))
                    .collect();
                per_gen_targets.push(targets);
            }

            // Multinomial split of every cell over its targets.
            for g in 0..gens {
                let targets = &per_gen_targets[g];
                for c in 0..k {
                    let m = counts[cell(g, c, k)];
                    if m == 0 {
                        continue;
                    }
                    // Exact multinomial scatter (shared sampler consumes
                    // the byte-identical binomial stream the hand-rolled
                    // loop used to); whoever is left stays in place.
                    let stayed = multinomial_split(m, targets, &mut new_counts, &mut rng);
                    new_counts[cell(g, c, k)] += stayed;
                }
            }

            // Did a new generation appear?
            let top_row_total: u64 = (0..k).map(|c| new_counts[cell(gens, c, k)]).sum();
            let parent = gens - 1;
            let parent_bias = bias_in_gen(&counts, parent);
            let parent_collision = collision_in_gen(&counts, parent);
            counts = new_counts;
            if top_row_total > 0 {
                gens += 1;
                births.push(GenerationBirth {
                    generation: (gens - 1) as u32,
                    time: round as f64,
                    bias: bias_in_gen(&counts, gens - 1),
                    parent_bias,
                    initial_fraction: top_row_total as f64 / nf,
                    parent_collision,
                });
            } else {
                // Trim the unused extra row for the next iteration.
                counts.truncate(gens * k);
            }

            refresh_color_sums(&counts, gens, &mut color_sums);
            observe(&color_sums, &mut tracker, round as f64);
            if is_mono(&color_sums) {
                break;
            }
        }
    }

    let final_counts = OpinionCounts::from_counts(color_sums);
    let outcome = RunOutcome {
        n,
        k: k as u32,
        initial_winner,
        initial_bias,
        final_counts,
        epsilon_time: tracker.epsilon_time(),
        consensus_time: tracker.consensus_time(),
        duration: rounds as f64,
        generations: births,
    };
    UrnResult {
        outcome,
        rounds,
        g_star,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opinion::Opinion;
    use crate::sync::SyncConfig;
    use crate::InitialAssignment;

    #[test]
    fn conserves_population_and_elects_plurality() {
        let r = UrnConfig::new(100_000, 4, 2.0).unwrap().with_seed(1).run();
        assert_eq!(r.outcome.final_counts.n(), 100_000);
        assert!(r.outcome.plurality_preserved());
        assert_eq!(r.outcome.winner(), Some(Opinion::new(0)));
    }

    #[test]
    fn handles_billion_node_populations() {
        let r = UrnConfig::new(1_000_000_000, 8, 1.5)
            .unwrap()
            .with_seed(2)
            .run();
        assert_eq!(r.outcome.final_counts.n(), 1_000_000_000);
        assert!(r.outcome.plurality_preserved());
        assert!(r.rounds < 200);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = UrnConfig::new(50_000, 3, 2.0).unwrap().with_seed(7).run();
        let b = UrnConfig::new(50_000, 3, 2.0).unwrap().with_seed(7).run();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(UrnConfig::new(100, 1, 2.0).is_err());
        assert!(UrnConfig::new(100, 4, 0.5).is_err());
        assert!(UrnConfig::new(3, 8, 100.0).is_err());
    }

    #[test]
    fn bias_squares_along_the_chain() {
        let r = UrnConfig::new(10_000_000, 8, 1.2)
            .unwrap()
            .with_seed(3)
            .run();
        let births = &r.outcome.generations;
        assert!(births.len() >= 3);
        for w in births.windows(2) {
            let predicted = w[0].bias * w[0].bias;
            if !predicted.is_finite() || !w[1].bias.is_finite() || predicted > 1e6 {
                break;
            }
            let ratio = w[1].bias / predicted;
            assert!(
                (0.7..1.4).contains(&ratio),
                "generation {}: ratio {ratio}",
                w[1].generation
            );
        }
    }

    #[test]
    fn agrees_with_agent_based_engine_on_round_counts() {
        // Same (n, k, α): urn and agent-based rounds should be within a
        // small factor (both follow the same schedule).
        let n = 30_000u64;
        let urn = UrnConfig::new(n, 4, 2.0).unwrap().with_seed(4).run();
        let assignment = InitialAssignment::with_bias(n, 4, 2.0).unwrap();
        let agent = SyncConfig::new(assignment).with_seed(4).run();
        assert!(urn.outcome.plurality_preserved());
        assert!(agent.outcome.plurality_preserved());
        let (a, b) = (urn.rounds as f64, agent.rounds as f64);
        assert!(
            (a / b) < 2.0 && (b / a) < 2.0,
            "urn {a} rounds vs agent {b} rounds"
        );
    }

    #[test]
    fn monochromatic_start_is_instant() {
        let r = UrnConfig::from_counts(vec![500, 0, 0]).with_seed(5).run();
        assert_eq!(r.outcome.consensus_time, Some(0.0));
        assert_eq!(r.rounds, 0);
    }

    #[test]
    fn generation_fractions_match_growth_theory_loosely() {
        // The newest generation's birth fraction is ≈ γ²·p (Prop 9);
        // with k = 4 equal-ish colors p ≈ 0.28 ⇒ fraction ≈ 0.07.
        let r = UrnConfig::new(1_000_000, 4, 1.2)
            .unwrap()
            .with_seed(6)
            .run();
        let b = &r.outcome.generations[0];
        assert!(
            b.initial_fraction > 0.01 && b.initial_fraction < 0.6,
            "birth fraction {}",
            b.initial_fraction
        );
    }
}
