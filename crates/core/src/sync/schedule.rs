//! The predefined two-choices schedule `{t_i}` of the synchronous protocol.
//!
//! Section 2.2 defines the life-cycle length of generation `i` as
//!
//! ```text
//! X_i = (2·ln(α^{2^{i−1}} + k − 1) − ln(α^{2^i} + k − 1) − ln γ) / ln(2 − γ) + 2,
//! ```
//!
//! the number of rounds generation `i` needs to grow from its birth size
//! `≈ γ²·p_{i−1}` to a `γ` fraction of all nodes at growth factor `(2 − γ)`
//! per round (Proposition 9). Generation `i+1` is then born by a two-choices
//! round at `t_{i+1} = t_i + X_i`, with `t_1 = 1`. The schedule stops after
//! `G* ≈ log₂ log_α n` generations, at which point the newest generation is
//! monochromatic whp. (Corollary 10 + Lemma 11).
//!
//! Powers like `α^{2^i}` overflow `f64` almost immediately, so everything is
//! computed in the log domain via `log-add-exp`.

/// Numerically stable `ln(eᵃ + eᵇ)`.
fn log_add_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    hi + (lo - hi).exp().ln_1p()
}

/// `ln(α^{2^e} + k − 1)` computed in the log domain.
///
/// `e` may be negative (the `i = 0` case uses `α^{1/2}`).
fn ln_alpha_power_plus_k(alpha: f64, e: i32, k: u32) -> f64 {
    let l = 2f64.powi(e) * alpha.ln();
    if k <= 1 {
        l
    } else {
        log_add_exp(l, f64::from(k - 1).ln())
    }
}

/// The paper's generation life-cycle length `X_i` (a real number; the
/// schedule rounds it up and clamps it to at least one round).
///
/// # Panics
///
/// Panics if `alpha < 1`, `gamma ∉ (0, 1)`, or `k == 0`.
pub fn lifecycle_length(alpha: f64, k: u32, gamma: f64, i: u32) -> f64 {
    assert!(alpha >= 1.0, "lifecycle_length: alpha must be ≥ 1");
    assert!(
        gamma > 0.0 && gamma < 1.0,
        "lifecycle_length: gamma must lie in (0, 1)"
    );
    assert!(k >= 1, "lifecycle_length: k must be ≥ 1");
    let a = ln_alpha_power_plus_k(alpha, i as i32 - 1, k);
    let b = ln_alpha_power_plus_k(alpha, i as i32, k);
    (2.0 * a - b - gamma.ln()) / (2.0 - gamma).ln() + 2.0
}

/// Number of generations `G*` needed so that the bias in the final
/// generation exceeds `n` whp.: `⌈log₂ log_α n⌉` plus a two-generation
/// safety margin, clamped to `[1, cap]`.
///
/// For `alpha` at or below `1 + 1e-9` (no usable bias) the cap is returned.
///
/// # Panics
///
/// Panics if `n < 2` or `cap == 0`.
pub fn generations_needed(n: u64, alpha: f64, cap: u32) -> u32 {
    assert!(n >= 2, "generations_needed: n must be ≥ 2");
    assert!(cap >= 1, "generations_needed: cap must be ≥ 1");
    if alpha <= 1.0 + 1e-9 {
        return cap;
    }
    let g = ((n as f64).ln() / alpha.ln()).ln() / std::f64::consts::LN_2;
    let g = g.ceil().max(0.0) as u32 + 2;
    g.clamp(1, cap)
}

/// Hard upper limit on generations regardless of bias, protecting against
/// degenerate `α → 1` inputs. `2^64` bias doublings exceed any practical `n`.
pub const GENERATION_CAP: u32 = 64;

/// The predefined sequence of two-choices rounds `{t_i}, i = 1..=G*`.
///
/// # Examples
///
/// ```
/// use plurality_core::sync::Schedule;
/// let s = Schedule::predefined(100_000, 8, 1.2, 0.5);
/// assert!(s.g_star() >= 1);
/// assert!(s.is_two_choices_round(1)); // t₁ = 1
/// assert!(!s.is_two_choices_round(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    rounds: Vec<u64>,
    g_star: u32,
}

impl Schedule {
    /// Builds the schedule for population `n`, `k` opinions, initial bias
    /// `alpha` and growth threshold `gamma`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (see [`lifecycle_length`] and
    /// [`generations_needed`]).
    pub fn predefined(n: u64, k: u32, alpha: f64, gamma: f64) -> Self {
        let g_star = generations_needed(n, alpha, GENERATION_CAP);
        let mut rounds = Vec::with_capacity(g_star as usize);
        let mut t = 1u64;
        rounds.push(t);
        for i in 1..g_star {
            let x = lifecycle_length(alpha, k, gamma, i);
            let x = x.ceil().max(1.0) as u64;
            t += x;
            rounds.push(t);
        }
        Self { rounds, g_star }
    }

    /// Builds a schedule from explicit two-choices rounds (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty or not strictly increasing.
    pub fn from_rounds(rounds: Vec<u64>) -> Self {
        assert!(!rounds.is_empty(), "Schedule::from_rounds: empty schedule");
        assert!(
            rounds.windows(2).all(|w| w[0] < w[1]),
            "Schedule::from_rounds: rounds must be strictly increasing"
        );
        let g_star = rounds.len() as u32;
        Self { rounds, g_star }
    }

    /// Whether `round` is a two-choices round.
    pub fn is_two_choices_round(&self, round: u64) -> bool {
        self.rounds.binary_search(&round).is_ok()
    }

    /// The scheduled rounds `t_1 < t_2 < … < t_{G*}`.
    pub fn rounds(&self) -> &[u64] {
        &self.rounds
    }

    /// The number of generations `G*` the schedule creates.
    pub fn g_star(&self) -> u32 {
        self.g_star
    }

    /// The last scheduled two-choices round `t_{G*}`.
    pub fn final_round(&self) -> u64 {
        *self.rounds.last().expect("schedule is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_add_exp_matches_naive_in_safe_range() {
        for &(a, b) in &[(0.0f64, 0.0f64), (1.0, 2.0), (-3.0, 4.0), (10.0, 10.0)] {
            let naive = (a.exp() + b.exp()).ln();
            assert!((log_add_exp(a, b) - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn log_add_exp_handles_huge_inputs() {
        // Would overflow naively: e^1000 + e^999.
        let v = log_add_exp(1000.0, 999.0);
        assert!((v - (1000.0 + (1.0 + (-1.0f64).exp()).ln())).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_is_order_log_k() {
        // For α near 1, X_1 ≈ (ln k − ln γ)/ln(2−γ) + 2 = O(log k).
        let x_small = lifecycle_length(1.01, 8, 0.5, 1);
        let x_large = lifecycle_length(1.01, 512, 0.5, 1);
        assert!(x_large > x_small);
        // Doubling k adds ~ln(2)/ln(1.5) ≈ 1.7 rounds; 512 vs 8 is 6 doublings.
        let expected_gap = 6.0 * std::f64::consts::LN_2 / 1.5f64.ln();
        assert!((x_large - x_small - expected_gap).abs() < 1.0);
    }

    #[test]
    fn lifecycle_shrinks_to_constant_for_large_bias() {
        // Once α^{2^i} ≫ k the 2a − b term vanishes and X_i approaches
        // (−ln γ)/ln(2−γ) + 2 = O(1). (The paper's Eq. (11) evaluates the
        // schedule at the k-crossing point, where the constant is
        // (ln 4 − ln γ)/ln(2−γ) + 2.)
        let late = lifecycle_length(1.5, 16, 0.5, 12);
        let limit = -(0.5f64.ln()) / 1.5f64.ln() + 2.0;
        assert!((late - limit).abs() < 0.3, "late {late} vs limit {limit}");
        // At the crossing point i with α^{2^{i-1}} ≈ k = 16: i = 4 for α=1.5
        // (1.5^8 ≈ 25.6); the value lies between the two constants.
        let crossing = lifecycle_length(1.5, 16, 0.5, 4);
        let upper = (4f64.ln() - 0.5f64.ln()) / 1.5f64.ln() + 2.0;
        assert!(crossing > limit - 0.5 && crossing < upper + 2.0);
    }

    #[test]
    fn generations_needed_shrinks_with_bias() {
        let weak = generations_needed(1_000_000, 1.01, GENERATION_CAP);
        let strong = generations_needed(1_000_000, 2.0, GENERATION_CAP);
        assert!(weak > strong, "weak {weak} strong {strong}");
        assert!(strong >= 1);
    }

    #[test]
    fn generations_needed_caps_on_degenerate_alpha() {
        assert_eq!(generations_needed(1000, 1.0, 64), 64);
    }

    #[test]
    fn predefined_schedule_is_increasing_and_starts_at_one() {
        let s = Schedule::predefined(1_000_000, 32, 1.05, 0.5);
        assert_eq!(s.rounds()[0], 1);
        assert!(s.rounds().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.rounds().len() as u32, s.g_star());
        assert_eq!(s.final_round(), *s.rounds().last().unwrap());
    }

    #[test]
    fn membership_queries() {
        let s = Schedule::from_rounds(vec![1, 5, 9]);
        assert!(s.is_two_choices_round(1));
        assert!(s.is_two_choices_round(5));
        assert!(!s.is_two_choices_round(4));
        assert_eq!(s.g_star(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_rounds_rejects_unsorted() {
        let _ = Schedule::from_rounds(vec![3, 2]);
    }

    #[test]
    fn early_lifecycles_longest() {
        // X_i decreases in i (the paper: "as i increases, Xi decreases").
        let alpha = 1.1;
        let xs: Vec<f64> = (1..10)
            .map(|i| lifecycle_length(alpha, 64, 0.5, i))
            .collect();
        for w in xs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "X_i not non-increasing: {xs:?}");
        }
    }
}
