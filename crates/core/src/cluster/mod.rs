//! The decentralized multi-leader protocol (Section 4).
//!
//! Instead of one designated leader, the system first partitions almost all
//! nodes into clusters of a configurable participation size (the paper's
//! `log^{c−1} n`, Theorem 27), with one leader per cluster. Cluster leaders
//! then jointly emulate the single-leader Algorithm 3: each runs the
//! `(generation, phase)` state machine of Algorithm 5 over its own members'
//! signals, with an extra *sleeping* phase absorbing inter-cluster
//! de-synchronization (Proposition 31, Figure 2), while a constant-time
//! broadcast keeps all leaders within `O(1)` time units of each other
//! (Theorem 28). Theorem 26: the same convergence bounds as the
//! single-leader case, without any central component.

mod engine;
mod leader;
mod node;

pub use engine::{ClusterConfig, ClusterResult, PhaseLogEntry};
pub use leader::{ClusterLeaderParams, ClusterLeaderState, ClusterPhase, ClusterTransition};
pub use node::{
    decide_member, finished_exchange, FinishedExchange, MemberDecision, MemberSample, MemberView,
};
