//! A cluster member's per-interaction decision rules (Algorithm 4,
//! lines 5–20), as pure functions.
//!
//! Two rules fire on every completed interaction of a consensus-mode
//! member: the *finished-flag exchange* (lines 5–7: push the flag and its
//! color to everyone on the line, or pull it from the first finished
//! sample) and the *promotion rule* (lines 9–16: two-choices into the
//! newest generation during its two-choices window, propagation inside it
//! once propagation opens, catch-up from settled generations otherwise).
//!
//! The event-driven engine ([`super::engine`]) and the `plurality-check`
//! model checker both drive their member updates through these functions,
//! so the exhaustively checked state machine cannot drift from the
//! simulated one.

use super::leader::ClusterPhase;

/// What a member sees of itself when deciding: its own `(gen, col)` and the
/// copy of a leader's `(generation, phase)` it stored at the last
/// successful communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberView {
    /// Own generation.
    pub gen: u32,
    /// Own color.
    pub col: u32,
    /// Leader generation stored at the last communication.
    pub stored_gen: u32,
    /// Leader phase state (1/2/3) stored at the last communication.
    pub stored_phase: u8,
}

/// What a member sees of one sampled peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberSample {
    /// Peer generation.
    pub gen: u32,
    /// Peer color.
    pub col: u32,
}

/// The promotion verdict for one interaction (Algorithm 4, lines 9–19).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberDecision {
    /// Adopt `(gen, col)`. `finished` is set when the adoption reaches the
    /// generation cap (line 20), and `increased` when it strictly raised
    /// the member's generation — exactly the case in which the member
    /// notifies its own leader (lines 12/16).
    Promote {
        /// New generation.
        gen: u32,
        /// New color.
        col: u32,
        /// Whether this promotion strictly increased the generation.
        increased: bool,
        /// Whether the member reaches the cap and sets its finished flag.
        finished: bool,
    },
    /// No promotion: refresh the stored leader copy to `(gen, phase)`
    /// (lines 17–19).
    Refresh {
        /// Observed leader generation.
        gen: u32,
        /// Observed leader phase state (1/2/3).
        phase: u8,
    },
}

/// Decides a consensus-mode member's action from its two peer samples and
/// the *observed* leader state — the sampled node's leader, post
/// leader-sync (Algorithm 4, lines 9–19).
///
/// The in-sync guard (stored copy equals observed state) separates the
/// two-choices window from the propagation window exactly as in the
/// single-leader [`crate::leader::decide`]; the catch-up branch admits
/// adoptions from settled generations regardless of sync, so stragglers
/// can always advance.
pub fn decide_member(
    member: MemberView,
    s1: MemberSample,
    s2: MemberSample,
    leader_gen: u32,
    leader_phase: ClusterPhase,
    generation_cap: u32,
) -> MemberDecision {
    let in_sync = member.stored_gen == leader_gen && member.stored_phase == leader_phase.as_state();
    let (g1, c1) = (s1.gen, s1.col);
    let (g2, c2) = (s2.gen, s2.col);
    let vg = member.gen;

    let mut promoted_to: Option<(u32, u32)> = None;
    if in_sync
        && leader_phase == ClusterPhase::TwoChoices
        && leader_gen >= 1
        && g1 == g2
        && g1 + 1 == leader_gen
        && c1 == c2
        && vg <= g1
    {
        // Line 13: two-choices promotion into the newest generation.
        promoted_to = Some((leader_gen, c1));
    } else if in_sync && leader_phase == ClusterPhase::Propagation {
        // Line 9: propagation from a sample inside the newest generation.
        for (g, c) in [(g1, c1), (g2, c2)] {
            if vg < g && g == leader_gen {
                promoted_to = Some((g, c));
                break;
            }
        }
    }
    if promoted_to.is_none() {
        // Catch-up from settled generations (mirrors Algorithm 2's
        // `gen(v̄) < gen` case; stragglers must be able to advance).
        let mut best: Option<(u32, u32)> = None;
        for (g, c) in [(g1, c1), (g2, c2)] {
            let improves = match best {
                None => true,
                Some((bg, _)) => g > bg,
            };
            if vg < g && g < leader_gen && improves {
                best = Some((g, c));
            }
        }
        promoted_to = best;
    }

    match promoted_to {
        Some((gen, col)) => MemberDecision::Promote {
            gen,
            col,
            increased: gen > vg,
            finished: gen >= generation_cap,
        },
        None => MemberDecision::Refresh {
            gen: leader_gen,
            phase: leader_phase.as_state(),
        },
    }
}

/// The finished-flag exchange on one interaction line (Algorithm 4,
/// lines 5–7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishedExchange {
    /// The initiator is finished: every non-finished sample becomes
    /// finished and adopts the initiator's color; the interaction ends.
    Push,
    /// The initiator is not finished but sample `from` (an index into the
    /// sample line) is: the initiator becomes finished, adopting that
    /// sample's color; the interaction ends.
    Pull {
        /// Index of the first finished sample on the line.
        from: usize,
    },
    /// Nobody on the line is finished: the interaction proceeds to the
    /// promotion rule.
    None,
}

/// Resolves the finished-flag exchange for an initiator and its sample
/// line. Pull takes the *first* finished sample in line order.
pub fn finished_exchange(initiator_finished: bool, samples_finished: &[bool]) -> FinishedExchange {
    if initiator_finished {
        return FinishedExchange::Push;
    }
    match samples_finished.iter().position(|&f| f) {
        Some(from) => FinishedExchange::Pull { from },
        None => FinishedExchange::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(gen: u32, col: u32, stored_gen: u32, stored_phase: u8) -> MemberView {
        MemberView {
            gen,
            col,
            stored_gen,
            stored_phase,
        }
    }

    fn s(gen: u32, col: u32) -> MemberSample {
        MemberSample { gen, col }
    }

    #[test]
    fn out_of_sync_member_refreshes() {
        // Stored copy (1, TwoChoices) vs observed (2, TwoChoices): the
        // window mechanisms are blocked, and gen-0 samples offer no
        // catch-up, so the member only refreshes its stored copy.
        let d = decide_member(
            member(0, 7, 1, 1),
            s(0, 3),
            s(0, 3),
            2,
            ClusterPhase::TwoChoices,
            4,
        );
        assert_eq!(d, MemberDecision::Refresh { gen: 2, phase: 1 });
    }

    #[test]
    fn catch_up_applies_even_out_of_sync() {
        // Same stale stored copy, but a settled-generation sample exists:
        // stragglers advance regardless of the sync guard.
        let d = decide_member(
            member(0, 7, 1, 1),
            s(1, 3),
            s(1, 3),
            2,
            ClusterPhase::TwoChoices,
            4,
        );
        assert_eq!(
            d,
            MemberDecision::Promote {
                gen: 1,
                col: 3,
                increased: true,
                finished: false
            }
        );
    }

    #[test]
    fn two_choices_promotes_in_sync_member() {
        let d = decide_member(
            member(0, 7, 2, 1),
            s(1, 3),
            s(1, 3),
            2,
            ClusterPhase::TwoChoices,
            4,
        );
        assert_eq!(
            d,
            MemberDecision::Promote {
                gen: 2,
                col: 3,
                increased: true,
                finished: false
            }
        );
    }

    #[test]
    fn two_choices_requires_color_agreement_and_level() {
        // Disagreeing colors: no two-choices, but catch-up from the
        // settled generation 1 still advances the straggler.
        let d = decide_member(
            member(0, 7, 2, 1),
            s(1, 3),
            s(1, 4),
            2,
            ClusterPhase::TwoChoices,
            4,
        );
        assert_eq!(
            d,
            MemberDecision::Promote {
                gen: 1,
                col: 3,
                increased: true,
                finished: false
            }
        );
        // Samples two below the allowed generation.
        let d = decide_member(
            member(0, 7, 3, 1),
            s(1, 3),
            s(1, 3),
            3,
            ClusterPhase::TwoChoices,
            4,
        );
        // Catch-up applies instead: g = 1 < leader gen 3.
        assert_eq!(
            d,
            MemberDecision::Promote {
                gen: 1,
                col: 3,
                increased: true,
                finished: false
            }
        );
    }

    #[test]
    fn sleeping_phase_blocks_newest_generation() {
        let d = decide_member(
            member(1, 7, 2, 2),
            s(2, 3),
            s(2, 3),
            2,
            ClusterPhase::Sleeping,
            4,
        );
        // Samples in the newest generation, but sleeping blocks both
        // mechanisms and catch-up needs g < leader gen.
        assert_eq!(d, MemberDecision::Refresh { gen: 2, phase: 2 });
    }

    #[test]
    fn propagation_adopts_newest_generation_sample() {
        let d = decide_member(
            member(1, 7, 2, 3),
            s(2, 3),
            s(0, 9),
            2,
            ClusterPhase::Propagation,
            4,
        );
        assert_eq!(
            d,
            MemberDecision::Promote {
                gen: 2,
                col: 3,
                increased: true,
                finished: false
            }
        );
    }

    #[test]
    fn catch_up_prefers_higher_settled_generation() {
        let d = decide_member(
            member(0, 7, 9, 9),
            s(1, 4),
            s(2, 5),
            3,
            ClusterPhase::TwoChoices,
            4,
        );
        assert_eq!(
            d,
            MemberDecision::Promote {
                gen: 2,
                col: 5,
                increased: true,
                finished: false
            }
        );
    }

    #[test]
    fn reaching_the_cap_sets_finished() {
        let d = decide_member(
            member(1, 7, 2, 3),
            s(2, 3),
            s(0, 9),
            2,
            ClusterPhase::Propagation,
            2,
        );
        assert_eq!(
            d,
            MemberDecision::Promote {
                gen: 2,
                col: 3,
                increased: true,
                finished: true
            }
        );
    }

    #[test]
    fn member_at_leader_generation_cannot_flip_color() {
        // Unlike the single-leader rule (Algorithm 2 line 6, which has no
        // gen(v) guard), line 13's `gen(v) ≤ gen(v₁)` means a member
        // already at the leader generation never re-adopts: every cluster
        // promotion strictly increases the generation.
        let d = decide_member(
            member(2, 7, 2, 1),
            s(1, 3),
            s(1, 3),
            2,
            ClusterPhase::TwoChoices,
            4,
        );
        assert_eq!(d, MemberDecision::Refresh { gen: 2, phase: 1 });
    }

    #[test]
    fn finished_exchange_push_pull_order() {
        assert_eq!(
            finished_exchange(true, &[false, true, false]),
            FinishedExchange::Push
        );
        assert_eq!(
            finished_exchange(false, &[false, true, true]),
            FinishedExchange::Pull { from: 1 }
        );
        assert_eq!(
            finished_exchange(false, &[false, false, false]),
            FinishedExchange::None
        );
    }
}
